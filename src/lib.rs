//! # Oasis — pooling PCIe devices over CXL, in software
//!
//! This is the facade crate of the Oasis workspace, a full reproduction of
//! *"Oasis: Pooling PCIe Devices Over CXL to Boost Utilization"* (SOSP '25).
//! It re-exports every member crate under a stable path so applications can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation core,
//! * [`cxl`] — non-coherent CXL 2.0 memory-pool model,
//! * [`channel`] — Oasis message channels over non-coherent shared memory,
//! * [`net`] — simulated NICs, switch, and packet codecs,
//! * [`storage`] — simulated NVMe-like SSDs,
//! * [`raft`] — Raft consensus replicating the pod-wide allocator,
//! * [`trace`] — synthetic datacenter traces and the stranding simulator,
//! * [`core`] — the Oasis system itself: datapath, engines, allocator,
//! * [`apps`] — workloads used by the evaluation (echo, memcached, web apps).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, which boots a two-host pod sharing one NIC
//! and echoes UDP packets across the host boundary through the Oasis
//! datapath.

pub use oasis_apps as apps;
pub use oasis_channel as channel;
pub use oasis_core as core;
pub use oasis_cxl as cxl;
pub use oasis_net as net;
pub use oasis_raft as raft;
pub use oasis_sim as sim;
pub use oasis_storage as storage;
pub use oasis_trace as trace;
