//! Property-based tests on the core invariants (proptest).

use oasis::channel::{ChannelLayout, Policy, Receiver, Sender};
use oasis::core::tcp::{TcpConfig, TcpConn};
use oasis::cxl::pool::{PortId, TrafficClass};
use oasis::cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis::net::addr::{Ipv4Addr, MacAddr};
use oasis::net::packet::{TcpFlags, TcpSegment, UdpPacket};
use oasis::sim::hist::Histogram;
use oasis::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// UDP frames round-trip for arbitrary addresses, ports, and payloads.
    #[test]
    fn udp_roundtrip(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let p = UdpPacket {
            src_mac: MacAddr::nic(1),
            dst_mac: MacAddr::nic(2),
            src_ip: Ipv4Addr(src),
            dst_ip: Ipv4Addr(dst),
            src_port: sport,
            dst_port: dport,
            payload: bytes::Bytes::from(payload),
        };
        prop_assert_eq!(UdpPacket::parse(&p.encode()), Some(p));
    }

    /// Corrupting any single byte of a UDP frame makes it unparseable (the
    /// checksums catch it) or parses to the identical packet (the byte was
    /// outside every covered field — impossible for UDP, where checksums
    /// cover everything except the MACs).
    #[test]
    fn udp_bitflip_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let p = UdpPacket {
            src_mac: MacAddr::nic(1),
            dst_mac: MacAddr::nic(2),
            src_ip: Ipv4Addr::instance(1),
            dst_ip: Ipv4Addr::instance(2),
            src_port: 9,
            dst_port: 7,
            payload: bytes::Bytes::from(payload),
        };
        let frame = p.encode();
        let mut bytes = frame.bytes().to_vec();
        // Flip one bit beyond the Ethernet header (MACs are not covered by
        // any checksum, as on real ethernet before the FCS).
        let idx = 14 + ((bytes.len() - 14) as f64 * flip_at_frac) as usize;
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 1 << flip_bit;
        let corrupted = oasis::net::packet::Frame(bytes::Bytes::from(bytes));
        prop_assert!(UdpPacket::parse(&corrupted).is_none());
    }

    /// TCP segments round-trip.
    #[test]
    fn tcp_roundtrip(
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let s = TcpSegment {
            src_mac: MacAddr::nic(3),
            dst_mac: MacAddr::nic(4),
            src_ip: Ipv4Addr::instance(3),
            dst_ip: Ipv4Addr::instance(4),
            src_port: 1,
            dst_port: 2,
            seq,
            ack,
            flags: TcpFlags { ack: true, ..Default::default() },
            window,
            payload: bytes::Bytes::from(payload),
        };
        prop_assert_eq!(TcpSegment::parse(&s.encode()), Some(s));
    }

    /// Histogram percentiles stay within the bucketing's relative error of
    /// the exact percentile for arbitrary samples.
    #[test]
    fn histogram_percentile_error_bounded(
        mut values in proptest::collection::vec(1u64..1_000_000_000, 1..300),
        p in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((p / 100.0 * values.len() as f64).ceil() as usize).max(1);
        let exact = values[rank - 1];
        let got = h.percentile(p);
        let err = (got as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(err <= 1.0 / 32.0, "exact {exact} got {got} err {err}");
    }

    /// Channel FIFO delivery holds for every policy under arbitrary
    /// send/receive interleavings (batch sizes drawn by proptest).
    #[test]
    fn channel_fifo_under_random_interleaving(
        policy_idx in 0usize..4,
        ops in proptest::collection::vec((0u8..2, 1u8..8), 1..120),
    ) {
        let policy = Policy::ALL[policy_idx];
        let slots = 16u64;
        let mut pool = CxlPool::new(1 << 20, 2);
        let mut ra = RegionAllocator::new(&pool);
        let region = ra.alloc(
            &mut pool,
            "prop",
            ChannelLayout::bytes_needed(slots, 16),
            TrafficClass::Message,
        );
        let layout = ChannelLayout::in_region(&region, slots, 16);
        let mut tx = HostCtx::new(PortId(0), 0);
        let mut rx = HostCtx::new(PortId(1), 0);
        let mut sender = Sender::new(layout.clone());
        let mut receiver = Receiver::new(layout, policy);

        let mut next_val = 0u64;
        let mut received = Vec::new();
        for (op, batch) in ops {
            if op == 0 {
                for _ in 0..batch {
                    let mut msg = [0u8; 16];
                    msg[..8].copy_from_slice(&next_val.to_le_bytes());
                    if sender.try_send(&mut tx, &mut pool, &msg).unwrap() {
                        next_val += 1;
                    }
                }
                sender.flush(&mut tx, &mut pool);
            } else {
                // Let write-backs become visible before the receiver polls.
                rx.clock = rx.clock.max(tx.clock) + SimDuration::from_micros(1);
                for _ in 0..batch {
                    let mut out = [0u8; 16];
                    // Poll a few times: stale lines need an invalidation
                    // round before fresh data appears.
                    for _ in 0..3 {
                        if receiver.try_recv(&mut rx, &mut pool, &mut out) {
                            received.push(u64::from_le_bytes(out[..8].try_into().unwrap()));
                            break;
                        }
                    }
                }
            }
        }
        // Drain what's left.
        rx.clock = rx.clock.max(tx.clock) + SimDuration::from_micros(1);
        for _ in 0..(next_val as usize + 8) * 3 {
            let mut out = [0u8; 16];
            if receiver.try_recv(&mut rx, &mut pool, &mut out) {
                received.push(u64::from_le_bytes(out[..8].try_into().unwrap()));
            }
            receiver.publish_consumed(&mut rx, &mut pool);
            // Unblock a full ring.
            tx.clock = tx.clock.max(rx.clock) + SimDuration::from_micros(1);
        }
        // FIFO, no loss, no duplicates.
        prop_assert_eq!(received, (0..next_val).collect::<Vec<_>>());
    }

    /// TCP delivers the exact byte stream under arbitrary loss patterns
    /// (given enough RTO rounds).
    #[test]
    fn tcp_reliable_under_loss(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        drop_pattern in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let cfg = TcpConfig {
            rto: SimDuration::from_millis(10),
            mss: 100,
            ..Default::default()
        };
        let mut a = TcpConn::new(cfg);
        let mut b = TcpConn::new(cfg);
        a.send(&data);
        let mut now = SimTime::ZERO;
        // Decorrelate the drop decision from the retransmission cadence
        // (a purely cyclic pattern can phase-lock with go-back-N rounds,
        // which no real network does).
        let mut mix = 0x9E37_79B9u64;
        let mut dropped = |seq: u32, dir: u64| {
            mix = mix
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seq as u64 ^ dir);
            drop_pattern[(mix >> 33) as usize % drop_pattern.len()]
        };
        for _round in 0..800 {
            now += SimDuration::from_millis(3);
            for seg in a.poll(now) {
                if !dropped(seg.seq, 1) {
                    b.on_segment(now, seg.seq, seg.ack, &seg.payload);
                }
            }
            for seg in b.poll(now) {
                if !dropped(seg.ack, 2) {
                    a.on_segment(now, seg.seq, seg.ack, &seg.payload);
                }
            }
            if a.unacked() == 0 {
                break;
            }
        }
        // With any pattern that keeps some packets, the stream eventually
        // arrives.
        if drop_pattern.iter().filter(|&&d| !d).count() >= 1 {
            let mut got = Vec::new();
            got.extend(b.take_received());
            prop_assert_eq!(got, data);
            prop_assert_eq!(a.unacked(), 0);
        }
    }
}
