//! A rack-scale pod: many hosts, few devices, mixed workloads — the
//! configuration the paper's economics argue for ("every three hosts share
//! a single NIC").

use oasis::apps::memcached::{GetRequests, MemcachedFramer, MemcachedServer, MEMCACHED_PORT};
use oasis::apps::stats::{ClientStats, StatsHandle};
use oasis::apps::tcp_client::TcpRequestClient;
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::PodBuilder;
use oasis::core::tcp::TcpConfig;
use oasis::sim::time::{SimDuration, SimTime};
use oasis::storage::ssd::SsdConfig;
use oasis::storage::BLOCK_SIZE;

#[test]
fn six_hosts_two_nics_one_ssd_mixed_workloads() {
    let mut b = PodBuilder::new(OasisConfig::default());
    // Two device hosts serve four diskless/NIC-less hosts.
    let dev1 = b.add_nic_host();
    let dev2 = b.add_nic_host();
    let tenants: Vec<usize> = (0..4).map(|_| b.add_host()).collect();
    b.add_ssd(dev1, SsdConfig::default());
    b.add_ssd(dev2, SsdConfig::default());
    let mut pod = b.build();

    // Launch a mix: three UDP echo servers, one memcached.
    let mut udp_instances = Vec::new();
    for &host in &tenants[..3] {
        udp_instances.push(pod.launch_instance(
            host,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            5_000,
        ));
    }
    let mut mc = MemcachedServer::new(SimDuration::from_micros(3));
    for k in 0..8 {
        mc.preload(format!("key{k}").as_bytes(), &[0x42; 64]);
    }
    let mc_inst = pod.launch_instance(tenants[3], AppKind::Tcp(Box::new(mc)), 5_000);
    pod.instances[mc_inst].server_port = MEMCACHED_PORT;

    // Placement spread the load across both NICs.
    let nics_used: std::collections::BTreeSet<u32> = pod
        .allocator
        .state
        .instances
        .iter()
        .map(|i| i.nic)
        .collect();
    assert_eq!(nics_used.len(), 2, "least-loaded placement uses both NICs");

    // Every tenant gets a volume; both SSDs get used.
    let mut volumes = Vec::new();
    for &inst in udp_instances.iter().chain([&mc_inst]) {
        volumes.push(pod.create_volume(inst, 32).expect("capacity"));
    }
    let ssds_used: std::collections::BTreeSet<usize> = volumes.iter().map(|v| v.ssd).collect();
    assert_eq!(ssds_used.len(), 2, "volumes spread across both SSDs");

    // Drive everything concurrently: 3 UDP clients + 1 memcached client +
    // storage I/O.
    let end = SimTime::from_millis(15);
    let mut udp_stats: Vec<StatsHandle> = Vec::new();
    for (i, &inst) in udp_instances.iter().enumerate() {
        let stats = ClientStats::handle();
        pod.add_endpoint(Box::new(UdpClient::new(
            (i + 1) as u64,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            200,
            Pacing::Poisson {
                rate_rps: 30_000.0,
                until: end - SimDuration::from_millis(3),
            },
            SimTime::from_micros(100),
            stats.clone(),
        )));
        udp_stats.push(stats);
    }
    let mc_stats = ClientStats::handle();
    pod.add_endpoint(Box::new(TcpRequestClient::new(
        9,
        pod.instance_mac(mc_inst),
        pod.instance_ip(mc_inst),
        MEMCACHED_PORT,
        SimDuration::from_micros(100),
        100,
        SimTime::from_micros(200),
        TcpConfig::default(),
        Box::new(GetRequests { keys: 8 }),
        Box::new(MemcachedFramer),
        mc_stats.clone(),
    )));
    for (i, &vol) in volumes.iter().enumerate() {
        let data = vec![i as u8; BLOCK_SIZE as usize];
        pod.volume_write(vol, 0, &data).expect("write accepted");
    }
    pod.run(end);

    // Network: everything answered.
    for (i, s) in udp_stats.iter().enumerate() {
        let s = s.borrow();
        assert!(s.sent > 100, "client {i} sent {}", s.sent);
        assert_eq!(s.received, s.sent, "client {i} lost traffic");
    }
    let mc = mc_stats.borrow();
    assert_eq!(mc.received, 100, "memcached completed");
    // Storage: all four volume writes completed OK.
    let mut done = 0;
    for &host in tenants.iter() {
        for r in pod.take_storage_completions(host) {
            assert!(r.status.is_ok());
            done += 1;
        }
    }
    assert_eq!(done, 4);
    // Volumes on the same SSD never overlap.
    for a in 0..volumes.len() {
        for b in (a + 1)..volumes.len() {
            let (va, vb) = (volumes[a], volumes[b]);
            if va.ssd == vb.ssd {
                assert!(
                    va.base_block + va.blocks <= vb.base_block
                        || vb.base_block + vb.blocks <= va.base_block,
                    "volume overlap on ssd {}",
                    va.ssd
                );
            }
        }
    }
}

#[test]
fn determinism_at_scale() {
    let run = || {
        let mut b = PodBuilder::new(OasisConfig::default());
        let _d1 = b.add_nic_host();
        let hosts: Vec<usize> = (0..3).map(|_| b.add_host()).collect();
        let mut pod = b.build();
        let mut stats = Vec::new();
        for (i, &h) in hosts.iter().enumerate() {
            let inst = pod.launch_instance(
                h,
                AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
                5_000,
            );
            let s = ClientStats::handle();
            pod.add_endpoint(Box::new(UdpClient::new(
                (i + 1) as u64,
                pod.instance_mac(inst),
                pod.instance_ip(inst),
                7,
                128,
                Pacing::Poisson {
                    rate_rps: 50_000.0,
                    until: SimTime::from_millis(4),
                },
                SimTime::from_micros(100),
                s.clone(),
            )));
            stats.push(s);
        }
        pod.run(SimTime::from_millis(6));
        stats
            .iter()
            .map(|s| {
                let s = s.borrow();
                (s.sent, s.received, s.rtt.percentile(99.9))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
