//! Bandwidth-lease enforcement at the frontend driver.
//!
//! The pod-wide allocator leases NIC bandwidth to instances (§3.5); the
//! frontend's token-bucket policer makes the lease real: an instance that
//! offers more than its lease gets policed, and the delivered rate tracks
//! the lease.

use oasis::core::config::OasisConfig;
use oasis::core::instance::{AppKind, UdpApp, UdpResponse};
use oasis::core::pod::{HostDriver, PodBuilder};
use oasis::net::addr::Ipv4Addr;
use oasis::sim::time::{SimDuration, SimTime};

/// A chatty app: every request triggers `amplification` MTU responses, so
/// the instance's TX rate can exceed its lease even at a modest request
/// rate.
struct Blaster {
    amplification: usize,
}

impl UdpApp for Blaster {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        _payload: &[u8],
    ) -> Vec<UdpResponse> {
        (0..self.amplification)
            .map(|_| UdpResponse {
                delay: SimDuration::from_micros(1),
                dst: src,
                src_port: dst_port,
                payload: vec![0u8; 1400],
            })
            .collect()
    }
}

fn run(lease_mbps: u32, enforce: bool) -> (u64, u64, f64) {
    use oasis::apps::stats::ClientStats;
    use oasis::apps::udp::{Pacing, UdpClient};

    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let _n = b.add_nic_host();
    let mut pod = b.build();
    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(Blaster { amplification: 8 })),
        lease_mbps,
    );
    if enforce {
        let ip = pod.instance_ip(inst);
        let HostDriver::Oasis(fe) = &mut pod.drivers[host_a] else {
            unreachable!()
        };
        fe.enforce_lease(ip, lease_mbps, 64 * 1024);
    }

    let stats = ClientStats::handle();
    let window = SimDuration::from_millis(20);
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        64,
        Pacing::Poisson {
            rate_rps: 40_000.0, // 40k req/s x 8 x 1400B ~ 3.6 Gbit/s offered
            until: SimTime::ZERO + window,
        },
        SimTime::from_micros(100),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::ZERO + window + SimDuration::from_millis(2));

    let HostDriver::Oasis(fe) = &pod.drivers[host_a] else {
        unreachable!()
    };
    let delivered_bits = pod.nics[0].stats.tx_bytes as f64 * 8.0;
    let gbps = delivered_bits / window.as_secs_f64() / 1e9;
    (fe.stats.tx_packets, fe.stats.tx_policed, gbps)
}

#[test]
fn policer_caps_delivered_rate_at_the_lease() {
    let (_sent, policed, gbps) = run(1_000, true); // 1 Gbit/s lease
    assert!(
        policed > 100,
        "over-lease traffic must be policed: {policed}"
    );
    assert!(
        gbps < 1.3,
        "delivered {gbps:.2} Gbit/s must track the 1 Gbit/s lease"
    );
    assert!(gbps > 0.5, "delivered {gbps:.2} Gbit/s: policer too strict");
}

#[test]
fn without_enforcement_traffic_exceeds_lease() {
    let (_sent, policed, gbps) = run(1_000, false);
    assert_eq!(policed, 0);
    assert!(
        gbps > 2.0,
        "unpoliced blaster should exceed its 1 Gbit/s lease: {gbps:.2}"
    );
}

#[test]
fn generous_lease_polices_nothing() {
    let (_sent, policed, gbps) = run(50_000, true); // 50 Gbit/s lease
    assert_eq!(policed, 0, "under-lease traffic untouched");
    assert!(gbps > 2.0);
}
