//! Cross-crate integration tests through the `oasis` facade.

use oasis::apps::stats::ClientStats;
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::{HostDriver, PodBuilder};
use oasis::cxl::pool::{PortId, TrafficClass};
use oasis::sim::time::{SimDuration, SimTime};
use oasis::trace::packet_trace::{HostProfile, PacketTrace};

fn echo_app() -> AppKind {
    AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1))))
}

#[test]
fn two_instances_share_one_nic_with_isolation() {
    // Two instances on two NIC-less hosts, both served by the single NIC.
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let h1 = b.add_host();
    let _nic_host = b.add_nic_host();
    let mut pod = b.build();
    let i0 = pod.launch_instance(h0, echo_app(), 10_000);
    let i1 = pod.launch_instance(h1, echo_app(), 10_000);

    let s0 = ClientStats::handle();
    let s1 = ClientStats::handle();
    for (cid, (inst, stats)) in [(1u64, (i0, &s0)), (2, (i1, &s1))] {
        let client = UdpClient::new(
            cid,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            128,
            Pacing::FixedGap {
                gap: SimDuration::from_micros(40),
                count: 100,
            },
            SimTime::from_micros(100),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
    }
    pod.run(SimTime::from_millis(10));

    // Both clients got all their echoes; instances saw only their own
    // datagrams (flow tagging isolates them).
    assert_eq!(s0.borrow().received, 100);
    assert_eq!(s1.borrow().received, 100);
    assert_eq!(pod.instances[i0].stats.udp_datagrams, 100);
    assert_eq!(pod.instances[i1].stats.udp_datagrams, 100);
    // The backend never had to inspect a payload: flow tags matched.
    assert_eq!(pod.backends[0].stats.rx_tag_miss, 0);
    // Both frontends routed through the same NIC.
    for h in [h0, h1] {
        let HostDriver::Oasis(fe) = &pod.drivers[h] else {
            unreachable!()
        };
        assert!(fe.stats.tx_packets >= 100);
    }
}

#[test]
fn trace_replay_through_pod_carries_bursts() {
    // Feed a generated bursty trace through the full Oasis datapath.
    let mut profile = HostProfile::rack_a()[3].clone();
    profile.large_gbps = 8.0; // keep bursts within one polling core
    let trace = PacketTrace::generate(&profile, SimDuration::from_millis(200), 5);
    assert!(trace.len() > 100);

    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let _n = b.add_nic_host();
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, echo_app(), 10_000);
    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        64,
        Pacing::Replay(trace.events.clone()),
        SimTime::from_micros(100),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::from_millis(250));

    let s = stats.borrow();
    assert_eq!(s.sent, trace.len() as u64);
    let loss_rate = s.lost() as f64 / s.sent as f64;
    assert!(loss_rate < 0.01, "loss {loss_rate} too high for this load");
}

#[test]
fn pool_accounting_balances() {
    // Every byte DMA'd or fetched is metered on some port; payload class
    // only appears when traffic flows.
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let _n = b.add_nic_host();
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, echo_app(), 10_000);

    pod.run(SimTime::from_millis(1));
    let payload_before: u64 = (0..pod.pool.ports())
        .map(|p| pod.pool.meter(PortId(p)).class_bytes(TrafficClass::Payload))
        .sum();
    assert_eq!(payload_before, 0, "no payload traffic before clients");

    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        1000,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(50),
            count: 20,
        },
        SimTime::from_millis(1),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::from_millis(4));

    let payload_after: u64 = (0..pod.pool.ports())
        .map(|p| pod.pool.meter(PortId(p)).class_bytes(TrafficClass::Payload))
        .sum();
    // 20 echoes x ~1042B frames x (DMA write + fe read + fe write + DMA
    // read) >= 4 x 20 x 1000.
    assert!(payload_after >= 80_000, "payload bytes {payload_after}");
    assert_eq!(stats.borrow().received, 20);
}

#[test]
fn allocator_respects_capacity_across_launches() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let _n = b.add_nic_host(); // 100 Gbit/s capacity
    let mut pod = b.build();
    // 9 instances x 10G fit; a 20G tenth does not.
    for _ in 0..9 {
        pod.launch_instance(h0, AppKind::None, 10_000);
    }
    let nic = pod.allocator.state.nics[0].as_ref().unwrap();
    assert_eq!(nic.allocated_mbps, 90_000);
    assert!(pod.allocator.state.pick_nic(h0 as u32, 20_000).is_none());
    assert!(pod.allocator.state.pick_nic(h0 as u32, 10_000).is_some());
}

#[test]
fn rebalancing_migration_loses_nothing_and_keeps_neighbors_reachable() {
    // Regression for the migration MAC race: a migrating instance's
    // queued frames must not carry the old NIC's source MAC out of the new
    // NIC, or the switch re-learns that MAC on the wrong port and black-
    // holes the instance still legitimately using it.
    use oasis::core::allocator::RebalancePolicy;

    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let host_b = b.add_host();
    let _n0 = b.add_nic_host();
    let _n1 = b.add_nic_host();
    let mut pod = b.build();
    pod.allocator.enable_rebalancing(RebalancePolicy::new(
        2.0,
        50_000,
        SimDuration::from_millis(100),
    ));
    let i1 = pod.launch_instance(host_a, echo_app(), 10_000);
    let _decoy = pod.launch_instance(host_a, echo_app(), 10_000);
    let i3 = pod.launch_instance(host_b, echo_app(), 10_000);

    let end = SimTime::from_millis(400);
    let mut handles = Vec::new();
    for (i, &inst) in [i1, i3].iter().enumerate() {
        let h = ClientStats::handle();
        pod.add_endpoint(Box::new(UdpClient::new(
            (i + 1) as u64,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            1000,
            Pacing::Poisson {
                rate_rps: 200_000.0,
                until: end - SimDuration::from_millis(20),
            },
            SimTime::from_millis(1),
            h.clone(),
        )));
        handles.push(h);
    }
    pod.run(end);

    assert!(pod.allocator.rebalance_migrations >= 1, "rebalanced");
    for (i, h) in handles.iter().enumerate() {
        let s = h.borrow();
        assert_eq!(s.lost(), 0, "client {i} lost traffic across migration");
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut b = PodBuilder::new(OasisConfig::default());
        let h0 = b.add_host();
        let _n = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(h0, echo_app(), 10_000);
        let stats = ClientStats::handle();
        let client = UdpClient::new(
            1,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            256,
            Pacing::Poisson {
                rate_rps: 100_000.0,
                until: SimTime::from_millis(3),
            },
            SimTime::from_micros(100),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        pod.run(SimTime::from_millis(5));
        let s = stats.borrow();
        (s.sent, s.received, s.rtt.percentile(99.0))
    };
    assert_eq!(run(), run(), "same seed, same world, same results");
}
