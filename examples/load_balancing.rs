//! Graceful load-balancing migration (§3.3.4).
//!
//! The pod-wide allocator moves an instance's traffic from a loaded NIC to
//! an idle one *without losing a packet*: the instance is registered with
//! the new NIC first, announces its new MAC with a gratuitous ARP, receives
//! from both NICs during a grace period, and is then unregistered from the
//! old one.
//!
//! Run with: `cargo run --release --example load_balancing`

use oasis::apps::stats::ClientStats;
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::PodBuilder;
use oasis::sim::time::{SimDuration, SimTime};

fn main() {
    // Short grace period so the example finishes quickly.
    let cfg = OasisConfig {
        migration_grace: SimDuration::from_millis(100),
        ..Default::default()
    };
    let mut builder = PodBuilder::new(cfg);
    let host_a = builder.add_host();
    let _host_b = builder.add_nic_host(); // NIC 0, initially serving
    let _host_c = builder.add_nic_host(); // NIC 1, migration target
    let mut pod = builder.build();

    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    println!(
        "instance {} starts on NIC 0 (MAC {})",
        pod.instance_ip(inst),
        pod.instance_mac(inst)
    );

    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        64,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(100),
            count: 4500,
        },
        SimTime::from_micros(100),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));

    // The allocator decides to rebalance at t=100ms.
    pod.schedule_migration(SimTime::from_millis(100), pod.instance_ip(inst), 1);
    pod.run(SimTime::from_millis(500));

    let s = stats.borrow();
    println!(
        "sent {}, received {}, lost {} (graceful migration loses nothing)",
        s.sent,
        s.received,
        s.lost()
    );
    println!(
        "instance now answers on NIC 1 (MAC {}), announced via GARP",
        pod.instance_mac(inst)
    );
    println!(
        "old NIC registrations: {}; new NIC registrations: {}",
        pod.backends[0].registration_count(),
        pod.backends[1].registration_count()
    );
    assert_eq!(s.lost(), 0);
    assert_eq!(pod.instance_mac(inst), pod.nic_mac(1));
}
