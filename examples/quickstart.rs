//! Quickstart: pool a NIC across hosts with Oasis.
//!
//! Builds a two-host CXL pod — host A has no NIC, host B has one — launches
//! a UDP echo instance on host A, and drives it from an external client.
//! Every packet crosses the host boundary through shared CXL memory: the
//! frontend driver on host A writes TX payloads into pool buffers and
//! signals host B's backend driver over a non-coherent message channel; the
//! NIC DMAs the buffers directly.
//!
//! Run with: `cargo run --release --example quickstart`

use oasis::apps::stats::ClientStats;
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::PodBuilder;
use oasis::sim::time::{SimDuration, SimTime};

fn main() {
    // 1. Describe the pod: two hosts around one CXL memory pool.
    let mut builder = PodBuilder::new(OasisConfig::default());
    let host_a = builder.add_host(); // no NIC — will borrow host B's
    let host_b = builder.add_nic_host(); // owns NIC 0
    let mut pod = builder.build();

    // 2. Launch an echo instance on the NIC-less host. The pod-wide
    //    allocator assigns it host B's NIC (10 Gbit/s lease).
    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    println!(
        "instance {} on host {host_a} served by remote NIC on host {host_b}",
        pod.instance_ip(inst)
    );

    // 3. Attach a client endpoint to the ToR switch and echo 1000 packets.
    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        64,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(20),
            count: 1000,
        },
        SimTime::from_micros(50),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));

    // 4. Run the co-simulation.
    pod.run(SimTime::from_millis(30));

    // 5. Results.
    let s = stats.borrow();
    println!(
        "echoed {}/{} packets, RTT p50 {:.2} us, p99 {:.2} us",
        s.received,
        s.sent,
        s.rtt.percentile(50.0) as f64 / 1e3,
        s.rtt.percentile(99.0) as f64 / 1e3,
    );
    println!(
        "CXL pool traffic: {} payload bytes, {} message bytes",
        (0..pod.pool.ports())
            .map(|p| pod
                .pool
                .meter(oasis::cxl::pool::PortId(p))
                .class_bytes(oasis::cxl::pool::TrafficClass::Payload))
            .sum::<u64>(),
        (0..pod.pool.ports())
            .map(|p| pod
                .pool
                .meter(oasis::cxl::pool::PortId(p))
                .class_bytes(oasis::cxl::pool::TrafficClass::Message))
            .sum::<u64>(),
    );
    assert_eq!(s.received, 1000, "every packet echoed");
}
