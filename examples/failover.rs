//! NIC failover: losing a NIC interrupts traffic for only tens of
//! milliseconds.
//!
//! Reproduces §3.3.3 end to end: the serving NIC's switch port is disabled
//! mid-run; the backend's link monitor reports the failure to the pod-wide
//! allocator over message channels; the allocator reroutes the instance to
//! the pod's reserved backup NIC; the frontend "borrows" the failed NIC's
//! MAC so the switch re-points RX immediately — no application involvement.
//!
//! Run with: `cargo run --release --example failover`

use oasis::apps::stats::ClientStats;
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::PodBuilder;
use oasis::sim::time::{SimDuration, SimTime};

fn main() {
    let mut builder = PodBuilder::new(OasisConfig::default());
    let host_a = builder.add_host(); // instance host
    let host_b = builder.add_nic_host(); // serving NIC (0)
    let host_c = builder.add_nic_host(); // backup NIC (1), reserved
    let mut pod = builder.backup_nic_on(host_c).build();

    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    println!(
        "instance {} served by NIC 0 (host {host_b}); backup NIC 1 (host {host_c})",
        pod.instance_ip(inst)
    );

    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        64,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(100),
            count: 28_000,
        },
        SimTime::from_millis(1),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));

    // Fail NIC 0 one second in (the paper's method: disable its switch
    // port; the PHY reports carrier loss ~37ms later).
    let fail_at = SimTime::from_secs(1);
    pod.schedule_nic_failure(fail_at, 0);
    pod.run(SimTime::from_secs(3));

    let s = stats.borrow();
    let losses = s.loss_times();
    println!(
        "\nsent {}, received {}, lost {}",
        s.sent,
        s.received,
        s.lost()
    );
    match (losses.first(), losses.last()) {
        (Some(first), Some(last)) => {
            println!(
                "failure injected at {:.3}s; losses from {:.4}s to {:.4}s",
                fail_at.as_secs_f64(),
                first.as_secs_f64(),
                last.as_secs_f64()
            );
            println!(
                "total interruption: {:.1} ms (paper: ~38 ms), then full recovery",
                (*last - *first).as_secs_f64() * 1e3
            );
        }
        _ => println!("no losses observed"),
    }
    println!(
        "allocator: NIC 0 marked failed; instance rerouted to NIC {:?}",
        pod.allocator
            .state
            .instances
            .iter()
            .find(|i| i.ip == pod.instance_ip(inst))
            .map(|i| i.nic)
            .unwrap()
    );
}
