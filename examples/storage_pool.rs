//! Storage pooling: block I/O to a remote SSD over CXL (§3.4).
//!
//! The storage engine mirrors the network engine: the frontend driver on
//! host 0 exposes a block-device interface; 64 B NVMe-mirroring messages
//! cross a non-coherent CXL channel to the backend on host 1, which
//! operates the SSD's queues; data moves through pool buffers the SSD DMAs
//! directly. Drive failures propagate to the guest as I/O errors — no
//! transparent failover for stateful devices.
//!
//! Run with: `cargo run --release --example storage_pool`

use oasis::core::config::OasisConfig;
use oasis::core::engine_storage::StoragePod;
use oasis::sim::time::SimTime;
use oasis::storage::ssd::SsdConfig;
use oasis::storage::BLOCK_SIZE;

fn main() {
    let mut pod = StoragePod::new(OasisConfig::default(), SsdConfig::default(), 8 * BLOCK_SIZE);

    // Write a block to the remote SSD.
    let data: Vec<u8> = (0..BLOCK_SIZE as usize).map(|i| (i % 251) as u8).collect();
    pod.frontend
        .submit_write(&mut pod.pool, 0, 42, &data)
        .expect("write accepted");
    let done = pod.run_until_completions(1, SimTime::from_millis(50));
    println!("write lba=42: {:?}", done[0].status);

    // Read it back across the host boundary.
    let t0 = pod.frontend.core.clock;
    pod.frontend
        .submit_read(&mut pod.pool, 0, 42, 1)
        .expect("read accepted");
    let done = pod.run_until_completions(1, SimTime::from_millis(100));
    let latency = pod.frontend.core.clock - t0;
    assert_eq!(done[0].data.as_deref(), Some(&data[..]));
    println!(
        "read  lba=42: {:?}, data verified, latency {:.1} us (flash {:.1} us + engine)",
        done[0].status,
        latency.as_micros_f64(),
        pod.ssd.config().read_latency_ns as f64 / 1e3,
    );

    // Pipelined reads exploit the drive's internal parallelism.
    let t0 = pod.frontend.core.clock;
    for lba in 0..8 {
        pod.frontend.submit_read(&mut pod.pool, 0, lba, 1).unwrap();
    }
    let done = pod.run_until_completions(8, SimTime::from_millis(200));
    println!(
        "8 pipelined reads completed in {:.1} us ({} ok)",
        (pod.frontend.core.clock - t0).as_micros_f64(),
        done.iter().filter(|r| r.status.is_ok()).count(),
    );

    // Fail the drive: errors propagate to the guest (§3.4 semantics).
    pod.ssd.set_failed(true);
    pod.frontend.submit_read(&mut pod.pool, 0, 0, 1).unwrap();
    let done = pod.run_until_completions(1, SimTime::from_millis(300));
    println!(
        "after drive failure: {:?} (propagated to guest)",
        done[0].status
    );
    assert!(!done[0].status.is_ok());
}
