//! NIC pooling: four hosts, one NIC, many instances.
//!
//! The economic scenario of the paper's introduction: instead of one NIC
//! per host, a pod of four hosts shares a single NIC. The pod-wide
//! allocator places each instance's traffic (local-first, then
//! least-loaded), and all cross-host datapaths run over non-coherent CXL
//! memory.
//!
//! Run with: `cargo run --release --example nic_pooling`

use oasis::apps::stats::{ClientStats, StatsHandle};
use oasis::apps::udp::{EchoServer, Pacing, UdpClient};
use oasis::core::config::OasisConfig;
use oasis::core::instance::AppKind;
use oasis::core::pod::PodBuilder;
use oasis::sim::time::{SimDuration, SimTime};

fn main() {
    let mut builder = PodBuilder::new(OasisConfig::default());
    let nic_host = builder.add_nic_host(); // the pod's only NIC
    let others: Vec<usize> = (0..3).map(|_| builder.add_host()).collect();
    let mut pod = builder.build();

    // One echo instance per host; all share NIC 0.
    let mut instances = Vec::new();
    for host in std::iter::once(nic_host).chain(others.iter().copied()) {
        let inst = pod.launch_instance(
            host,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            10_000,
        );
        println!(
            "instance {} on host {host} -> NIC {:?} (lease 10 Gbit/s)",
            pod.instance_ip(inst),
            pod.allocator
                .state
                .instances
                .iter()
                .find(|i| i.ip == pod.instance_ip(inst))
                .map(|i| i.nic)
                .unwrap()
        );
        instances.push(inst);
    }
    println!(
        "allocator: NIC 0 has {} Mbit/s allocated of {} Mbit/s\n",
        pod.allocator.state.nics[0].as_ref().unwrap().allocated_mbps,
        pod.allocator.state.nics[0].as_ref().unwrap().capacity_mbps
    );

    // Four clients, one per instance, echoing concurrently.
    let mut handles: Vec<StatsHandle> = Vec::new();
    for (i, &inst) in instances.iter().enumerate() {
        let stats = ClientStats::handle();
        let client = UdpClient::new(
            (i + 1) as u64,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            200,
            Pacing::Poisson {
                rate_rps: 50_000.0,
                until: SimTime::from_millis(20),
            },
            SimTime::from_micros(100),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        handles.push(stats);
    }
    pod.run(SimTime::from_millis(25));

    for (i, h) in handles.iter().enumerate() {
        let s = h.borrow();
        println!(
            "host {i}: {}/{} echoed, p50 {:.2} us, p99 {:.2} us",
            s.received,
            s.sent,
            s.rtt.percentile(50.0) as f64 / 1e3,
            s.rtt.percentile(99.0) as f64 / 1e3,
        );
    }
    let nic = &pod.nics[0];
    println!(
        "\nshared NIC carried {} frames ({} KB) for 4 hosts — 3 NICs saved",
        nic.stats.tx_frames + nic.stats.rx_frames,
        (nic.stats.tx_bytes + nic.stats.rx_bytes) / 1024,
    );
}
