//! Chaos-harness integration tests: seeded fault schedules must uphold
//! every recovery invariant, reproduce bit-for-bit from their seed, and
//! the CI seed matrix must exercise all five fault classes.
//!
//! The simulation-running tests are full-scale and therefore
//! release-gated (the CI chaos-smoke job runs `cargo test --release`);
//! the plan-level coverage check runs everywhere.

use oasis_bench::chaos::run_chaos;
use oasis_sim::fault::{FaultMix, FaultPlan};
use proptest::prelude::*;

/// The same fixed seed matrix the `chaos` binary runs in CI.
const CI_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Eight proptest-drawn seeds, eight distinct fault schedules — all
    /// five recovery invariants must hold for each.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "full-scale sims; run with --release")]
    fn chaos_invariants_hold_for_random_seeds(seed in 0u64..1_000_000) {
        let report = run_chaos(seed);
        prop_assert!(
            report.passed(),
            "seed {} violated invariants: {:?}",
            seed,
            report.violations
        );
    }
}

/// The same seed reproduces the same run, observation for observation.
#[test]
#[cfg_attr(debug_assertions, ignore = "full-scale sims; run with --release")]
fn chaos_runs_are_deterministic_per_seed() {
    let a = run_chaos(42);
    let b = run_chaos(42);
    assert_eq!(a, b, "same seed must reproduce the identical report");
}

/// Plan-level check (no simulation): the fixed CI seed matrix draws
/// schedules that together cover all five fault classes.
#[test]
fn chaos_ci_seeds_cover_all_fault_classes() {
    let mix = FaultMix {
        hosts: vec![1],
        nics: vec![0],
        ssds: vec![0],
        accels: vec![],
        events: 6,
    };
    let mut covered: Vec<&'static str> = CI_SEEDS
        .iter()
        .flat_map(|&s| {
            FaultPlan::randomized(s, oasis_sim::time::SimDuration::from_secs(2), &mix).classes()
        })
        .collect();
    covered.sort_unstable();
    covered.dedup();
    for class in [
        "cxl-stall",
        "host-crash",
        "packet-fault",
        "port-flap",
        "ssd-error",
    ] {
        assert!(
            covered.contains(&class),
            "CI seed matrix never draws the {class} fault class"
        );
    }
}
