//! Satellite check: the `sanitize` and `obs` feature layers under sharded
//! execution.
//!
//! A chaos run at `OASIS_SHARD_THREADS=2` must behave exactly like the
//! single-shard run: zero coherence-sanitizer errors (the invariant audit
//! folds sanitizer reports into `violations` when the feature is on), an
//! identical invariant report, and an associatively-merged
//! `MetricsSnapshot` whose JSON is byte-identical. The thread knob may only
//! change wall-clock behavior, never a simulated observable.

use oasis_bench::chaos::run_chaos_sharded;

/// Seed drawn from the CI matrix; any seed works (determinism is per-seed).
const SEED: u64 = 5;

#[test]
#[cfg_attr(debug_assertions, ignore = "full-scale sims; run with --release")]
fn sanitized_chaos_smoke_is_identical_at_two_shard_threads() {
    let (single, single_snap) = run_chaos_sharded(SEED, Some(1));
    let (sharded, sharded_snap) = run_chaos_sharded(SEED, Some(2));
    assert!(
        sharded.passed(),
        "sharded chaos run violated invariants (sanitizer errors included): {:?}",
        sharded.violations
    );
    assert_eq!(
        single, sharded,
        "chaos report must not depend on the shard thread count"
    );
    assert_eq!(
        single_snap, sharded_snap,
        "merged MetricsSnapshot must be identical to the single-shard run"
    );
}
