//! Determinism guard: installing an **empty** fault plan must leave the
//! Figure 13 failover experiment byte-identical to not installing one at
//! all — the fault-injection substrate is a strict no-op when unused.

use oasis_bench::fig13::fig13_failover_report;
use oasis_sim::fault::FaultPlan;

/// Full-scale (10 s) simulation — slow in debug, so it runs in release
/// (`cargo test --release`, the CI chaos-smoke job).
#[test]
#[cfg_attr(debug_assertions, ignore = "full-scale sim; run with --release")]
fn empty_fault_plan_leaves_fig13_byte_identical() {
    let baseline = fig13_failover_report(None);
    let with_empty_plan = fig13_failover_report(Some(&FaultPlan::empty()));
    assert_eq!(
        baseline, with_empty_plan,
        "an empty FaultPlan must not perturb the simulation"
    );
}
