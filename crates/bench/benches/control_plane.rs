//! Criterion benches for control-plane operations: allocator placement,
//! command codec, and Raft log replication.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oasis_core::allocator::{AllocCommand, AllocState};
use oasis_net::addr::Ipv4Addr;
use oasis_raft::{RaftConfig, RaftNode};
use oasis_sim::time::{SimDuration, SimTime};

fn populated_state(nics: u32, instances: u32) -> AllocState {
    let mut s = AllocState::default();
    let ttl = SimDuration::from_millis(300);
    for n in 0..nics {
        s.apply(
            SimTime::ZERO,
            ttl,
            &AllocCommand::RegisterNic {
                nic: n,
                host: n,
                capacity_mbps: 100_000,
                backup: n == nics - 1,
            },
        );
    }
    for i in 0..instances {
        s.apply(
            SimTime::ZERO,
            ttl,
            &AllocCommand::Assign {
                ip: Ipv4Addr::instance(i),
                host: i % nics,
                nic: i % (nics - 1),
                lease_mbps: 1_000,
            },
        );
    }
    s
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("placement_16nics_500instances", |b| {
        let s = populated_state(16, 500);
        b.iter(|| s.pick_nic(99, 5_000)); // remote host: least-loaded scan
    });
    c.bench_function("command_codec_roundtrip", |b| {
        let cmd = AllocCommand::Assign {
            ip: Ipv4Addr::instance(7),
            host: 3,
            nic: 2,
            lease_mbps: 25_000,
        };
        b.iter(|| AllocCommand::decode(&cmd.encode()).unwrap());
    });
}

fn bench_raft(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft");
    const N: u64 = 100;
    group.throughput(Throughput::Elements(N));
    group.bench_function("replicate_100_commands_3nodes", |b| {
        b.iter(|| {
            let ids: Vec<usize> = (0..3).collect();
            let mut nodes: Vec<RaftNode> = ids
                .iter()
                .map(|&id| {
                    let peers = ids.iter().copied().filter(|&p| p != id).collect();
                    RaftNode::new(id, peers, RaftConfig::default(), 42)
                })
                .collect();
            let mut now = SimTime::ZERO;
            let mut wire: Vec<(usize, usize, oasis_raft::RaftMessage)> = Vec::new();
            let mut proposed = 0u64;
            let mut committed = 0u64;
            while committed < N {
                now += SimDuration::from_micros(500);
                let deliveries = std::mem::take(&mut wire);
                for (from, to, msg) in deliveries {
                    nodes[to].handle(now, from, msg);
                }
                for n in nodes.iter_mut() {
                    n.tick(now);
                }
                if let Some(leader) = nodes.iter().position(|n| n.is_leader()) {
                    if proposed < N {
                        nodes[leader].propose(now, vec![proposed as u8]);
                        proposed += 1;
                    }
                    committed = nodes[leader].commit_index();
                }
                // Indexing sidesteps borrowing `nodes` while
                // `take_outbox` mutates one element.
                #[allow(clippy::needless_range_loop)]
                for i in 0..nodes.len() {
                    for (to, msg) in nodes[i].take_outbox() {
                        wire.push((i, to, msg));
                    }
                }
            }
            committed
        });
    });
    group.finish();
}

criterion_group!(benches, bench_allocator, bench_raft);
criterion_main!(benches);
