//! Criterion benches for whole-datapath simulation rates: how many
//! simulated packets / block I/Os per wall second the pod runtime
//! sustains, for the Oasis path and the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oasis_apps::stats::ClientStats;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_bench::harness::{single_instance_pod, Mode};
use oasis_core::config::OasisConfig;
use oasis_core::engine_storage::StoragePod;
use oasis_core::instance::AppKind;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

fn bench_udp_echo(c: &mut Criterion) {
    let mut group = c.benchmark_group("pod_udp_echo");
    const N: u64 = 200;
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    for mode in [Mode::Baseline, Mode::Oasis] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let (mut pod, inst) = single_instance_pod(
                        mode,
                        OasisConfig::default(),
                        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
                    );
                    let stats = ClientStats::handle();
                    let client = UdpClient::new(
                        1,
                        pod.instance_mac(inst),
                        pod.instance_ip(inst),
                        7,
                        64,
                        Pacing::FixedGap {
                            gap: SimDuration::from_micros(10),
                            count: N,
                        },
                        SimTime::from_micros(20),
                        stats.clone(),
                    );
                    pod.add_endpoint(Box::new(client));
                    pod.run(SimTime::from_millis(4));
                    let got = stats.borrow().received;
                    assert_eq!(got, N);
                    got
                });
            },
        );
    }
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_pod");
    const N: usize = 64;
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);
    group.bench_function("remote_reads_qd8", |b| {
        b.iter(|| {
            let mut pod =
                StoragePod::new(OasisConfig::default(), SsdConfig::default(), 8 * BLOCK_SIZE);
            let mut done = 0;
            let mut submitted = 0;
            while done < N {
                while submitted - done < 8 && submitted < N {
                    pod.frontend
                        .submit_read(&mut pod.pool, 0, (submitted % 64) as u64, 1)
                        .unwrap();
                    submitted += 1;
                }
                done += pod.run_until_completions(1, SimTime::from_secs(1)).len();
            }
            done
        });
    });
    group.finish();
}

criterion_group!(benches, bench_udp_echo, bench_storage);
criterion_main!(benches);
