//! Criterion benches for the Oasis message channel.
//!
//! Measures the *wall-clock* cost of simulating channel traffic — i.e. how
//! fast the library itself runs — per receiver policy, plus the raw
//! send/receive operation costs. (The *simulated* throughput numbers are
//! the `fig6_channel` experiment binary's job.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oasis_channel::{ChannelLayout, Policy, Receiver, Sender};
use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};

fn setup(slots: u64) -> (CxlPool, HostCtx, HostCtx, ChannelLayout) {
    let mut pool = CxlPool::new(1 << 21, 2);
    let mut ra = RegionAllocator::new(&pool);
    let region = ra.alloc(
        &mut pool,
        "bench",
        ChannelLayout::bytes_needed(slots, 16),
        TrafficClass::Message,
    );
    let layout = ChannelLayout::in_region(&region, slots, 16);
    (
        pool,
        HostCtx::new(PortId(0), 0),
        HostCtx::new(PortId(1), 0),
        layout,
    )
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_transfer");
    const N: u64 = 4096;
    group.throughput(Throughput::Elements(N));
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let (mut pool, mut tx, mut rx, layout) = setup(8192);
                    let mut sender = Sender::new(layout.clone());
                    let mut receiver = Receiver::new(layout, policy);
                    let msg = [3u8; 16];
                    let mut out = [0u8; 16];
                    let mut received = 0u64;
                    while received < N {
                        // Step the earlier side, like the co-sim runner.
                        if tx.clock <= rx.clock {
                            if !sender.try_send(&mut tx, &mut pool, &msg).unwrap() {
                                tx.advance(100);
                            }
                        } else if receiver.try_recv(&mut rx, &mut pool, &mut out) {
                            received += 1;
                        }
                    }
                    received
                });
            },
        );
    }
    group.finish();
}

fn bench_raw_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_ops");
    group.bench_function("send_one", |b| {
        let (mut pool, mut tx, _rx, layout) = setup(8192);
        let mut sender = Sender::new(layout);
        let msg = [1u8; 16];
        let mut sent = 0u64;
        b.iter(|| {
            if sent == 4096 {
                // Fake the receiver catching up so the ring never fills.
                pool.poke(sender.layout().counter_addr, &sender.sent().to_le_bytes());
                sent = 0;
            }
            sender.try_send(&mut tx, &mut pool, &msg).unwrap();
            sent += 1;
        });
    });
    group.bench_function("empty_poll_invalidate_prefetched", |b| {
        let (mut pool, _tx, mut rx, layout) = setup(8192);
        let mut receiver = Receiver::new(layout, Policy::InvalidatePrefetched);
        let mut out = [0u8; 16];
        b.iter(|| receiver.try_recv(&mut rx, &mut pool, &mut out));
    });
    group.finish();
}

criterion_group!(benches, bench_transfer, bench_raw_ops);
criterion_main!(benches);
