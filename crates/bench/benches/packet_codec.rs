//! Criterion benches for the wire-format codecs.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{GarpPacket, TcpFlags, TcpSegment, UdpPacket};

fn udp(payload: usize) -> UdpPacket {
    UdpPacket {
        src_mac: MacAddr::nic(1),
        dst_mac: MacAddr::nic(2),
        src_ip: Ipv4Addr::instance(1),
        dst_ip: Ipv4Addr::instance(2),
        src_port: 1234,
        dst_port: 80,
        payload: Bytes::from(vec![0x5a; payload]),
    }
}

fn bench_udp(c: &mut Criterion) {
    let mut group = c.benchmark_group("udp_codec");
    for payload in [32usize, 1458] {
        group.throughput(Throughput::Bytes(payload as u64 + 42));
        group.bench_with_input(
            BenchmarkId::new("encode", payload),
            &payload,
            |b, &payload| {
                let p = udp(payload);
                b.iter(|| p.encode());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parse", payload),
            &payload,
            |b, &payload| {
                let frame = udp(payload).encode();
                b.iter(|| UdpPacket::parse(&frame).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_tcp_and_garp(c: &mut Criterion) {
    let seg = TcpSegment {
        src_mac: MacAddr::nic(1),
        dst_mac: MacAddr::nic(2),
        src_ip: Ipv4Addr::instance(1),
        dst_ip: Ipv4Addr::instance(2),
        src_port: 11211,
        dst_port: 40000,
        seq: 1000,
        ack: 2000,
        flags: TcpFlags {
            ack: true,
            psh: true,
            ..Default::default()
        },
        window: 0xffff,
        payload: Bytes::from(vec![0x6f; 512]),
    };
    c.bench_function("tcp_encode_512B", |b| b.iter(|| seg.encode()));
    let frame = seg.encode();
    c.bench_function("tcp_parse_512B", |b| {
        b.iter(|| TcpSegment::parse(&frame).unwrap())
    });
    let garp = GarpPacket {
        sender_mac: MacAddr::nic(1),
        sender_ip: Ipv4Addr::instance(1),
    };
    c.bench_function("garp_roundtrip", |b| {
        b.iter(|| GarpPacket::parse(&garp.encode()).unwrap())
    });
}

criterion_group!(benches, bench_udp, bench_tcp_and_garp);
criterion_main!(benches);
