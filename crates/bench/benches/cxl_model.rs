//! Criterion benches for the CXL memory-model hot paths.
//!
//! These operations run millions of times per simulated second; their wall
//! cost bounds every experiment's runtime.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};

fn setup() -> (CxlPool, HostCtx) {
    let mut pool = CxlPool::new(1 << 22, 2);
    let mut ra = RegionAllocator::new(&pool);
    ra.alloc(&mut pool, "area", 1 << 21, TrafficClass::Payload);
    (pool, HostCtx::new(PortId(0), 0))
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hostctx");

    group.bench_function("read_hit_u64", |b| {
        let (mut pool, mut host) = setup();
        host.read_u64(&mut pool, 0);
        b.iter(|| host.read_u64(&mut pool, 0));
    });

    group.bench_function("read_miss_u64", |b| {
        let (mut pool, mut host) = setup();
        b.iter(|| {
            host.read_u64(&mut pool, 64);
            host.clflushopt(&mut pool, 64); // evict so the next read misses
        });
    });

    group.bench_function("write_clwb_line", |b| {
        let (mut pool, mut host) = setup();
        let line = [7u8; 64];
        b.iter(|| {
            host.write(&mut pool, 128, &line);
            host.clwb(&mut pool, 128);
        });
    });

    group.throughput(Throughput::Bytes(1500));
    group.bench_function("read_stream_1500B", |b| {
        let (mut pool, mut host) = setup();
        let mut out = [0u8; 1500];
        b.iter(|| {
            host.read_stream(&mut pool, 4096, &mut out);
            for la in oasis_cxl::lines_covering(4096, 1500) {
                host.clflushopt(&mut pool, la);
            }
        });
    });

    group.bench_function("dma_write_1500B", |b| {
        let (mut pool, host) = setup();
        let data = [9u8; 1500];
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            pool.dma_write(
                oasis_sim::time::SimTime::from_nanos(t),
                host.port,
                8192,
                &data,
            );
        });
    });
    group.finish();
}

fn bench_cache_pressure(c: &mut Criterion) {
    // Streaming through 4x the cache capacity: constant evictions.
    c.bench_function("cache_thrash_16k_lines", |b| {
        let (mut pool, mut host) = setup();
        b.iter(|| {
            for i in 0..16_384u64 {
                host.read_u64(&mut pool, (i * 64) % (1 << 20));
            }
            host.stats.misses
        });
    });
}

criterion_group!(benches, bench_ops, bench_cache_pressure);
criterion_main!(benches);
