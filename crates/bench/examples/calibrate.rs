//! Calibration probe: baseline vs Oasis RTT across workloads.
use oasis_apps::udp::Pacing;
use oasis_bench::harness::{run_memcached, run_udp_echo, Mode};
use oasis_sim::time::SimDuration;

fn main() {
    for payload in [75usize, 1400] {
        let mut p50s = Vec::new();
        for mode in Mode::ALL {
            let stats = run_udp_echo(
                mode,
                payload,
                Pacing::FixedGap {
                    gap: SimDuration::from_micros(50),
                    count: 400,
                },
                SimDuration::from_millis(25),
                SimDuration::from_millis(2),
            );
            let s = stats.borrow();
            p50s.push((
                mode.label(),
                s.rtt.percentile(50.0),
                s.rtt.percentile(99.0),
                s.sent,
                s.received,
            ));
        }
        println!("udp {payload}B:");
        for (m, p50, p99, tx, rx) in &p50s {
            println!(
                "  {m:20} p50={:.2}us p99={:.2}us ({tx} tx {rx} rx)",
                *p50 as f64 / 1e3,
                *p99 as f64 / 1e3
            );
        }
    }
    for mode in [Mode::Baseline, Mode::Oasis] {
        let stats = run_memcached(
            mode,
            100,
            SimDuration::from_micros(100),
            200,
            SimDuration::from_millis(25),
            SimDuration::from_millis(2),
        );
        let s = stats.borrow();
        println!(
            "memcached {:18} p50={:.2}us p99={:.2}us ({} tx {} rx)",
            mode.label(),
            s.rtt.percentile(50.0) as f64 / 1e3,
            s.rtt.percentile(99.0) as f64 / 1e3,
            s.sent,
            s.received
        );
    }
}
