//! Metric name registry for `oasis-bench` (see `oasis-check`'s
//! `metric-name` rule: every metric name literal in the workspace lives in
//! its crate's `metrics.rs`, is `snake_case`, and carries the crate
//! prefix).
//!
//! These are harness-side metrics: tallies owned by experiment clients and
//! timed phases rather than by pod components, folded into the same
//! snapshot as the pod's own export so a figure prints every number from
//! one canonical source.

/// Packets sent by an experiment's client endpoint (tag = client id).
pub const CLIENT_SENT: &str = "bench.client_sent";
/// Packets received back by an experiment's client endpoint.
pub const CLIENT_RECEIVED: &str = "bench.client_received";
/// Packets lost as seen by an experiment's client endpoint.
pub const CLIENT_LOST: &str = "bench.client_lost";

/// Simulated operations executed by a perf_smoke phase (tag = phase index).
pub const PERF_SIM_OPS: &str = "bench.perf_sim_ops";

/// Jobs completed by an accel-offload batch (tag = sharing-host count).
pub const ACCEL_BATCH_JOBS: &str = "bench.accel_batch_jobs";
/// Simulated makespan of an accel-offload batch in nanoseconds
/// (tag = sharing-host count).
pub const ACCEL_MAKESPAN_NS: &str = "bench.accel_makespan_ns";
