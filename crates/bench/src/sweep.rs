//! Parallel sweep runner for the experiment binaries.
//!
//! Every figure in the paper is a sweep: the same simulation re-run over a
//! grid of configurations (offered loads, pod sizes, frameworks × modes).
//! Each point builds its own world from a fixed seed, so points share no
//! state and can run on separate OS threads. [`SweepRunner`] fans a job
//! list across a small thread pool and returns results **in input order**,
//! which keeps the rendered tables byte-identical at any thread count —
//! determinism comes from indexing results by job position, never by
//! completion order.
//!
//! Simulation worlds are `Send` (stats handles are `Arc`-backed), but a job
//! closure should still build its world *inside* the worker and return only
//! plain data (numbers, strings) — worlds are big, results are small.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::utils::CachePadded;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "OASIS_SWEEP_THREADS";

/// Fans independent simulation jobs across a scoped thread pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner with an explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Thread count from `OASIS_SWEEP_THREADS`, defaulting to the machine's
    /// available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every job and return the results in input order.
    ///
    /// Workers claim job indices from a shared counter, so scheduling is
    /// dynamic, but each result lands in the slot of the job that produced
    /// it; the merged vector is independent of thread count and timing.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return jobs.iter().map(&f).collect();
        }

        let next = CachePadded::new(AtomicUsize::new(0));
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&jobs[i]);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        })
        .expect("sweep worker panicked");

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap()
                    .unwrap_or_else(|| panic!("sweep job {i} produced no result"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let jobs: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = jobs.iter().map(|j| j * j + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = SweepRunner::new(threads).run(&jobs, |&j| j * j + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_job() {
        let r = SweepRunner::new(4);
        assert_eq!(r.run::<u64, u64, _>(&[], |&j| j), Vec::<u64>::new());
        assert_eq!(r.run(&[7u64], |&j| j + 1), vec![8]);
    }

    #[test]
    fn clamps_zero_threads() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
    }

    #[test]
    fn more_threads_than_jobs() {
        let got = SweepRunner::new(16).run(&[1u64, 2, 3], |&j| j * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }
}
