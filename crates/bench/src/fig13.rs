//! Figure 13 scenario as a library function, so the determinism guard can
//! render the report twice — once with no fault plan and once with an empty
//! [`FaultPlan`] installed — and assert the outputs are byte-identical.
//!
//! The scenario: a 10-second UDP echo run; at the 5-second mark the serving
//! NIC's switch port is disabled (the §5.3 injection). Oasis detects carrier
//! loss, notifies the pod-wide allocator over message channels, and reroutes
//! the instance to the pod's backup NIC with MAC borrowing.

use std::fmt::Write;

use oasis_apps::stats::ClientStats;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_obs::MetricSink;
use oasis_sim::fault::FaultPlan;
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

use crate::metrics;

/// Run the Figure 13 failover scenario and render the full report. When
/// `plan` is `Some`, it is installed before the run; an empty plan must
/// leave the report byte-identical to passing `None`.
pub fn fig13_failover_report(plan: Option<&FaultPlan>) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 13: UDP packet loss during NIC failover ==\n"
    )
    .unwrap();
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host(); // instance host
    let _host_b = b.add_nic_host(); // serving NIC (0)
    let host_c = b.add_nic_host(); // backup NIC (1)
    let mut pod = b.backup_nic_on(host_c).build();

    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    let end = SimTime::from_secs(10);
    let fail_at = SimTime::from_secs(5);
    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        75 - 42,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(200), // 5k packets/s
            count: 49_000,
        },
        SimTime::from_millis(1),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.schedule_nic_failure(fail_at, 0);
    if let Some(p) = plan {
        pod.install_fault_plan(p);
    }
    pod.run(end);

    // Headline numbers come from one canonical snapshot: the pod's own
    // export merged with the harness-side client tallies. Ambient `obs`
    // entries ride along in the snapshot but nothing below prints them, so
    // the report stays byte-identical with the feature on or off.
    let s = stats.borrow();
    let mut snap = pod.metrics_snapshot();
    let mut harness = MetricSink::new();
    harness.set(metrics::CLIENT_SENT, 1, s.sent);
    harness.set(metrics::CLIENT_RECEIVED, 1, s.received);
    harness.set(metrics::CLIENT_LOST, 1, s.lost());
    snap.merge(&harness.snapshot());
    writeln!(
        out,
        "sent {} received {} lost {}\n",
        snap.counter(metrics::CLIENT_SENT, 1),
        snap.counter(metrics::CLIENT_RECEIVED, 1),
        snap.counter(metrics::CLIENT_LOST, 1)
    )
    .unwrap();

    // (a) losses over the 10s run, 250ms bins.
    writeln!(out, "(a) lost packets over the run (250ms bins):").unwrap();
    let series = s.loss_series(SimDuration::from_millis(250), end);
    let mut t = Table::new(vec!["t (s)", "lost", ""]);
    for (i, &v) in series.bins().iter().enumerate() {
        if v > 0.0 || (18..=22).contains(&i) {
            t.row(vec![
                format!("{:.2}", i as f64 * 0.25),
                format!("{v}"),
                "#".repeat(v as usize / 4),
            ]);
        }
    }
    writeln!(out, "{}", t.render()).unwrap();

    // (b) zoom on the failure window.
    let losses = s.loss_times();
    if let (Some(first), Some(last)) = (losses.first(), losses.last()) {
        let duration = *last - *first;
        writeln!(out, "(b) failure window:").unwrap();
        writeln!(out, "    first loss at {:.4}s", first.as_secs_f64()).unwrap();
        writeln!(out, "    last  loss at {:.4}s", last.as_secs_f64()).unwrap();
        writeln!(
            out,
            "    total failure time ~{:.1} ms  (paper: ~38 ms)",
            duration.as_secs_f64() * 1e3
        )
        .unwrap();
        // Post-recovery cleanliness.
        let after = losses.iter().filter(|&&t| t > *last).count();
        assert_eq!(after, 0);
    } else {
        writeln!(
            out,
            "no losses observed — failover did not interrupt traffic?"
        )
        .unwrap();
    }
    // Control-plane accounting.
    writeln!(
        out,
        "\nallocator: failovers={} reroutes={}; backup NIC now serves the instance",
        snap.counter(oasis_core::metrics::ALLOC_FAILOVERS, 0),
        snap.counter(oasis_core::metrics::ALLOC_REROUTES_SENT, 0)
    )
    .unwrap();
    out
}
