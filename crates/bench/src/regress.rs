//! The bench-regression gate shared by `perf_smoke` and `accel_offload`.
//!
//! Each bench writes a `BENCH_*.json` file with a recorded baseline; in
//! `--check` mode the measured value is compared against that committed
//! baseline and the process exits non-zero when it has regressed by more
//! than the tolerance band. Knobs (environment variables):
//!
//! * `OASIS_BENCH_TOLERANCE_PCT` — allowed regression in percent
//!   (default 15, the CI gate from the issue).
//! * `OASIS_BENCH_HANDICAP_PCT` — artificially shrinks the measured value
//!   by this percent before the comparison. Exists so CI can prove the red
//!   path: a 20 % handicap against a 15 % band must fail the job.

/// Allowed regression below the baseline, in percent.
pub fn tolerance_pct() -> f64 {
    std::env::var("OASIS_BENCH_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0)
}

/// Artificial measurement handicap, in percent (red-path testing).
pub fn handicap_pct() -> f64 {
    std::env::var("OASIS_BENCH_HANDICAP_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// Apply the configured handicap to a measured value.
pub fn handicapped(measured: f64) -> f64 {
    measured * (1.0 - handicap_pct() / 100.0)
}

/// One gate comparison: `measured` (already handicapped) against
/// `baseline`. Prints the verdict; returns `false` on regression beyond
/// the tolerance band. Higher is better for every gated metric.
pub fn gate(what: &str, measured: f64, baseline: f64) -> bool {
    let tol = tolerance_pct();
    let floor = baseline * (1.0 - tol / 100.0);
    let ok = measured >= floor;
    println!(
        "check {what}: measured {measured:.1} vs baseline {baseline:.1} \
         (floor {floor:.1}, tolerance {tol:.0}%) -> {}",
        if ok { "OK" } else { "REGRESSION" }
    );
    ok
}

/// Pull `"key": <number>` out of a previously written JSON file. The files
/// are machine-written by the benches with a fixed shape, so a plain text
/// scan is reliable; we have no JSON dependency offline.
pub fn read_json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_scan() {
        let text = "{\n  \"a\": 12.5,\n  \"b\": -3,\n  \"c\": null\n}\n";
        assert_eq!(read_json_number(text, "a"), Some(12.5));
        assert_eq!(read_json_number(text, "b"), Some(-3.0));
        assert_eq!(read_json_number(text, "c"), None);
        assert_eq!(read_json_number(text, "missing"), None);
    }

    #[test]
    fn gate_bands() {
        // Defaults: 15% band, no handicap (env not set in tests).
        assert!(gate("t", 100.0, 100.0));
        assert!(gate("t", 86.0, 100.0));
        assert!(!gate("t", 84.0, 100.0));
        assert!(gate("t", 200.0, 100.0));
    }
}
