//! Shared helpers for the Oasis experiment binaries.
//!
//! Each table and figure of the paper has a binary in `src/bin/`; this
//! library holds the pieces they share (pod assembly shortcuts, sweep
//! helpers, output formatting).

pub mod chaos;
pub mod fig13;
pub mod harness;
pub mod metrics;
pub mod regress;
pub mod sweep;

pub use harness::Mode;
pub use sweep::SweepRunner;
