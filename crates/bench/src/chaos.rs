//! Chaos harness: run a pod under a seeded [`FaultPlan`] and check the
//! end-to-end recovery invariants from §5.3.
//!
//! One run builds a four-host pod (allocator + echo + storage driver on
//! host 0, a crashable victim on host 1, the serving NIC + pooled SSD on
//! host 2, the backup NIC on host 3), installs a randomized fault schedule
//! drawn from all five fault classes, drives network and storage traffic
//! through the faults, lets the pod settle, and then audits:
//!
//! 1. **Exactly-once storage completion** — every accepted command id
//!    completes exactly once, even through SSD timeouts and retries.
//! 2. **No stale reads** — every successful read returns the last
//!    acknowledged write for that block.
//! 3. **No leaked pool regions** — outstanding pool bytes equal the
//!    baseline minus exactly the regions of reclaimed instances.
//! 4. **Allocator/raft consistency** — the service state machine replays
//!    from the committed log prefix.
//! 5. **Bounded failover windows** — host-failure detection latency stays
//!    within the heartbeat deadline plus scheduling slack, and the pod
//!    serves traffic again after the last fault (probe liveness).
//! 7. **Migration exactly-once** (ISSUE 10) — a seeded storm of live
//!    migrations against the replicated fleet state machine, where every
//!    open ticket is resolved by a crash-recovery outcome drawn from the
//!    same seed: commit, rollback, or a host crash mid-copy whose
//!    recovery retries the finishing command. After every command the
//!    capacity books must equal what the instance table plus open
//!    tickets derive (an instance's resources are held on exactly the
//!    pods the protocol says — never leaked on both sides, never
//!    dropped), and a duplicate `FinishMigration` delivery must degrade
//!    to a `Rejected` no-op that leaves the state byte-identical.
//!
//! (Invariant 6 is the coherence sanitizer, compiled in with
//! `--features sanitize`.) Everything is keyed off one seed, so a
//! violation reproduces exactly.

use std::fmt::Write as _;

use oasis_sim::detmap::DetMap;

use oasis_apps::stats::ClientStats;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_core::allocator::{
    FleetAllocator, FleetCommand, FleetResponse, FleetState, TransferPath,
};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_core::snapshot::{SnapshotWriter, Snapshottable};
use oasis_sim::fault::{FaultKind, FaultMix, FaultPlan};
use oasis_sim::time::{SimDuration, SimTime};
use oasis_sim::SimRng;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

/// Volume size in blocks; the write pattern touches each LBA at most once.
const VOL_BLOCKS: u64 = 512;

/// Everything a chaos run observed, sufficient to print a report and to
/// assert determinism (same seed ⇒ identical report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// The seed the fault plan (and nothing else) was drawn from.
    pub seed: u64,
    /// Fault classes present in the plan (labels from `FaultPlan::classes`).
    pub classes: Vec<&'static str>,
    /// Scheduled fault events.
    pub events: usize,
    /// Invariant violations; empty means the run passed.
    pub violations: Vec<String>,
    /// Host-failure detections as `(host, silent_since_ns, detected_at_ns)`.
    pub detections: Vec<(u32, u64, u64)>,
    /// Storage commands accepted at submit time.
    pub storage_submitted: usize,
    /// Frontend retransmissions (timeout or media-error retries).
    pub storage_retries: u64,
    /// Commands that exhausted their retry budget (surfaced as errors).
    pub storage_retry_exhausted: u64,
    /// Replayed commands the backend answered from its dedup cache.
    pub storage_replays_answered: u64,
    /// Probe-phase echo traffic (sent, received) — liveness after recovery.
    pub probe: (u64, u64),
    /// Migration-storm tallies as `(started, committed, rolled back)`.
    pub migrations: (u64, u64, u64),
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Detection latencies (detected − last heartbeat) in nanoseconds.
    pub fn detection_latencies_ns(&self) -> Vec<u64> {
        self.detections.iter().map(|&(_, s, d)| d - s).collect()
    }

    /// Render a one-run human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "seed {:>4}: {} events [{}]",
            self.seed,
            self.events,
            self.classes.join(", ")
        )
        .unwrap();
        writeln!(
            out,
            "  storage: {} submitted, {} retries, {} exhausted, {} replays answered",
            self.storage_submitted,
            self.storage_retries,
            self.storage_retry_exhausted,
            self.storage_replays_answered
        )
        .unwrap();
        for &(host, silent, detected) in &self.detections {
            writeln!(
                out,
                "  detection: host {} silent at {:.4}s, detected at {:.4}s ({:.1} ms)",
                host,
                silent as f64 / 1e9,
                detected as f64 / 1e9,
                (detected - silent) as f64 / 1e6
            )
            .unwrap();
        }
        writeln!(out, "  probe: {}/{} echoed", self.probe.1, self.probe.0).unwrap();
        writeln!(
            out,
            "  migrations: {} started, {} committed, {} rolled back (exactly-once audit)",
            self.migrations.0, self.migrations.1, self.migrations.2
        )
        .unwrap();
        if self.passed() {
            writeln!(out, "  PASS").unwrap();
        } else {
            for v in &self.violations {
                writeln!(out, "  VIOLATION: {v}").unwrap();
            }
        }
        out
    }
}

/// One block's worth of a deterministic byte pattern for `tag`.
fn pattern(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

enum Io {
    Write { lba: u64, tag: u8 },
    Read { lba: u64 },
}

/// The fleet state's canonical snapshot bytes — two states are equal for
/// the exactly-once audit iff their checkpoints are byte-identical.
fn fleet_state_bytes(st: &FleetState) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    st.snapshot_state(&mut w);
    w.finish()
}

/// Recompute every pod's capacity books from first principles — the live
/// instance table plus the open migration tickets — and compare against
/// the incrementally maintained books. This is the "never both, never
/// neither" check: an instance holds CPU/memory on exactly its source host
/// plus (while a ticket is open) the ticket's reserved target host, and
/// device leases on exactly its device pod plus the ticket's target pod.
fn audit_migration_books(st: &FleetState) -> Option<String> {
    let mut vcpus: Vec<Vec<u32>> = st.pods.iter().map(|p| vec![0; p.hosts()]).collect();
    let mut mem: Vec<Vec<u32>> = st.pods.iter().map(|p| vec![0; p.hosts()]).collect();
    let mut nic: Vec<u64> = vec![0; st.pods.len()];
    let mut ssd: Vec<u64> = vec![0; st.pods.len()];
    for (id, slot) in st.instances.iter().enumerate() {
        let Some(inst) = slot else { continue };
        vcpus[inst.pod as usize][inst.host as usize] += inst.vcpus;
        mem[inst.pod as usize][inst.host as usize] += inst.mem_gb;
        nic[inst.device_pod as usize] += inst.nic_mbps as u64;
        ssd[inst.device_pod as usize] += inst.ssd as u64;
        if let Some(t) = st.migration(id as u64) {
            vcpus[t.dst_pod as usize][t.dst_host as usize] += inst.vcpus;
            mem[t.dst_pod as usize][t.dst_host as usize] += inst.mem_gb;
            nic[t.dst_pod as usize] += inst.nic_mbps as u64;
            ssd[t.dst_pod as usize] += inst.ssd as u64;
        }
    }
    for (p, pc) in st.pods.iter().enumerate() {
        if pc.host_vcpus_used != vcpus[p] || pc.host_mem_used != mem[p] {
            return Some(format!(
                "pod {p} CPU/mem books diverged: have {:?}/{:?}, derived {:?}/{:?}",
                pc.host_vcpus_used, pc.host_mem_used, vcpus[p], mem[p]
            ));
        }
        if pc.nic_mbps_used != nic[p] || pc.ssd_used != ssd[p] {
            return Some(format!(
                "pod {p} device books diverged: have nic {} ssd {}, derived nic {} ssd {}",
                pc.nic_mbps_used, pc.ssd_used, nic[p], ssd[p]
            ));
        }
    }
    None
}

/// Invariant 7: a seeded storm of live migrations against the replicated
/// fleet state machine, auditing that every migration is exactly-once.
///
/// Each round opens a ticket through the validated command API and then
/// resolves it with a crash-recovery outcome drawn from the seed:
///
/// * commit (the copy finished; the instance lands on the target),
/// * rollback (the copy was abandoned; the source keeps the instance), or
/// * **host crash mid-copy**: recovery decides the outcome once, and the
///   restarted driver then *re-delivers the identical `FinishMigration`*.
///   The duplicate must degrade to a `Rejected` no-op that leaves the
///   state byte-identical — completing on the target *and* rolling back
///   on the source would double-release, which the books audit catches.
///
/// After every command the capacity books are recomputed from the
/// instance table plus open tickets, and at the end the state must still
/// replay from the committed raft log. Returns
/// `(started, committed, aborted)`.
fn migration_storm(seed: u64, violations: &mut Vec<String>) -> (u64, u64, u64) {
    let mut alloc = FleetAllocator::new();
    let hosts = 4u32;
    for pod in 0..2u32 {
        let resp = alloc.execute(
            SimTime::ZERO,
            &FleetCommand::RegisterPod {
                pod,
                hosts,
                vcpus_per_host: 96,
                mem_gb_per_host: 512,
                nic_mbps: hosts as u64 * 100_000,
                ssd_cap: hosts as u64 * 12_288,
            },
        );
        assert!(resp.is_ok(), "pod registration cannot fail on a fresh log");
    }
    alloc
        .execute(
            SimTime::ZERO,
            &FleetCommand::AddLink {
                a: 0,
                b: 1,
                latency_ns: 1_000,
            },
        )
        .expect("first uplink");

    // A population of instances spread across both pods; leases are small
    // enough that either pod can always host a migrating twin.
    let mut ids: Vec<u64> = Vec::new();
    for i in 0..8u32 {
        match alloc.execute(
            SimTime::from_micros(i as u64),
            &FleetCommand::CreateInstance {
                at: i as u64 * 1_000,
                vcpus: 8 + (i % 3) * 4,
                mem_gb: 32,
                ssd: 1_024,
                nic_mbps: 10_000,
                home_pod: i % 2,
            },
        ) {
            Ok(FleetResponse::Created { id, .. }) => ids.push(id),
            other => panic!("seed population must place: {other:?}"),
        }
    }

    let mut rng = SimRng::new(seed ^ 0x4D16_7A7E);
    let mut at = 1_000_000u64; // command-time ns, strictly increasing
    for round in 0..24u64 {
        at += 1_000 + rng.range_u64(0, 5_000);
        let id = ids[rng.range_usize(0, ids.len())];
        let Some(Some(inst)) = alloc.state.instances.get(id as usize).copied() else {
            continue;
        };
        let dst_pod = 1 - inst.pod; // always migrate to the other pod
        let path = if rng.chance(0.5) {
            TransferPath::Cxl
        } else {
            TransferPath::Nic
        };
        let open = FleetCommand::MigrateInstance {
            at,
            id,
            dst_pod,
            path,
        };
        if alloc.execute(SimTime::from_nanos(at), &open).is_err() {
            continue; // target momentarily full — not a fault, try next round
        }
        if let Some(v) = audit_migration_books(&alloc.state) {
            violations.push(format!("migration round {round} (ticket open): {v}"));
        }

        at += 1_000 + rng.range_u64(0, 5_000);
        let scenario = rng.range_u64(0, 3);
        // Scenario 2 is the host crash mid-copy: recovery still decides a
        // single outcome (whatever the log's FinishMigration says), and
        // the restarted driver re-delivers that same command afterwards.
        let commit = match scenario {
            0 => true,
            1 => false,
            _ => rng.chance(0.5),
        };
        let finish = FleetCommand::FinishMigration { at, id, commit };
        match alloc.execute(SimTime::from_nanos(at), &finish) {
            Ok(FleetResponse::MigrationFinished { committed, .. }) if committed == commit => {}
            other => violations.push(format!(
                "migration round {round}: finish({commit}) answered {other:?}"
            )),
        }
        if scenario == 2 {
            let before = fleet_state_bytes(&alloc.state);
            let dup = alloc.state.apply(&finish);
            if dup != FleetResponse::Rejected {
                violations.push(format!(
                    "migration round {round}: duplicate finish answered {dup:?}, want Rejected"
                ));
            }
            if fleet_state_bytes(&alloc.state) != before {
                violations.push(format!(
                    "migration round {round}: duplicate finish mutated the fleet state"
                ));
            }
        }
        if let Some(v) = audit_migration_books(&alloc.state) {
            violations.push(format!("migration round {round} (ticket closed): {v}"));
        }
    }

    // One migration interrupted by a kill: the racing KillInstance must
    // release both sides (source resources and the target reservation).
    let id = ids[rng.range_usize(0, ids.len())];
    if let Some(Some(inst)) = alloc.state.instances.get(id as usize).copied() {
        at += 1_000;
        let open = FleetCommand::MigrateInstance {
            at,
            id,
            dst_pod: 1 - inst.pod,
            path: TransferPath::Cxl,
        };
        if alloc.execute(SimTime::from_nanos(at), &open).is_ok() {
            at += 1_000;
            alloc
                .execute(
                    SimTime::from_nanos(at),
                    &FleetCommand::KillInstance { at, id },
                )
                .expect("a live instance can always be killed");
            if alloc.state.migration(id).is_some() {
                violations.push("migration ticket survived a racing kill".into());
            }
            if let Some(v) = audit_migration_books(&alloc.state) {
                violations.push(format!("migration (kill racing copy): {v}"));
            }
        }
    }

    if !alloc.state.migrations.is_empty() {
        violations.push(format!(
            "migration tickets leaked open: {:?}",
            alloc.state.migrations
        ));
    }
    let st = &alloc.state;
    if st.migrations_started != st.migrations_committed + st.migrations_aborted {
        violations.push(format!(
            "migration counters unbalanced: {} started != {} committed + {} aborted",
            st.migrations_started, st.migrations_committed, st.migrations_aborted
        ));
    }
    if !alloc.consistent_with_log() {
        violations.push("fleet state diverged from the raft log after the migration storm".into());
    }
    (
        st.migrations_started,
        st.migrations_committed,
        st.migrations_aborted,
    )
}

/// Run one seeded chaos schedule to completion and audit the invariants.
pub fn run_chaos(seed: u64) -> ChaosReport {
    run_chaos_sharded(seed, None).0
}

/// [`run_chaos`] with an explicit shard worker-thread count (`None` keeps
/// the process-wide `OASIS_SHARD_THREADS` setting), also returning the
/// pod's final [`oasis_obs::MetricsSnapshot`] as JSON. The snapshot is the
/// associative merge the observability exporter performs, so comparing the
/// JSON across thread counts asserts the whole sanitize/obs stack — not
/// just the invariant audit — is thread-count-invariant.
pub fn run_chaos_sharded(seed: u64, threads: Option<usize>) -> (ChaosReport, String) {
    let cfg = OasisConfig::default();
    let mut b = PodBuilder::new(cfg.clone());
    let h0 = b.add_host(); // echo instance + storage driver (never crashed)
    let h1 = b.add_host(); // victim instance (crash target)
    let h2 = b.add_nic_host(); // serving NIC 0
    let h3 = b.add_nic_host(); // backup NIC 1
    b.add_ssd(h2, SsdConfig::default()); // pooled SSD 0
    let mut pod = b.backup_nic_on(h3).build();
    if let Some(n) = threads {
        pod.set_shard_threads(n);
    }

    let echo = pod.launch_instance(
        h0,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    let before_victim = pod.pool_outstanding();
    let victim = pod.launch_instance(
        h1,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );
    let victim_bytes = pod.pool_outstanding() - before_victim;
    let baseline_outstanding = pod.pool_outstanding();
    let vol = pod
        .create_volume(echo, VOL_BLOCKS)
        .expect("volume capacity");

    // Steady traffic through the fault window, to both instances.
    let main_stats = ClientStats::handle();
    pod.add_endpoint(Box::new(UdpClient::new(
        1,
        pod.instance_mac(echo),
        pod.instance_ip(echo),
        7,
        75 - 42,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(500),
            count: 4_000, // 1ms .. ~2s
        },
        SimTime::from_millis(1),
        main_stats.clone(),
    )));
    let victim_stats = ClientStats::handle();
    pod.add_endpoint(Box::new(UdpClient::new(
        2,
        pod.instance_mac(victim),
        pod.instance_ip(victim),
        7,
        75 - 42,
        Pacing::FixedGap {
            gap: SimDuration::from_millis(1),
            count: 2_000, // 1ms .. ~2s
        },
        SimTime::from_millis(1),
        victim_stats.clone(),
    )));
    // Post-recovery liveness probe: fires well after the last fault has
    // been repaired and every failover has settled.
    let probe_stats = ClientStats::handle();
    pod.add_endpoint(Box::new(UdpClient::new(
        3,
        pod.instance_mac(echo),
        pod.instance_ip(echo),
        7,
        75 - 42,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(200),
            count: 2_500, // 3s .. 3.5s
        },
        SimTime::from_secs(3),
        probe_stats.clone(),
    )));

    // Five fault classes over a 2-second horizon. NIC 1 stays out of the
    // mix so the pod always has a working backup; the allocator host
    // (core 0) is excluded by construction.
    let horizon = SimDuration::from_secs(2);
    let mix = FaultMix {
        hosts: vec![h1],
        nics: vec![0],
        ssds: vec![0],
        accels: vec![],
        events: 6,
    };
    let plan = FaultPlan::randomized(seed, horizon, &mix);
    let classes = plan.classes();
    let events = plan.events.len();
    pod.install_fault_plan(&plan);

    // Flapped ports come back at the link level, but re-admitting the NIC
    // for placement is an operator action — schedule it off the plan.
    let mut repairs: Vec<(SimTime, usize)> = plan
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            FaultKind::PortFlap { nic, down_for } => Some((
                ev.at + down_for + cfg.link_detect + SimDuration::from_millis(10),
                nic,
            )),
            _ => None,
        })
        .collect();
    repairs.sort_by_key(|&(at, nic)| (at, nic));
    repairs.reverse(); // pop() yields earliest first

    let mut violations: Vec<String> = Vec::new();
    let mut pending: DetMap<u16, Io> = DetMap::default();
    let mut completions: DetMap<u16, u32> = DetMap::default();
    let mut shadow: DetMap<u64, u8> = DetMap::default();
    let mut acked: Vec<u64> = Vec::new();
    let mut submitted = 0usize;

    let slice = SimDuration::from_millis(10);
    let submit_until = SimTime::from_millis(2_400);
    let end = SimTime::from_millis(3_600);
    let mut now = SimTime::ZERO;
    let mut round = 0u64;
    while now < end {
        now += slice;
        while let Some(&(at, nic)) = repairs.last() {
            if at > now {
                break;
            }
            repairs.pop();
            pod.mark_nic_repaired(nic);
        }
        if now <= submit_until {
            // One write to a never-before-written LBA (rounds < VOL_BLOCKS,
            // so the shadow copy is unambiguous even with I/O in flight) …
            let lba = round % VOL_BLOCKS;
            let tag = (seed as u8) ^ (round as u8);
            if let Some(cid) = pod.volume_write(vol, lba, &pattern(tag)) {
                pending.insert(cid, Io::Write { lba, tag });
                submitted += 1;
            }
            // … and one read of a previously acknowledged LBA.
            if !acked.is_empty() {
                let lba = acked[(round as usize * 7 + seed as usize) % acked.len()];
                if let Some(cid) = pod.volume_read(vol, lba, 1) {
                    pending.insert(cid, Io::Read { lba });
                    submitted += 1;
                }
            }
            round += 1;
        }
        pod.run(now);
        for r in pod.take_storage_completions(h0) {
            *completions.entry(r.cid).or_insert(0) += 1;
            match pending.remove(&r.cid) {
                Some(Io::Write { lba, tag }) if r.status.is_ok() => {
                    shadow.insert(lba, tag);
                    acked.push(lba);
                }
                Some(Io::Read { lba }) if r.status.is_ok() => {
                    let expect = pattern(shadow[&lba]);
                    if r.data.as_deref() != Some(&expect[..]) {
                        violations.push(format!("stale read at lba {lba} (cid {})", r.cid));
                    }
                }
                // Errored commands carry no data; duplicate completions
                // (None) are counted above and flagged at the end.
                Some(_) | None => {}
            }
        }
    }

    // 1. Exactly-once completion for every accepted command.
    if !pending.is_empty() {
        let mut cids: Vec<u16> = pending.keys().copied().collect();
        cids.sort_unstable();
        violations.push(format!("commands never completed: {cids:?}"));
    }
    let mut dups: Vec<(u16, u32)> = completions
        .iter()
        .filter(|&(_, &n)| n != 1)
        .map(|(&cid, &n)| (cid, n))
        .collect();
    dups.sort_unstable();
    if !dups.is_empty() {
        violations.push(format!("commands completed more than once: {dups:?}"));
    }

    // 3. No leaked pool regions: outstanding bytes equal the baseline
    // minus exactly the reclaimed victim regions.
    let detections: Vec<(u32, u64, u64)> = pod
        .allocator
        .host_failure_detections
        .iter()
        .map(|&(h, s, d)| (h, s.as_nanos(), d.as_nanos()))
        .collect();
    let victim_reclaimed = detections.iter().any(|&(h, _, _)| h as usize == h1);
    let expected = baseline_outstanding - if victim_reclaimed { victim_bytes } else { 0 };
    if pod.pool_outstanding() != expected {
        violations.push(format!(
            "pool regions leaked: outstanding {} != expected {expected}",
            pod.pool_outstanding()
        ));
    }

    // 4. Allocator state must replay from the committed raft log.
    if !pod.allocator.consistent_with_log() {
        violations.push("allocator state diverged from the raft log".into());
    }

    // 5a. Bounded failover windows: detection latency within the heartbeat
    // deadline plus one heartbeat period (pre-crash silence) and slack.
    let deadline = cfg.heartbeat_period * 3 + cfg.allocator_poll * 2;
    let ceiling = deadline + cfg.heartbeat_period + SimDuration::from_millis(50);
    for &(host, silent, detected) in &detections {
        let lat = detected - silent;
        if lat <= deadline.as_nanos() || lat > ceiling.as_nanos() {
            violations.push(format!(
                "host {host} detection latency {:.1} ms outside ({:.1}, {:.1}] ms",
                lat as f64 / 1e6,
                deadline.as_nanos() as f64 / 1e6,
                ceiling.as_nanos() as f64 / 1e6
            ));
        }
    }

    // 5b. Probe liveness: the surviving instance answers after recovery.
    let probe = {
        let s = probe_stats.borrow();
        (s.sent, s.received)
    };
    if probe.1 == 0 {
        violations.push("no echo traffic after recovery (probe starved)".into());
    }

    // 6. Coherence protocol (when the sanitizer is compiled in): the
    // drivers' declared publish/acquire points must stay clean through
    // every injected fault — crashes included.
    #[cfg(feature = "sanitize")]
    if pod.pool.san.error_count() > 0 {
        violations.push(format!("coherence sanitizer: {}", pod.pool.san.summary()));
        for r in pod.pool.san.reports().iter().take(10) {
            violations.push(format!("  {r}"));
        }
    }

    // 7. Migration exactly-once: the seeded storm against the fleet state
    // machine, with crash-retry duplicate deliveries and a books audit
    // after every command.
    let migrations = migration_storm(seed, &mut violations);

    // Storage accounting comes out of the pod's canonical metrics snapshot
    // rather than poking engine fields directly, so the chaos report prints
    // the same numbers the observability exporter would.
    let snap = pod.metrics_snapshot();
    use oasis_core::metrics as m;
    let report = ChaosReport {
        seed,
        classes,
        events,
        violations,
        detections,
        storage_submitted: submitted,
        storage_retries: snap.counter(m::STORAGE_FE_RETRIES, h0 as u32),
        storage_retry_exhausted: snap.counter(m::STORAGE_FE_RETRY_EXHAUSTED, h0 as u32),
        storage_replays_answered: snap.counter(m::STORAGE_BE_REPLAYS_ANSWERED, 0),
        probe,
        migrations,
    };
    (report, snap.to_json())
}
