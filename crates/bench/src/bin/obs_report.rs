//! Render a pod's metrics snapshot as a human-readable utilization and
//! latency report.
//!
//! Builds one representative pod — an instance host reaching a remote NIC,
//! a pooled SSD, and a pooled accelerator over the CXL fabric — drives a
//! mixed workload through all three device classes, then prints everything
//! straight from [`oasis_core::pod::Pod::metrics_snapshot`]. The always-on
//! export covers engine counters and fabric traffic; building with
//! `--features obs` adds service-time histograms and scheduler stats to
//! the same snapshot without changing any of the base numbers.
//!
//! Usage:
//!   obs_report            print the per-pod utilization/latency tables
//!   obs_report --json     dump the canonical snapshot JSON instead

use oasis_accel::{AccelConfig, AccelOp};
use oasis_apps::stats::ClientStats;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::metrics as core_m;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_obs::MetricsSnapshot;
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::SsdConfig;

/// Build the demo pod and run the mixed workload; returns the final
/// snapshot and the number of instance hosts.
fn run_workload() -> (Pod, usize) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host(); // instance host, no devices
    let dev_host = b.add_nic_host(); // NIC host
    b.add_ssd(dev_host, SsdConfig::default());
    b.add_accel(dev_host, AccelConfig::default());
    let mut pod = b.build();

    let inst = pod.launch_instance(
        host_a,
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
        10_000,
    );

    // Network: a paced UDP echo stream through the remote NIC.
    let stats = ClientStats::handle();
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        512,
        Pacing::FixedGap {
            gap: SimDuration::from_micros(10),
            count: 2_000,
        },
        SimTime::from_micros(20),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));

    // Storage: a small write-then-read pass over a pooled volume.
    let vol = pod.create_volume(inst, 64).expect("volume placement");
    let block = vec![0xabu8; oasis_storage::BLOCK_SIZE as usize];
    for lba in 0..16u64 {
        pod.volume_write(vol, lba, &block).expect("submit write");
        pod.run(pod.now() + SimDuration::from_micros(50));
    }
    for lba in 0..16u64 {
        pod.volume_read(vol, lba, 1).expect("submit read");
        pod.run(pod.now() + SimDuration::from_micros(50));
    }
    pod.take_storage_completions(host_a);

    // Accel: a burst of checksum jobs through the pooled device.
    let input = vec![0x5au8; 16 * 1024];
    for _ in 0..8 {
        pod.submit_accel_job(host_a, AccelOp::Checksum, 0, &input)
            .expect("submit job");
        pod.run(pod.now() + SimDuration::from_micros(100));
    }
    pod.take_accel_completions(host_a);

    pod.run(SimTime::from_millis(40));
    (pod, 2)
}

fn engine_table(snap: &MetricsSnapshot, hosts: usize) -> String {
    let mut t = Table::new(vec![
        "host",
        "net tx",
        "net rx",
        "io submitted",
        "io completed",
        "jobs submitted",
        "jobs completed",
    ]);
    for h in 0..hosts as u32 {
        t.row(vec![
            format!("{h}"),
            format!("{}", snap.counter(core_m::NET_FE_TX_PACKETS, h)),
            format!("{}", snap.counter(core_m::NET_FE_RX_PACKETS, h)),
            format!("{}", snap.counter(core_m::STORAGE_FE_SUBMITTED, h)),
            format!("{}", snap.counter(core_m::STORAGE_FE_COMPLETED, h)),
            format!("{}", snap.counter(core_m::ACCEL_FE_SUBMITTED, h)),
            format!("{}", snap.counter(core_m::ACCEL_FE_COMPLETED, h)),
        ]);
    }
    t.render()
}

fn fabric_table(snap: &MetricsSnapshot) -> String {
    let mut t = Table::new(vec![
        "port",
        "read bytes",
        "write bytes",
        "cache hits",
        "cache misses",
        "flushes",
    ]);
    for (port, read) in snap.counter_tags(oasis_cxl::metrics::LINK_READ_BYTES) {
        t.row(vec![
            format!("{port}"),
            format!("{read}"),
            format!(
                "{}",
                snap.counter(oasis_cxl::metrics::LINK_WRITE_BYTES, port)
            ),
            format!("{}", snap.counter(oasis_cxl::metrics::CACHE_HITS, port)),
            format!("{}", snap.counter(oasis_cxl::metrics::CACHE_MISSES, port)),
            format!("{}", snap.counter(oasis_cxl::metrics::CACHE_FLUSHES, port)),
        ]);
    }
    t.render()
}

fn latency_table(snap: &MetricsSnapshot) -> Option<String> {
    if snap.hists.is_empty() {
        return None;
    }
    let mut t = Table::new(vec!["histogram", "tag", "count", "p50", "p99", "max"]);
    for h in &snap.hists {
        t.row(vec![
            h.name.to_string(),
            format!("{}", h.tag),
            format!("{}", h.count),
            format!("{}", h.percentile(50.0)),
            format!("{}", h.percentile(99.0)),
            format!("{}", h.max),
        ]);
    }
    Some(t.render())
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let (pod, hosts) = run_workload();
    let snap = pod.metrics_snapshot();

    if json {
        print!("{}", snap.to_json());
        return;
    }

    println!("== obs_report: pod utilization and latency ==\n");
    println!(
        "snapshot: schema v{}, {} counters, {} histograms, {} timelines\n",
        snap.schema,
        snap.counters.len(),
        snap.hists.len(),
        snap.timelines.len()
    );

    println!("per-host device engines:");
    println!("{}", engine_table(&snap, hosts));

    println!("CXL fabric (per switch port):");
    println!("{}", fabric_table(&snap));

    println!(
        "channels: dedup_drops={} (replay suppression across all backends)",
        snap.counter_sum(oasis_channel::metrics::DEDUP_DROPS),
    );
    println!(
        "allocator: reroutes={} failovers={}\n",
        snap.counter(core_m::ALLOC_REROUTES_SENT, 0),
        snap.counter(core_m::ALLOC_FAILOVERS, 0)
    );

    match latency_table(&snap) {
        Some(t) => {
            println!("latency / scheduler histograms (ns):");
            println!("{t}");
            println!(
                "scheduler: dispatches={} idle_skips={} (saved {} simulated ns)",
                snap.counter(oasis_sim::metrics::SCHED_DISPATCHES, 0),
                snap.counter(oasis_sim::metrics::SCHED_IDLE_SKIPS, 0),
                snap.hist(oasis_sim::metrics::SCHED_IDLE_SKIP_NS, 0)
                    .map(|h| h.sum)
                    .unwrap_or(0)
            );
        }
        None => println!(
            "no histograms recorded — rebuild with `--features obs` for \
             service-time and scheduler detail"
        ),
    }
}
