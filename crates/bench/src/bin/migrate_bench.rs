//! migrate_bench: live migration over the CXL pool vs over the NIC.
//!
//! ISSUE 10's transfer-path figure. For every SKU in the allocation-trace
//! catalog, both pre-copy paths are modeled with the same
//! [`PrecopyModel`] the fleet runtime uses: the CXL path moves dirty
//! state through pooled memory at the pool fabric's bandwidth, while the
//! NIC path shares the source NIC's line rate with the instance's own
//! lease. The figure reports pre-copy rounds, bytes moved, the
//! stop-and-copy pause (the instance-visible freeze), and end-to-end
//! transfer time — all integer sim-time quantities, byte-identical on
//! every run.
//!
//! A second section drives one real migration per path through a live
//! two-pod [`Fleet`]'s raft-logged command API, so the
//! `core.fleet_migration_*` metrics surface is exercised exactly as a
//! production run would see it.
//!
//! Output: the rendered tables plus `BENCH_migrate.json` (the committed
//! figure artifact; README quotes its headline numbers).

use oasis_core::allocator::{PrecopyModel, TransferPath};
use oasis_core::config::OasisConfig;
use oasis_core::fleet::Fleet;
use oasis_core::instance::AppKind;
use oasis_core::metrics as m;
use oasis_core::pod::PodBuilder;
use oasis_sim::report::Table;
use oasis_sim::time::SimTime;
use oasis_trace::alloc_trace::azure_like_catalog;

/// Nanoseconds rendered as milliseconds for the tables and JSON.
fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Mebibytes for the tables.
fn mib(bytes: u64) -> u64 {
    bytes >> 20
}

/// A two-pod fleet (one instance host + one NIC host per pod) and one
/// migration of a gp-large-shaped instance over `path`; returns the
/// canonical metrics snapshot of the committed migration.
fn live_migration(path: TransferPath) -> oasis_obs::MetricsSnapshot {
    let mut fleet = Fleet::new();
    for site in 0..2u32 {
        let mut b = PodBuilder::new(OasisConfig::default()).site(site);
        b.add_host();
        b.add_nic_host();
        fleet.add_pod(b.build()).expect("distinct sites");
    }
    fleet
        .connect(0, 1, oasis_cxl::topology::UPLINK_LATENCY)
        .expect("first uplink");
    let (id, _, _) = fleet
        .create_instance(SimTime::ZERO, AppKind::None, 16, 64, 0, 8_000, Some(0))
        .expect("pod 0 has capacity");
    fleet
        .migrate_instance(SimTime::from_micros(1), id, 1, path)
        .expect("migration commits");
    fleet.metrics_snapshot()
}

fn main() {
    let model = PrecopyModel::default();
    let catalog = azure_like_catalog();

    println!("== migrate_bench: pre-copy over the CXL pool vs over the NIC ==\n");
    println!(
        "model: cxl {} Gbit/s, nic line {} Gbit/s (minus lease), dirty {} Gbit/s per vCPU,\n\
         stop-and-copy threshold {} MiB, round budget {}\n",
        model.cxl_mbps / 1000,
        model.nic_line_mbps / 1000,
        model.dirty_mbps_per_vcpu / 1000,
        model.stop_copy_threshold_bytes >> 20,
        model.max_rounds
    );

    let mut t = Table::new(vec![
        "sku",
        "state",
        "cxl rounds",
        "cxl pause ms",
        "cxl total ms",
        "nic rounds",
        "nic pause ms",
        "nic total ms",
    ]);
    let mut rows = Vec::new();
    for ty in &catalog {
        let lease = ty.nic_mbps() as u32;
        let cxl = model.run(TransferPath::Cxl, ty.vcpus, ty.mem_gb, lease);
        let nic = model.run(TransferPath::Nic, ty.vcpus, ty.mem_gb, lease);
        t.row(vec![
            ty.name.to_string(),
            format!("{} GiB", ty.mem_gb),
            cxl.rounds.to_string(),
            format!("{:.2}", ms(cxl.pause_ns)),
            format!("{:.2}", ms(cxl.total_ns)),
            nic.rounds.to_string(),
            format!("{:.2}", ms(nic.pause_ns)),
            format!("{:.2}", ms(nic.total_ns)),
        ]);
        rows.push((ty, lease, cxl, nic));
    }
    println!("{}", t.render());

    let cxl_total: u64 = rows.iter().map(|(_, _, c, _)| c.total_ns).sum();
    let nic_total: u64 = rows.iter().map(|(_, _, _, n)| n.total_ns).sum();
    let cxl_pause: u64 = rows.iter().map(|(_, _, c, _)| c.pause_ns).sum();
    let nic_pause: u64 = rows.iter().map(|(_, _, _, n)| n.pause_ns).sum();
    println!(
        "catalog aggregate: cxl {:.1} ms total / {:.2} ms paused, nic {:.1} ms total / {:.2} ms paused\n",
        ms(cxl_total),
        ms(cxl_pause),
        ms(nic_total),
        ms(nic_pause)
    );

    // One real migration per path through a live fleet's command API.
    let cxl_snap = live_migration(TransferPath::Cxl);
    let nic_snap = live_migration(TransferPath::Nic);
    let mut t = Table::new(vec!["metric", "cxl (tag 0)", "nic (tag 1)"]);
    for (label, name) in [
        ("pre-copy rounds", m::FLEET_MIGRATION_ROUNDS),
        ("bytes moved", m::FLEET_MIGRATION_BYTES),
        ("stop-and-copy pause ns", m::FLEET_MIGRATION_PAUSE_NS),
    ] {
        t.row(vec![
            label.to_string(),
            cxl_snap.counter(name, 0).to_string(),
            nic_snap.counter(name, 1).to_string(),
        ]);
    }
    println!("live two-pod fleet, gp-large instance, committed migrations:\n");
    println!("{}", t.render());
    assert_eq!(cxl_snap.counter(m::FLEET_MIGRATIONS_COMMITTED, 0), 1);
    assert_eq!(nic_snap.counter(m::FLEET_MIGRATIONS_COMMITTED, 0), 1);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"migrate_bench\",\n");
    json.push_str(
        "  \"description\": \"Live-migration pre-copy over the CXL pool vs over the NIC: \
         per-SKU rounds, bytes, stop-and-copy pause, and end-to-end transfer time from the \
         fleet runtime's PrecopyModel (all integer sim-time; byte-identical on every run)\",\n",
    );
    json.push_str(&format!(
        "  \"model\": {{ \"cxl_mbps\": {}, \"nic_line_mbps\": {}, \"dirty_mbps_per_vcpu\": {}, \
         \"stop_copy_threshold_mib\": {}, \"max_rounds\": {} }},\n",
        model.cxl_mbps,
        model.nic_line_mbps,
        model.dirty_mbps_per_vcpu,
        model.stop_copy_threshold_bytes >> 20,
        model.max_rounds
    ));
    json.push_str("  \"skus\": [\n");
    for (i, (ty, lease, cxl, nic)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"vcpus\": {}, \"mem_gb\": {}, \"lease_mbps\": {}, \
             \"cxl\": {{ \"rounds\": {}, \"moved_mib\": {}, \"pause_ms\": {:.3}, \"total_ms\": {:.3} }}, \
             \"nic\": {{ \"rounds\": {}, \"moved_mib\": {}, \"pause_ms\": {:.3}, \"total_ms\": {:.3} }} }}{}\n",
            ty.name,
            ty.vcpus,
            ty.mem_gb,
            lease,
            cxl.rounds,
            mib(cxl.bytes_moved),
            ms(cxl.pause_ns),
            ms(cxl.total_ns),
            nic.rounds,
            mib(nic.bytes_moved),
            ms(nic.pause_ns),
            ms(nic.total_ns),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"catalog_cxl_total_ms\": {:.3},\n  \"catalog_cxl_pause_ms\": {:.3},\n\
         \"catalog_nic_total_ms\": {:.3},\n  \"catalog_nic_pause_ms\": {:.3}\n",
        ms(cxl_total),
        ms(cxl_pause),
        ms(nic_total),
        ms(nic_pause)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_migrate.json", &json).expect("write BENCH_migrate.json");
    println!("wrote BENCH_migrate.json");
}
