//! Storage-engine evaluation (beyond the paper).
//!
//! The paper designs the storage engine (§3.4) but implements and
//! evaluates only the network engine. This experiment characterizes our
//! full implementation: block I/O latency and throughput to a *remote*
//! SSD through the Oasis datapath, versus the drive's raw service time —
//! showing the same story as the network results: the engine adds
//! single-digit µs against ~100 µs device latency, and the 64 B
//! NVMe-mirroring channel is never the bottleneck.

use oasis_core::config::OasisConfig;
use oasis_core::engine_storage::StoragePod;
use oasis_sim::report::Table;
use oasis_sim::time::SimTime;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

/// Measure mean latency and IOPS for reads of `nlb` blocks at queue depth
/// `qd`.
fn measure_with(cfg: SsdConfig, nlb: u32, qd: usize, ios: usize) -> (f64, f64) {
    let mut pod = StoragePod::new(OasisConfig::default(), cfg, 64 * BLOCK_SIZE);
    let start = pod.frontend.core.clock;
    let mut submitted = 0usize;
    let mut done = 0usize;
    let mut lat_sum = 0f64;
    let mut submit_time = std::collections::VecDeque::new();
    while done < ios {
        while submitted - done < qd && submitted < ios {
            let lba = (submitted as u64 * nlb as u64) % 2048;
            if pod
                .frontend
                .submit_read(&mut pod.pool, 0, lba, nlb)
                .is_some()
            {
                submit_time.push_back(pod.frontend.core.clock);
                submitted += 1;
            } else {
                break;
            }
        }
        let got = pod.run_until_completions(1, SimTime::from_secs(10));
        for _ in got {
            let t0: SimTime = submit_time.pop_front().unwrap();
            lat_sum += (pod.frontend.core.clock - t0).as_micros_f64();
            done += 1;
        }
    }
    let elapsed = (pod.frontend.core.clock - start).as_secs_f64();
    (lat_sum / ios as f64, ios as f64 / elapsed)
}

fn measure(nlb: u32, qd: usize, ios: usize) -> (f64, f64) {
    measure_with(SsdConfig::default(), nlb, qd, ios)
}

fn main() {
    println!("== Storage engine: remote SSD over the Oasis datapath ==\n");
    let flash_us = SsdConfig::default().read_latency_ns as f64 / 1e3;
    println!("raw flash read latency: {flash_us:.0} us; paper Table 1 target: 0.5 MOp/s, 5 GB/s\n");

    let mut t = Table::new(vec![
        "I/O size",
        "QD",
        "mean latency (us)",
        "engine overhead (us)",
        "IOPS (k)",
        "bandwidth (GB/s)",
    ]);
    for (nlb, qd) in [(1u32, 1usize), (1, 8), (1, 32), (8, 8), (16, 8)] {
        let ios = if qd == 1 { 200 } else { 600 };
        let (lat, iops) = measure(nlb, qd, ios);
        let svc = flash_us + (nlb as f64 * BLOCK_SIZE as f64) / 5e9 * 1e6;
        t.row(vec![
            format!("{} KiB", nlb as u64 * BLOCK_SIZE / 1024),
            format!("{qd}"),
            format!("{lat:.1}"),
            format!("{:.1}", (lat - svc).max(0.0)),
            format!("{:.1}", iops / 1e3),
            format!("{:.2}", iops * nlb as f64 * BLOCK_SIZE as f64 / 1e9),
        ]);
    }
    println!("{}", t.render());
    println!(
        "At QD1 the engine adds single-digit us over the drive's service time\n\
         (channel + staging copies, the same 4-7us band as the network engine);\n\
         queue depth saturates the default drive's 8-way internal parallelism\n\
         (8/85us = 94k IOPS). QD32 > channel count queues inside the drive.\n"
    );

    // Is the 64B channel ever the bottleneck? Give the drive Table-1-class
    // parallelism and push queue depth.
    let fast = SsdConfig {
        channels: 48,
        ..Default::default()
    };
    let (lat, iops) = measure_with(fast, 1, 48, 3000);
    println!(
        "Table-1-class drive (48-way parallel): {:.0}k IOPS at {:.0} us mean\n\
         (target 500k: the engine and its 64B channel sustain it; the drive's\n\
         flash latency is the limit, not Oasis).",
        iops / 1e3,
        lat
    );
}
