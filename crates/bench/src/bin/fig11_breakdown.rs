//! Figure 11: breakdown of the Oasis latency overhead.
//!
//! Three configurations isolate where the overhead comes from:
//! baseline (local NIC, local buffers), baseline with I/O buffers moved to
//! CXL memory, and full Oasis. Paper anchor: buffers-in-CXL is nearly free;
//! nearly all of the added latency is cross-host message passing.

use oasis_apps::udp::Pacing;
use oasis_bench::harness::{run_udp_echo, Mode};
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn main() {
    println!("== Figure 11: latency overhead breakdown (UDP echo) ==\n");
    let duration = SimDuration::from_millis(60);
    let warmup = SimDuration::from_millis(5);

    for (label, payload) in [("75B", 75usize - 42), ("1500B", 1500 - 42)] {
        for (load_label, rate) in [("low", 20e3), ("high", 400e3)] {
            println!("{label} packets, {load_label} load:");
            let mut t = Table::new(vec![
                "mode",
                "p50 (us)",
                "p90 (us)",
                "p99 (us)",
                "+p50 vs baseline",
            ]);
            let mut base = 0f64;
            for mode in Mode::ALL {
                let stats = run_udp_echo(
                    mode,
                    payload,
                    Pacing::Poisson {
                        rate_rps: rate,
                        until: SimTime::ZERO + duration - SimDuration::from_millis(5),
                    },
                    duration,
                    warmup,
                );
                let s = stats.borrow();
                let p50 = s.rtt.percentile(50.0) as f64 / 1e3;
                if mode == Mode::Baseline {
                    base = p50;
                }
                t.row(vec![
                    mode.label().to_string(),
                    format!("{p50:.2}"),
                    format!("{:.2}", s.rtt.percentile(90.0) as f64 / 1e3),
                    format!("{:.2}", s.rtt.percentile(99.0) as f64 / 1e3),
                    format!("{:+.2}", p50 - base),
                ]);
            }
            println!("{}", t.render());
        }
    }
    println!(
        "paper: placing I/O buffers in CXL adds ~nothing; message passing across\n\
         hosts accounts for most of the 4-7us Oasis overhead."
    );
}
