//! Figure 2: average percentage of stranded resources vs. pod size.
//!
//! Replays identical synthetic allocation streams against pod sizes 1–16.
//! The paper's anchor points: at pod size 1, 27 % of NIC bandwidth and
//! 33 % of SSD capacity are stranded (CPU 5 %, memory 9 %); a pod of 8
//! cuts SSD stranding to 7 % and lets the provider deploy ~16 % less NIC
//! bandwidth.

use oasis_bench::SweepRunner;
use oasis_obs::MetricSink;
use oasis_sim::report::{fmt_pct, Table};
use oasis_sim::time::SimDuration;
use oasis_trace::alloc_trace::{AllocTrace, ArrivalStream, HostCapacity};
use oasis_trace::stranding::{export_stranding, stranding_by_pod_size, stranding_from_snapshot};

fn main() {
    let hosts = 32;
    let duration = SimDuration::from_secs(6 * 3600);
    let pod_sizes = [1usize, 2, 4, 8, 16];
    let repeats = 3;

    println!("== Figure 2: stranded resources vs pod size ==");
    println!(
        "({hosts} hosts, {}h of arrivals, {repeats} streams averaged)\n",
        6
    );

    // Each pod size replays the same seeded arrival streams independently,
    // so the sweep fans one pod size per job across SweepRunner workers;
    // results come back in input order, identical at any thread count.
    let runner = SweepRunner::from_env();
    let measured: Vec<_> = runner
        .run(&pod_sizes, |&k| {
            stranding_by_pod_size(hosts, duration, &[k], repeats, 2025)
        })
        .into_iter()
        .flatten()
        .collect();

    // Everything the figure prints flows through a metrics snapshot: the
    // sweep is exported into a sink and read back, so the table below is a
    // pure function of the snapshot (and byte-identical with `obs` on or
    // off — the feature only adds entries this figure does not print).
    let mut sink = MetricSink::new();
    export_stranding(&measured, &mut sink);
    let snap = sink.snapshot();
    let pts = stranding_from_snapshot(&snap);

    let mut t = Table::new(vec![
        "pod size",
        "NIC stranded",
        "SSD stranded",
        "CPU stranded",
        "Mem stranded",
        "rejected",
    ]);
    for p in &pts {
        t.row(vec![
            format!("{}", p.pod_size),
            fmt_pct(p.nic_stranded),
            fmt_pct(p.ssd_stranded),
            fmt_pct(p.cpu_stranded),
            fmt_pct(p.mem_stranded),
            format!("{}", p.rejected),
        ]);
    }
    println!("{}", t.render());
    // The paper's provisioning claim: "repeated simulations find the
    // minimum number of devices required to successfully place all
    // instances on the same hosts as in the trace" — i.e. host placement
    // is fixed (the unpooled trace), and a pod of k hosts only needs
    // devices for its *pooled peak* demand. At pod=8 the paper finds 16%
    // less NIC bandwidth and 26% less SSD capacity suffice.
    // Moderately loaded regime (the paper's hosts peak well below their
    // device capacity; stranding comes from ratio mismatch, not overload).
    let stream = ArrivalStream::generate_with_load(hosts, duration, 0.85, 2025);
    let reference = AllocTrace::place(&stream, hosts, 1);
    let cap = HostCapacity::default();
    let mut t = Table::new(vec![
        "pod size",
        "min NIC provisioning",
        "min SSD provisioning",
        "NIC saved vs pod=1",
        "SSD saved vs pod=1",
    ]);
    let prov_sizes = [1usize, 2, 4, 8];
    // Peak-demand scans of the shared reference trace are read-only, so
    // they fan out the same way.
    let needs = runner.run(&prov_sizes, |&k| {
        let pods: Vec<Vec<usize>> = (0..hosts)
            .collect::<Vec<_>>()
            .chunks(k)
            .map(|c| c.to_vec())
            .collect();
        let mut nic_need = 0.0;
        let mut ssd_need = 0.0;
        for pod in &pods {
            nic_need += reference.peak_demand(pod, |ty| ty.nic_gbps);
            ssd_need += reference.peak_demand(pod, |ty| ty.ssd_gb as f64);
        }
        (nic_need, ssd_need)
    });
    let (nic1, ssd1) = needs[0];
    for (&k, &(nic_need, ssd_need)) in prov_sizes.iter().zip(&needs) {
        t.row(vec![
            format!("{k}"),
            fmt_pct(nic_need / (hosts as f64 * cap.nic_gbps)),
            fmt_pct(ssd_need / (hosts as f64 * cap.ssd_gb as f64)),
            fmt_pct(1.0 - nic_need / nic1),
            fmt_pct(1.0 - ssd_need / ssd1),
        ]);
    }
    println!("{}", t.render());
    println!("paper: pod=8 needs 16% less NIC bandwidth and 26% less SSD capacity than pod=1\n");
    println!("paper anchors: pod=1 -> NIC 27%, SSD 33%, CPU 5%, Mem 9%; pod=8 -> SSD 7%, NIC -16%");
    let p1 = &pts[0];
    let p8 = pts.iter().find(|p| p.pod_size == 8).unwrap();
    println!(
        "measured:      pod=1 -> NIC {}, SSD {}; pod=8 -> NIC {}, SSD {}",
        fmt_pct(p1.nic_stranded),
        fmt_pct(p1.ssd_stranded),
        fmt_pct(p8.nic_stranded),
        fmt_pct(p8.ssd_stranded),
    );
}
