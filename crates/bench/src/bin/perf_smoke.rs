//! Perf regression guard for the simulation substrate.
//!
//! Runs a fixed, deterministic channel + datapath workload, measures how
//! many *simulated* operations the library executes per *wall-clock*
//! second, and writes `BENCH_substrate.json` so successive PRs can see the
//! substrate's speed trajectory. The simulated-op count is a pure function
//! of the workload (the simulation is deterministic), so the metric only
//! moves when the substrate itself gets faster or slower.
//!
//! Usage:
//!   perf_smoke              measure; keep any recorded baseline in the JSON
//!   perf_smoke --baseline   measure and also record this run as the baseline
//!   perf_smoke --check      measure and fail (exit 1) when throughput fell
//!                           more than the tolerance band below the
//!                           committed baseline (see `oasis_bench::regress`)

// oasis-check: allow-file(nondeterminism) this binary measures wall-clock
// throughput of the simulator itself; its output is a report, not an input
// to any simulation.
use std::time::Instant;

use oasis_bench::harness::{run_udp_echo, Mode};
use oasis_bench::regress;
use oasis_channel::runner::run_offered_load;
use oasis_channel::Policy;
use oasis_sim::report::Table;
use oasis_sim::shard::{threads_from_env, Envelope, Outgoing, ShardWorld, ShardedRunner};
use oasis_sim::time::{SimDuration, SimTime};

/// One timed phase: simulated ops done and wall seconds spent.
struct Phase {
    name: &'static str,
    sim_ops: u64,
    wall_secs: f64,
}

fn channel_phase() -> Phase {
    let duration = SimDuration::from_millis(4);
    let start = Instant::now();
    let mut sim_ops = 0u64;
    for policy in Policy::ALL {
        let r = run_offered_load(policy, 8192, f64::INFINITY, duration);
        // Every send and receive is one simulated channel operation.
        sim_ops += r.sent + r.received;
    }
    Phase {
        name: "channel-saturation(4 policies)",
        sim_ops,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn datapath_phase() -> Phase {
    let duration = SimDuration::from_millis(30);
    let warmup = SimDuration::from_millis(2);
    let start = Instant::now();
    let mut sim_ops = 0u64;
    for mode in Mode::ALL {
        let stats = run_udp_echo(
            mode,
            512,
            oasis_apps::udp::Pacing::FixedGap {
                gap: SimDuration::from_micros(4),
                count: 6_000,
            },
            duration,
            warmup,
        );
        let s = stats.borrow();
        // A request and its echo each traverse the full simulated datapath.
        sim_ops += s.sent + s.received;
    }
    Phase {
        name: "udp-echo-datapath(3 modes)",
        sim_ops,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// One shard of the sharded-substrate workload: a batched actor that burns
/// `BATCH` events per simulated step and forwards one token per step around
/// the shard ring. All state is shard-local; the token is the only
/// cross-shard traffic, so the runner's window protocol — not data sharing —
/// is what gets measured.
struct TokenShard {
    id: usize,
    shards: usize,
    now: SimTime,
    step: SimDuration,
    latency: SimDuration,
    batch: u64,
    state: u64,
    ops: u64,
}

impl ShardWorld for TokenShard {
    type Msg = u64;

    fn next_time(&self) -> SimTime {
        self.now
    }

    fn run_window(
        &mut self,
        until: SimTime,
        inbox: &mut Vec<Envelope<u64>>,
        outbox: &mut Vec<Outgoing<u64>>,
    ) -> u64 {
        let mut n = 0u64;
        for e in inbox.drain(..) {
            self.state ^= e.msg.rotate_left(17);
            n += 1;
        }
        while self.now < until {
            // One batch of local events, amortized over a single dispatch —
            // the event-batching half of the tentpole's perf claim.
            for _ in 0..self.batch {
                self.state = self
                    .state
                    .wrapping_mul(0x100000001b3)
                    .rotate_left(29)
                    .wrapping_add(0x9e3779b97f4a7c15);
                n += 1;
            }
            outbox.push(Outgoing {
                dst: (self.id + 1) % self.shards,
                at: self.now + self.latency,
                msg: self.state,
            });
            self.now += self.step;
        }
        self.ops += n;
        n
    }
}

/// Sharded-substrate phase: 8 shards ring-coupled through the conservative
/// window runner, honoring `OASIS_SHARD_THREADS`. The simulated-op count is
/// a pure function of the workload shape (never of the thread count), so the
/// emitted `sharded_ops_per_sec` only moves when the sharded runner itself
/// gets faster or slower.
fn sharded_phase() -> (Phase, u64) {
    const SHARDS: usize = 8;
    let threads = threads_from_env();
    let step = SimDuration::from_micros(1);
    let latency = SimDuration::from_micros(4); // ring-link lookahead
    let horizon = SimTime::from_millis(40);
    let start = Instant::now();
    let mut worlds: Vec<TokenShard> = (0..SHARDS)
        .map(|id| TokenShard {
            id,
            shards: SHARDS,
            now: SimTime::ZERO,
            step,
            latency,
            batch: 64,
            state: id as u64 + 1,
            ops: 0,
        })
        .collect();
    let mut runner: ShardedRunner<u64> = ShardedRunner::new(SHARDS, latency, threads);
    runner
        .run(&mut worlds, horizon)
        .expect("sharded phase has nonzero lookahead");
    let sim_ops: u64 = worlds.iter().map(|w| w.ops).sum();
    // Fold the tokens into a digest so the event work cannot be optimized
    // away, and assert the ring actually circulated.
    let digest: u64 = worlds.iter().fold(0, |a, w| a ^ w.state);
    assert_ne!(digest, 0, "token ring went idle");
    (
        Phase {
            name: "sharded-runner(8 shards, batch 64)",
            sim_ops,
            wall_secs: start.elapsed().as_secs_f64(),
        },
        threads as u64,
    )
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--baseline");
    let check = std::env::args().any(|a| a == "--check");
    println!("== perf_smoke: simulation-substrate throughput ==\n");

    let phases = [channel_phase(), datapath_phase()];
    let (sharded, shard_threads) = sharded_phase();

    let mut t = Table::new(vec!["phase", "sim ops", "wall ms", "Mops/wall-s"]);
    let mut total_ops = 0u64;
    let mut total_wall = 0.0f64;
    for p in &phases {
        total_ops += p.sim_ops;
        total_wall += p.wall_secs;
        t.row(vec![
            p.name.to_string(),
            p.sim_ops.to_string(),
            format!("{:.1}", p.wall_secs * 1e3),
            format!("{:.3}", p.sim_ops as f64 / p.wall_secs / 1e6),
        ]);
    }
    // The committed `ops_per_sec` baseline keeps its pre-sharding meaning
    // (channel + datapath phases); the sharded runner is tracked as its own
    // metric so both trajectories stay comparable across PRs.
    let ops_per_sec = total_ops as f64 / total_wall;
    t.row(vec![
        "TOTAL".to_string(),
        total_ops.to_string(),
        format!("{:.1}", total_wall * 1e3),
        format!("{:.3}", ops_per_sec / 1e6),
    ]);
    let sharded_ops_per_sec = sharded.sim_ops as f64 / sharded.wall_secs;
    t.row(vec![
        format!("{} x{} threads", sharded.name, shard_threads),
        sharded.sim_ops.to_string(),
        format!("{:.1}", sharded.wall_secs * 1e3),
        format!("{:.3}", sharded_ops_per_sec / 1e6),
    ]);
    println!("{}", t.render());

    let prior = std::fs::read_to_string("BENCH_substrate.json").ok();
    let prior_baseline = prior
        .as_deref()
        .and_then(|text| regress::read_json_number(text, "baseline_ops_per_sec"));
    let prior_sharded_baseline = prior
        .as_deref()
        .and_then(|text| regress::read_json_number(text, "baseline_sharded_ops_per_sec"));

    if check {
        let baseline = prior_baseline
            .expect("--check needs a committed BENCH_substrate.json with a baseline_ops_per_sec");
        let mut ok = regress::gate(
            "substrate ops/wall-second",
            regress::handicapped(ops_per_sec),
            baseline,
        );
        if let Some(b) = prior_sharded_baseline {
            ok &= regress::gate(
                "sharded-runner ops/wall-second",
                regress::handicapped(sharded_ops_per_sec),
                b,
            );
        }
        // The tentpole's perf claim, CI-enforced: with >= 4 worker threads
        // the sharded runner must sustain at least 2x the single-scheduler
        // substrate throughput *measured in the same process*, so the ratio
        // is machine-speed-independent.
        if shard_threads >= 4 {
            let ratio = sharded_ops_per_sec / ops_per_sec;
            let pass = ratio >= 2.0;
            println!(
                "check sharded/substrate throughput ratio: {ratio:.2}x (need >= 2.00x) -> {}",
                if pass { "OK" } else { "FAIL" }
            );
            ok &= pass;
        }
        // --check is the CI gate: never rewrite the committed file, just
        // compare and set the exit status.
        std::process::exit(if ok { 0 } else { 1 });
    }
    let baseline = if record_baseline {
        Some(ops_per_sec)
    } else {
        prior_baseline
    };
    let sharded_baseline = if record_baseline {
        Some(sharded_ops_per_sec)
    } else {
        prior_sharded_baseline
    };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"perf_smoke\",\n");
    json.push_str(&format!("  \"sim_ops\": {total_ops},\n"));
    json.push_str(&format!("  \"wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1},\n"));
    json.push_str(&format!(
        "  \"sharded_ops_per_sec\": {sharded_ops_per_sec:.1},\n"
    ));
    json.push_str(&format!("  \"sharded_threads\": {shard_threads},\n"));
    match sharded_baseline {
        Some(b) => json.push_str(&format!("  \"baseline_sharded_ops_per_sec\": {b:.1},\n")),
        None => json.push_str("  \"baseline_sharded_ops_per_sec\": null,\n"),
    }
    match baseline {
        Some(b) => {
            json.push_str(&format!("  \"baseline_ops_per_sec\": {b:.1},\n"));
            json.push_str(&format!(
                "  \"speedup_vs_baseline\": {:.3}\n",
                ops_per_sec / b
            ));
        }
        None => json.push_str("  \"baseline_ops_per_sec\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");

    println!("simulated ops/wall-second: {:.0}", ops_per_sec);
    if let Some(b) = baseline {
        println!(
            "baseline:                  {b:.0}  (x{:.2})",
            ops_per_sec / b
        );
    }
    println!(
        "sharded ops/wall-second:   {sharded_ops_per_sec:.0}  ({:.2}x substrate, {shard_threads} threads)",
        sharded_ops_per_sec / ops_per_sec
    );
    println!("wrote BENCH_substrate.json");
}
