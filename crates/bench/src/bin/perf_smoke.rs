//! Perf regression guard for the simulation substrate.
//!
//! Runs a fixed, deterministic channel + datapath workload, measures how
//! many *simulated* operations the library executes per *wall-clock*
//! second, and writes `BENCH_substrate.json` so successive PRs can see the
//! substrate's speed trajectory. The simulated-op count is a pure function
//! of the workload (the simulation is deterministic), so the metric only
//! moves when the substrate itself gets faster or slower.
//!
//! Usage:
//!   perf_smoke              measure; keep any recorded baseline in the JSON
//!   perf_smoke --baseline   measure and also record this run as the baseline
//!   perf_smoke --check      measure and fail (exit 1) when throughput fell
//!                           more than the tolerance band below the
//!                           committed baseline (see `oasis_bench::regress`)

// oasis-check: allow-file(nondeterminism) this binary measures wall-clock
// throughput of the simulator itself; its output is a report, not an input
// to any simulation.
use std::time::Instant;

use oasis_bench::harness::{run_udp_echo, Mode};
use oasis_bench::regress;
use oasis_channel::runner::run_offered_load;
use oasis_channel::Policy;
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

/// One timed phase: simulated ops done and wall seconds spent.
struct Phase {
    name: &'static str,
    sim_ops: u64,
    wall_secs: f64,
}

fn channel_phase() -> Phase {
    let duration = SimDuration::from_millis(4);
    let start = Instant::now();
    let mut sim_ops = 0u64;
    for policy in Policy::ALL {
        let r = run_offered_load(policy, 8192, f64::INFINITY, duration);
        // Every send and receive is one simulated channel operation.
        sim_ops += r.sent + r.received;
    }
    Phase {
        name: "channel-saturation(4 policies)",
        sim_ops,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn datapath_phase() -> Phase {
    let duration = SimDuration::from_millis(30);
    let warmup = SimDuration::from_millis(2);
    let start = Instant::now();
    let mut sim_ops = 0u64;
    for mode in Mode::ALL {
        let stats = run_udp_echo(
            mode,
            512,
            oasis_apps::udp::Pacing::FixedGap {
                gap: SimDuration::from_micros(4),
                count: 6_000,
            },
            duration,
            warmup,
        );
        let s = stats.borrow();
        // A request and its echo each traverse the full simulated datapath.
        sim_ops += s.sent + s.received;
    }
    Phase {
        name: "udp-echo-datapath(3 modes)",
        sim_ops,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--baseline");
    let check = std::env::args().any(|a| a == "--check");
    println!("== perf_smoke: simulation-substrate throughput ==\n");

    let phases = [channel_phase(), datapath_phase()];

    let mut t = Table::new(vec!["phase", "sim ops", "wall ms", "Mops/wall-s"]);
    let mut total_ops = 0u64;
    let mut total_wall = 0.0f64;
    for p in &phases {
        total_ops += p.sim_ops;
        total_wall += p.wall_secs;
        t.row(vec![
            p.name.to_string(),
            p.sim_ops.to_string(),
            format!("{:.1}", p.wall_secs * 1e3),
            format!("{:.3}", p.sim_ops as f64 / p.wall_secs / 1e6),
        ]);
    }
    let ops_per_sec = total_ops as f64 / total_wall;
    t.row(vec![
        "TOTAL".to_string(),
        total_ops.to_string(),
        format!("{:.1}", total_wall * 1e3),
        format!("{:.3}", ops_per_sec / 1e6),
    ]);
    println!("{}", t.render());

    let prior_baseline = std::fs::read_to_string("BENCH_substrate.json")
        .ok()
        .and_then(|text| regress::read_json_number(&text, "baseline_ops_per_sec"));

    if check {
        let baseline = prior_baseline
            .expect("--check needs a committed BENCH_substrate.json with a baseline_ops_per_sec");
        let ok = regress::gate(
            "substrate ops/wall-second",
            regress::handicapped(ops_per_sec),
            baseline,
        );
        // --check is the CI gate: never rewrite the committed file, just
        // compare and set the exit status.
        std::process::exit(if ok { 0 } else { 1 });
    }
    let baseline = if record_baseline {
        Some(ops_per_sec)
    } else {
        prior_baseline
    };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"perf_smoke\",\n");
    json.push_str(&format!("  \"sim_ops\": {total_ops},\n"));
    json.push_str(&format!("  \"wall_seconds\": {total_wall:.6},\n"));
    json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1},\n"));
    match baseline {
        Some(b) => {
            json.push_str(&format!("  \"baseline_ops_per_sec\": {b:.1},\n"));
            json.push_str(&format!(
                "  \"speedup_vs_baseline\": {:.3}\n",
                ops_per_sec / b
            ));
        }
        None => json.push_str("  \"baseline_ops_per_sec\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");

    println!("simulated ops/wall-second: {:.0}", ops_per_sec);
    if let Some(b) = baseline {
        println!(
            "baseline:                  {b:.0}  (x{:.2})",
            ops_per_sec / b
        );
    }
    println!("wrote BENCH_substrate.json");
}
