//! Figure 8: Oasis overhead on four typical web applications.
//!
//! Paper anchor: across a Python HTTP server, Rocket, nginx, and Tomcat,
//! Oasis adds a consistent 4–7 µs at P50/P90/P99 under low and moderate
//! load (both setups spike together near saturation).

use oasis_apps::webapp::WebFramework;
use oasis_bench::harness::{run_webapp, Mode};
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

fn main() {
    println!("== Figure 8: web application overhead, baseline vs Oasis ==\n");
    let duration = SimDuration::from_millis(200);
    let warmup = SimDuration::from_millis(20);

    for fw in WebFramework::ALL {
        println!("{}:", fw.label());
        let mut t = Table::new(vec![
            "load",
            "mode",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "overhead p50 (us)",
        ]);
        for (load_label, gap_us) in [("low", 2000u64), ("moderate", 600)] {
            let gap = SimDuration::from_micros(gap_us);
            let count = (duration.as_nanos() / gap.as_nanos()).saturating_sub(20);
            let mut base_p50 = 0f64;
            for mode in [Mode::Baseline, Mode::Oasis] {
                let stats = run_webapp(mode, fw, gap, count, duration, warmup);
                let s = stats.borrow();
                let p50 = s.rtt.percentile(50.0) as f64 / 1e3;
                if mode == Mode::Baseline {
                    base_p50 = p50;
                }
                t.row(vec![
                    load_label.to_string(),
                    mode.label().to_string(),
                    format!("{p50:.1}"),
                    format!("{:.1}", s.rtt.percentile(90.0) as f64 / 1e3),
                    format!("{:.1}", s.rtt.percentile(99.0) as f64 / 1e3),
                    if mode == Mode::Oasis {
                        format!("{:+.1}", p50 - base_p50)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("paper: consistent 4-7us overhead at P50/P90/P99 for all four applications");
}
