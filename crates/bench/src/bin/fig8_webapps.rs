//! Figure 8: Oasis overhead on four typical web applications.
//!
//! Paper anchor: across a Python HTTP server, Rocket, nginx, and Tomcat,
//! Oasis adds a consistent 4–7 µs at P50/P90/P99 under low and moderate
//! load (both setups spike together near saturation).
//!
//! The 4 frameworks × 2 loads × 2 modes grid runs through [`SweepRunner`]:
//! each point builds its pod inside the worker thread (stats handles are
//! `Rc`-based and cannot cross threads, so only the extracted percentiles
//! come back) and the tables render from results merged in input order —
//! byte-identical at any `OASIS_SWEEP_THREADS` setting.

use oasis_apps::webapp::WebFramework;
use oasis_bench::harness::{run_webapp, Mode};
use oasis_bench::SweepRunner;
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

/// Percentiles of one (framework, load, mode) point, in microseconds.
struct Point {
    p50: f64,
    p90: f64,
    p99: f64,
}

fn main() {
    println!("== Figure 8: web application overhead, baseline vs Oasis ==\n");
    let duration = SimDuration::from_millis(200);
    let warmup = SimDuration::from_millis(20);
    let loads = [("low", 2000u64), ("moderate", 600)];

    let mut jobs: Vec<(WebFramework, u64, Mode)> = Vec::new();
    for fw in WebFramework::ALL {
        for (_, gap_us) in loads {
            for mode in [Mode::Baseline, Mode::Oasis] {
                jobs.push((fw, gap_us, mode));
            }
        }
    }
    let points = SweepRunner::from_env().run(&jobs, |&(fw, gap_us, mode)| {
        let gap = SimDuration::from_micros(gap_us);
        let count = (duration.as_nanos() / gap.as_nanos()).saturating_sub(20);
        let stats = run_webapp(mode, fw, gap, count, duration, warmup);
        let s = stats.borrow();
        Point {
            p50: s.rtt.percentile(50.0) as f64 / 1e3,
            p90: s.rtt.percentile(90.0) as f64 / 1e3,
            p99: s.rtt.percentile(99.0) as f64 / 1e3,
        }
    });
    let mut next_point = points.into_iter();

    for fw in WebFramework::ALL {
        println!("{}:", fw.label());
        let mut t = Table::new(vec![
            "load",
            "mode",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "overhead p50 (us)",
        ]);
        for (load_label, _) in loads {
            let mut base_p50 = 0f64;
            for mode in [Mode::Baseline, Mode::Oasis] {
                let p = next_point.next().expect("job grid out of sync");
                if mode == Mode::Baseline {
                    base_p50 = p.p50;
                }
                t.row(vec![
                    load_label.to_string(),
                    mode.label().to_string(),
                    format!("{:.1}", p.p50),
                    format!("{:.1}", p.p90),
                    format!("{:.1}", p.p99),
                    if mode == Mode::Oasis {
                        format!("{:+.1}", p.p50 - base_p50)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("paper: consistent 4-7us overhead at P50/P90/P99 for all four applications");
}
