//! Table 3: CXL link bandwidth usage under varying network loads.
//!
//! Measures the pool's per-port traffic meters, split into payload
//! (packet buffers) and message (channel) classes, under idle, small-packet
//! and MTU-packet echo load. Paper anchors: idle 0.2 GB/s (busy polling);
//! 75 B busy: 0.7 payload + 1.6 message; 1500 B busy: 12.0 payload + 1.5
//! message (89 % of link traffic is payload).

use oasis_apps::stats::ClientStats;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_bench::harness::{single_instance_pod, Mode};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn measure(load: Option<(usize, f64)>) -> (f64, f64, f64, f64) {
    let (mut pod, inst) = single_instance_pod(
        Mode::Oasis,
        OasisConfig::default(),
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
    );
    let warmup = SimTime::from_millis(5);
    let window = SimDuration::from_millis(20);
    let stats = ClientStats::handle();
    let mut achieved_pps = 0.0;
    if let Some((payload, rate_rps)) = load {
        let client = UdpClient::new(
            1,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            payload,
            Pacing::Poisson {
                rate_rps,
                until: warmup + window,
            },
            SimTime::from_micros(50),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
    }
    pod.run(warmup);
    pod.pool.reset_meters();
    let sent_before = stats.borrow().sent;
    pod.run(warmup + window);
    achieved_pps += (stats.borrow().sent - sent_before) as f64 / window.as_secs_f64();

    let mut payload_b = 0u64;
    let mut message_b = 0u64;
    let mut other_b = 0u64;
    for p in 0..pod.pool.ports() {
        let m = pod.pool.meter(PortId(p));
        payload_b += m.class_bytes(TrafficClass::Payload);
        message_b += m.class_bytes(TrafficClass::Message);
        other_b += m.class_bytes(TrafficClass::Control) + m.class_bytes(TrafficClass::Unclassified);
    }
    let secs = window.as_secs_f64();
    (
        payload_b as f64 / secs / 1e9,
        (message_b + other_b) as f64 / secs / 1e9,
        (payload_b + message_b + other_b) as f64 / secs / 1e9,
        achieved_pps,
    )
}

fn main() {
    println!("== Table 3: CXL link bandwidth under varying network loads ==\n");
    let mut t = Table::new(vec![
        "Load",
        "Payload (GB/s)",
        "Message (GB/s)",
        "Total (GB/s)",
        "echo rate",
    ]);
    // The simulated pod runs one channel pair per direction (the paper's
    // single-threaded datapath) at the rate one polling core sustains.
    let cases: [(&str, Option<(usize, f64)>); 3] = [
        ("Idle", None),
        ("Busy (75 B)", Some((75 - 42, 1.0e6))),
        ("Busy (1500 B)", Some((1500 - 42, 1.0e6))),
    ];
    for (label, load) in cases {
        let (p, m, tot, pps) = measure(load);
        t.row(vec![
            label.to_string(),
            format!("{p:.2}"),
            format!("{m:.2}"),
            format!("{tot:.2}"),
            if pps > 0.0 {
                format!("{:.2} MOp/s", pps / 1e6)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: idle 0.0+0.2=0.2; busy 75B 0.7+1.6=2.3; busy 1500B 12.0+1.5=13.5 GB/s\n\
         (paper's busy load is ~4 MOp/s on real hardware; the simulated single\n\
         polling core sustains ~1 MOp/s, so absolute numbers scale accordingly —\n\
         the payload/message split and idle polling floor are the claims)."
    );
}
