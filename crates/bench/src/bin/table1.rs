//! Table 1: performance requirements for NICs and SSDs, plus the derived
//! §2.1 aggregate datapath demand and the §2.3 CXL feasibility check.

use oasis_core::config::{total_datapath_demand, NIC_REQUIREMENTS, SSD_REQUIREMENTS};
use oasis_cxl::topology::PodTopology;
use oasis_sim::report::{fmt_gbps, Table};

fn main() {
    println!("== Table 1: performance requirements for NICs and SSDs ==\n");
    let mut t = Table::new(vec!["Type", "Bandwidth", "IOPS", "Latency", "Count"]);
    for r in [NIC_REQUIREMENTS, SSD_REQUIREMENTS] {
        t.row(vec![
            r.class.to_string(),
            fmt_gbps(r.bandwidth),
            format!("{:.1} MOp/s", r.iops / 1e6),
            if r.latency_ns.0 == r.latency_ns.1 {
                format!("{} us", r.latency_ns.0 / 1000)
            } else {
                format!("{}-{} us", r.latency_ns.0 / 1000, r.latency_ns.1 / 1000)
            },
            if r.count.0 == r.count.1 {
                format!("{}", r.count.0)
            } else {
                format!("{}-{}", r.count.0, r.count.1)
            },
        ]);
    }
    println!("{}", t.render());

    let (bw, iops) = total_datapath_demand();
    println!(
        "Aggregate demand (1 NIC + 6 SSDs): {} and {:.1} MOp/s (paper: 56 GB/s, 7 MOp/s)\n",
        fmt_gbps(bw),
        iops / 1e6
    );

    println!("== CXL link feasibility (Section 2.3) ==\n");
    let mut t = Table::new(vec![
        "Platform",
        "Lanes/host",
        "Usable BW",
        "Carries 56 GB/s?",
    ]);
    for (name, pod) in [
        ("testbed (x8)", PodTopology::testbed(0)),
        ("production (x64)", PodTopology::production(8, 0)),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{}", pod.lanes_per_host),
            fmt_gbps(pod.host_link_bw()),
            format!("{}", pod.link_sufficient_for(bw)),
        ]);
    }
    println!("{}", t.render());
}
