//! Figure 9: Oasis overhead on memcached.
//!
//! Paper anchor: latency overhead is consistently about 4–7 µs at all
//! percentiles.

use oasis_bench::harness::{run_memcached, Mode};
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

fn main() {
    println!("== Figure 9: memcached GET latency, baseline vs Oasis ==\n");
    let duration = SimDuration::from_millis(200);
    let warmup = SimDuration::from_millis(20);

    let mut t = Table::new(vec![
        "load",
        "mode",
        "p50 (us)",
        "p90 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "overhead p50 (us)",
    ]);
    for (load_label, gap_us) in [("low", 1000u64), ("moderate", 200), ("high", 60)] {
        let gap = SimDuration::from_micros(gap_us);
        let count = (duration.as_nanos() / gap.as_nanos()).saturating_sub(20);
        let mut base_p50 = 0f64;
        for mode in [Mode::Baseline, Mode::Oasis] {
            let stats = run_memcached(mode, 100, gap, count, duration, warmup);
            let s = stats.borrow();
            let p50 = s.rtt.percentile(50.0) as f64 / 1e3;
            if mode == Mode::Baseline {
                base_p50 = p50;
            }
            t.row(vec![
                load_label.to_string(),
                mode.label().to_string(),
                format!("{p50:.1}"),
                format!("{:.1}", s.rtt.percentile(90.0) as f64 / 1e3),
                format!("{:.1}", s.rtt.percentile(99.0) as f64 / 1e3),
                format!("{:.1}", s.rtt.percentile(99.9) as f64 / 1e3),
                if mode == Mode::Oasis {
                    format!("{:+.1}", p50 - base_p50)
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!("paper: ~4-7us overhead at every percentile");
}
