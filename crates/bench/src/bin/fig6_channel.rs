//! Figure 6: throughput and median latency of one-way message passing for
//! the four channel designs over non-coherent CXL memory.
//!
//! Paper anchors: bypass-cache saturates at 3.0 MOp/s; naive prefetching
//! at 8.6 MOp/s; +invalidate-consumed reaches 87 MOp/s but spikes to
//! ~1.2 µs latency at moderate load; +invalidate-prefetched holds ~0.6 µs
//! at the 14 MOp/s target.
//!
//! Every grid point builds its own simulation from fixed parameters, so the
//! sweep fans out over [`SweepRunner`] worker threads; results merge in
//! input order and the tables are byte-identical at any
//! `OASIS_SWEEP_THREADS` setting.

use oasis_bench::SweepRunner;
use oasis_channel::runner::{run_offered_load_snap, PairReport};
use oasis_channel::{Policy, DEFAULT_SLOTS};
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

fn main() {
    let duration = SimDuration::from_millis(10);
    let runner = SweepRunner::from_env();
    println!("== Figure 6: message channel designs (16B messages, 8192 slots) ==\n");

    // Saturation throughput per design.
    let mut t = Table::new(vec!["design", "max throughput", "paper"]);
    let paper_max = ["3.0", "8.6", "87.0", "~87"];
    // Every printed number is derived from the run's metrics snapshot:
    // `from_snapshot` reads the received count and latency histogram back
    // out of the canonical export, so the figure is a pure function of the
    // snapshot (byte-identical with `obs` on or off).
    let sat: Vec<PairReport> = runner.run(&Policy::ALL, |&policy| {
        let (_, snap) = run_offered_load_snap(policy, DEFAULT_SLOTS, 16, f64::INFINITY, duration);
        PairReport::from_snapshot(policy, f64::INFINITY, duration, &snap)
    });
    let max_tput: Vec<f64> = sat.iter().map(|r| r.achieved_mops).collect();
    for (i, policy) in Policy::ALL.iter().enumerate() {
        t.row(vec![
            policy.label().to_string(),
            format!("{:.1} MOp/s", max_tput[i]),
            format!("{} MOp/s", paper_max[i]),
        ]);
    }
    println!("{}", t.render());

    // Latency vs offered load curves. The saturation pre-pass already
    // bounds each design, so the job grid contains only reachable points;
    // the rebuilt table consumes results in the same order it was filled.
    println!("latency vs offered load (p50 one-way, ns):\n");
    let loads = [
        0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 12.0, 14.0, 20.0, 30.0, 50.0, 70.0,
    ];
    let mut jobs: Vec<(f64, Policy)> = Vec::new();
    for &load in &loads {
        for (i, &policy) in Policy::ALL.iter().enumerate() {
            if load <= max_tput[i] * 1.05 {
                jobs.push((load, policy));
            }
        }
    }
    let results: Vec<PairReport> = runner.run(&jobs, |&(load, policy)| {
        let (_, snap) = run_offered_load_snap(policy, DEFAULT_SLOTS, 16, load, duration);
        PairReport::from_snapshot(policy, load, duration, &snap)
    });
    let mut next_result = results.into_iter();

    let mut t = Table::new(vec![
        "offered MOp/s",
        Policy::ALL[0].label(),
        Policy::ALL[1].label(),
        Policy::ALL[2].label(),
        Policy::ALL[3].label(),
    ]);
    for &load in &loads {
        let mut cells = vec![format!("{load:.1}")];
        for (i, _) in Policy::ALL.iter().enumerate() {
            if load > max_tput[i] * 1.05 {
                cells.push("-".to_string());
                continue;
            }
            let r = next_result.next().expect("job grid out of sync");
            if r.achieved_mops < load * 0.9 {
                cells.push(format!("sat({:.1})", r.achieved_mops));
            } else {
                cells.push(format!("{}", r.p50_latency_ns));
            }
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "paper: idle ~600ns for all; (3) spikes ~1.2us in the 8.6-30 MOp/s band;\n\
         (4) stays ~600ns at the 14 MOp/s target."
    );
}
