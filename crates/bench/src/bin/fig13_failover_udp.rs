//! Figure 13: packet losses when a NIC failure triggers Oasis failover.
//!
//! Thin wrapper over [`oasis_bench::fig13::fig13_failover_report`]; the
//! scenario lives in the library so the determinism guard test can re-run
//! it with an empty fault plan and diff the output.
//!
//! Paper anchors: a sharp loss spike at the failure; total interruption
//! ~38 ms.

fn main() {
    print!("{}", oasis_bench::fig13::fig13_failover_report(None));
}
