//! Figure 3: inbound network traffic of 4 hosts in a busy rack.
//!
//! Generates the calibrated rack-A traces and prints (a) per-host
//! burstiness statistics and (b) a one-second excerpt of host 1's inbound
//! bandwidth, coarsened for terminal display — the same view as the
//! paper's plot (bandwidth computed at 10 µs granularity, pixels wider).

use oasis_sim::report::{fmt_pct, Table};
use oasis_sim::time::{SimDuration, SimTime};
use oasis_trace::packet_trace::{HostProfile, PacketTrace};

fn main() {
    let duration = SimDuration::from_secs(30);
    println!("== Figure 3: bursty inbound traffic, rack A (30s generated) ==\n");

    let profiles = HostProfile::rack_a();
    let traces: Vec<PacketTrace> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| PacketTrace::generate(p, duration, 100 + i as u64))
        .collect();

    let mut t = Table::new(vec![
        "host",
        "packets",
        "mean util",
        "P99 util",
        "P99.99 util",
    ]);
    for (i, tr) in traces.iter().enumerate() {
        t.row(vec![
            format!("host {}", i + 1),
            format!("{}", tr.len()),
            fmt_pct(tr.mean_utilization()),
            fmt_pct(tr.utilization_percentile(99.0)),
            fmt_pct(tr.utilization_percentile(99.99)),
        ]);
    }
    println!("{}", t.render());
    println!("paper: host 1 P99 < 3%, P99.99 = 39%; host 3 ~ idle\n");

    // One-second excerpt of host 1 at 10us bins, coarsened to 5ms pixels.
    println!("host 1 inbound, 1s excerpt (each bar = 5ms pixel, peak-normalized):");
    let fine = traces[0].binned(SimDuration::from_micros(10));
    let coarse = fine.coarsen(500); // 5ms pixels
    let window: Vec<(SimTime, f64)> = coarse.excerpt(SimTime::from_secs(3), SimTime::from_secs(4));
    let peak = window.iter().map(|&(_, v)| v).fold(1.0, f64::max);
    for (at, v) in &window {
        let bars = ((v / peak) * 60.0).round() as usize;
        println!("{:>7.3}s |{}", at.as_secs_f64(), "#".repeat(bars));
    }
}
