//! The 10⁵-instance fleet replay: topology-aware placement at fleet scale.
//!
//! Replays a saturating arrival stream (≥100 000 instances) against a
//! 64-pod ring fleet through the typed control-plane command API —
//! `CreateInstance` / `ResizeInstance` / `KillInstance` flowing through the
//! replicated fleet allocator — and reports per-pod stranding plus
//! cross-pod spill traffic from one metrics snapshot. Arrivals are pinned
//! round-robin to home pods (tenant affinity), so a pod whose pooled
//! devices strand spills its chunky NIC/SSD requests to the nearest ring
//! neighbor; the spill-byte counters integrate the leased bandwidth over
//! each spilled instance's lifetime.
//!
//! Every simulated quantity in the snapshot is integer-valued and
//! deterministic: the `--json` output is byte-identical at any
//! `OASIS_SHARD_THREADS` setting (CI diffs 1 vs 8).
//!
//! Usage:
//!   fleet_replay              replay; print the fleet report; refresh
//!                             BENCH_fleet.json keeping any baseline
//!   fleet_replay --baseline   also record this run's commands/wall-second
//!                             as the committed baseline
//!   fleet_replay --check      verify the replay shape (≥64 pods, ≥1e5
//!                             instances, nonzero spill) and gate the
//!                             throughput against BENCH_fleet.json
//!   fleet_replay --json       print only the canonical metrics-snapshot
//!                             JSON (the byte-identity surface)
//!   fleet_replay --checkpoint <file>
//!                             replay to the stream midpoint, serialize the
//!                             paused run into <file>, and exit
//!   fleet_replay --resume <file>
//!                             resume a checkpointed run and finish it; all
//!                             other flags apply to the completed run (CI
//!                             diffs the resumed --json against the
//!                             uninterrupted one byte for byte)

// oasis-check: allow-file(nondeterminism) this binary measures wall-clock
// throughput of the replay; wall time feeds only the report and the bench
// baseline, never any simulated byte (the --json surface is pure snapshot).
use std::time::Instant;

use oasis_bench::regress;
use oasis_cxl::topology::{FleetTopology, PodTopology, UPLINK_LATENCY};
use oasis_obs::MetricSink;
use oasis_sim::report::Table;
use oasis_sim::shard::threads_from_env;
use oasis_sim::time::SimDuration;
use oasis_trace::{
    export_fleet_stranding, measure_fleet_stranding, metrics, AllocTrace, ArrivalStream,
    HomePolicy, ReplaySession,
};

const PODS: usize = 64;
const HOSTS_PER_POD: usize = 8;
const HOURS: u64 = 14;
const SEED: u64 = 2025;
const RESIZE_EVERY: usize = 37;

/// The value following `flag`, if present.
fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--baseline");
    let check = std::env::args().any(|a| a == "--check");
    let json_only = std::env::args().any(|a| a == "--json");

    let hosts = PODS * HOSTS_PER_POD;
    let stream = ArrivalStream::generate(hosts, SimDuration::from_secs(HOURS * 3600), SEED);
    let topo = FleetTopology::ring(
        PODS,
        PodTopology::production(HOSTS_PER_POD, 0),
        UPLINK_LATENCY,
    );

    if let Some(path) = arg_value("--checkpoint") {
        let mut session = ReplaySession::new(&stream, &topo, HomePolicy::RoundRobin, RESIZE_EVERY)
            .expect("the ring fleet topology is valid");
        let epoch = stream.duration.as_nanos() / 2;
        session
            .run_to_epoch(epoch)
            .expect("the first half of the stream replays");
        std::fs::write(&path, session.checkpoint()).expect("write checkpoint file");
        println!("checkpointed at epoch {epoch} ns -> {path}");
        return;
    }

    let start = Instant::now();
    let replay = match arg_value("--resume") {
        Some(path) => {
            let bytes = std::fs::read(&path).expect("read checkpoint file");
            ReplaySession::resume(&stream, &topo, HomePolicy::RoundRobin, RESIZE_EVERY, &bytes)
                .expect("checkpoint matches this workload")
                .finish()
                .expect("the second half of the stream replays")
        }
        None => AllocTrace::replay_fleet(&stream, &topo, HomePolicy::RoundRobin, RESIZE_EVERY)
            .expect("the ring fleet topology is valid"),
    };
    let wall_secs = start.elapsed().as_secs_f64();

    let report = replay.state.report();
    let stranding = measure_fleet_stranding(&replay);
    // One snapshot carries both halves: the allocator's fleet counters
    // (placements, spill traffic by home pod) and the per-pod stranding
    // integrals (by device pod).
    let mut sink = MetricSink::new();
    replay.state.export_metrics(&mut sink);
    export_fleet_stranding(&stranding, &mut sink);
    let snap = sink.snapshot();

    if json_only {
        print!("{}", snap.to_json());
        return;
    }

    // Control-plane commands the replay actually logged.
    let commands = PODS as u64
        + topo.links.len() as u64
        + report.placed
        + report.rejected
        + report.killed
        + replay.state.resizes;
    let commands_per_sec = commands as f64 / wall_secs;

    println!("== fleet_replay: {PODS} pods x {HOSTS_PER_POD} hosts, ring uplinks ==\n");
    let mut t = Table::new(vec!["quantity", "value"]);
    t.row(vec!["arrivals".into(), stream.arrivals.len().to_string()]);
    t.row(vec!["placed".into(), report.placed.to_string()]);
    t.row(vec!["rejected".into(), report.rejected.to_string()]);
    t.row(vec!["resizes".into(), replay.state.resizes.to_string()]);
    t.row(vec![
        "spill placements".into(),
        report.spill_placements.to_string(),
    ]);
    t.row(vec![
        "cross-pod spill bytes".into(),
        report.spill_bytes.to_string(),
    ]);
    let nic_ppb: Vec<u64> = stranding.iter().map(|p| p.nic_stranded_ppb).collect();
    let mean = |v: &[u64]| v.iter().sum::<u64>() / v.len().max(1) as u64;
    t.row(vec![
        "mean pod NIC stranded".into(),
        format!("{:.1}%", mean(&nic_ppb) as f64 / 1e7),
    ]);
    let ssd_ppb: Vec<u64> = stranding.iter().map(|p| p.ssd_stranded_ppb).collect();
    t.row(vec![
        "mean pod SSD stranded".into(),
        format!("{:.1}%", mean(&ssd_ppb) as f64 / 1e7),
    ]);
    t.row(vec!["control-plane commands".into(), commands.to_string()]);
    t.row(vec![
        "commands / wall-second".into(),
        format!(
            "{:.0} ({} shard threads)",
            commands_per_sec,
            threads_from_env()
        ),
    ]);
    println!("{}", t.render());

    let prior = std::fs::read_to_string("BENCH_fleet.json").ok();
    let prior_baseline = prior
        .as_deref()
        .and_then(|text| regress::read_json_number(text, "baseline_commands_per_sec"));

    if check {
        // Shape invariants from the issue before any perf comparison.
        let mut ok = true;
        let mut shape = |what: &str, pass: bool| {
            println!("check {what} -> {}", if pass { "OK" } else { "FAIL" });
            ok &= pass;
        };
        shape("fleet spans >= 64 pods", report.pods.len() >= 64);
        shape(
            "replay covers >= 1e5 instances",
            stream.arrivals.len() >= 100_000,
        );
        shape("cross-pod spill traffic observed", report.spill_bytes > 0);
        shape(
            "per-pod stranding exported for every pod",
            stranding.len() == PODS
                && (0..PODS).all(|p| {
                    snap.counter_tags(metrics::STRANDING_POD_NIC_PPB)
                        .iter()
                        .any(|&(tag, _)| tag as usize == p)
                }),
        );
        let baseline = prior_baseline
            .expect("--check needs a committed BENCH_fleet.json with a baseline_commands_per_sec");
        ok &= regress::gate(
            "fleet-replay commands/wall-second",
            regress::handicapped(commands_per_sec),
            baseline,
        );
        std::process::exit(if ok { 0 } else { 1 });
    }

    let baseline = if record_baseline {
        Some(commands_per_sec)
    } else {
        prior_baseline
    };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fleet_replay\",\n");
    json.push_str(&format!("  \"pods\": {PODS},\n"));
    json.push_str(&format!("  \"hosts_per_pod\": {HOSTS_PER_POD},\n"));
    json.push_str(&format!("  \"arrivals\": {},\n", stream.arrivals.len()));
    json.push_str(&format!("  \"placed\": {},\n", report.placed));
    json.push_str(&format!("  \"rejected\": {},\n", report.rejected));
    json.push_str(&format!(
        "  \"spill_placements\": {},\n",
        report.spill_placements
    ));
    json.push_str(&format!("  \"spill_bytes\": {},\n", report.spill_bytes));
    json.push_str(&format!("  \"commands\": {commands},\n"));
    json.push_str(&format!("  \"wall_seconds\": {wall_secs:.6},\n"));
    json.push_str(&format!("  \"commands_per_sec\": {commands_per_sec:.1},\n"));
    match baseline {
        Some(b) => json.push_str(&format!("  \"baseline_commands_per_sec\": {b:.1}\n")),
        None => json.push_str("  \"baseline_commands_per_sec\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}
