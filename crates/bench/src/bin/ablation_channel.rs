//! Ablations on the message-channel design choices (§3.2.2, §4, §6).
//!
//! * **Prefetch depth** — the paper reports 16 lines performs best for the
//!   naive-prefetch design; sweep it for the shipping design too.
//! * **Consumed-counter publish batch** — §4 publishes every half-capacity;
//!   publishing too often wastes write-backs, too rarely stalls the sender.
//! * **Channel sharding** — §6: "message channel throughput scales linearly
//!   with additional channels"; run k independent sender/receiver core
//!   pairs and report aggregate throughput.

use oasis_channel::runner::run_offered_load;
use oasis_channel::{ChannelLayout, Policy, Receiver, Sender, DEFAULT_SLOTS};
use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn sweep_prefetch_depth() {
    println!("-- prefetch depth (policy 4, saturation) --");
    let mut t = Table::new(vec![
        "depth (lines)",
        "throughput (MOp/s)",
        "p50 @ 10 MOp/s (ns)",
    ]);
    for depth in [1u64, 2, 4, 8, 16, 32, 64] {
        // Saturation throughput with this depth.
        let tput = run_custom(depth, DEFAULT_SLOTS / 2, f64::INFINITY);
        let lat = run_custom_latency(depth, DEFAULT_SLOTS / 2, 10.0);
        t.row(vec![
            format!("{depth}"),
            format!("{tput:.1}"),
            format!("{lat}"),
        ]);
    }
    println!("{}", t.render());
    println!("paper: 16 lines performs best\n");
}

fn run_custom(depth: u64, publish_batch: u64, offered: f64) -> f64 {
    run_pair(depth, publish_batch, offered).0
}

fn run_custom_latency(depth: u64, publish_batch: u64, offered: f64) -> u64 {
    run_pair(depth, publish_batch, offered).1
}

/// Co-sim one pair with explicit receiver parameters.
fn run_pair(depth: u64, publish_batch: u64, offered: f64) -> (f64, u64) {
    let slots = DEFAULT_SLOTS;
    let duration = SimDuration::from_millis(5);
    let mut pool = CxlPool::new(1 << 21, 2);
    let mut ra = RegionAllocator::new(&pool);
    let region = ra.alloc(
        &mut pool,
        "abl",
        ChannelLayout::bytes_needed(slots, 16),
        TrafficClass::Message,
    );
    let layout = ChannelLayout::in_region(&region, slots, 16);
    let mut tx = HostCtx::new(PortId(0), 0);
    let mut rx = HostCtx::new(PortId(1), 0);
    let mut sender = Sender::new(layout.clone());
    let mut receiver =
        Receiver::with_params(layout, Policy::InvalidatePrefetched, depth, publish_batch);

    let end = SimTime::ZERO + duration;
    let warmup = SimTime::from_millis(1);
    let gap_ns = if offered.is_finite() {
        1e3 / offered
    } else {
        0.0
    };
    let mut next_send = SimTime::ZERO;
    let mut received = 0u64;
    let mut hist = oasis_sim::hist::Histogram::new();
    loop {
        let s_done = tx.clock >= end;
        let r_done = rx.clock >= end;
        if s_done && r_done {
            break;
        }
        if !s_done && (r_done || tx.clock < rx.clock) {
            if tx.clock < next_send {
                if sender.has_unflushed() {
                    sender.flush(&mut tx, &mut pool);
                }
                tx.clock = tx.clock.max(next_send.min(end));
                continue;
            }
            let mut msg = [0u8; 16];
            msg[..8].copy_from_slice(&tx.clock.as_nanos().to_le_bytes());
            if sender
                .try_send(&mut tx, &mut pool, &msg)
                .expect("bench messages are well-formed")
            {
                if gap_ns > 100.0 && sender.has_unflushed() {
                    sender.flush(&mut tx, &mut pool);
                }
                next_send += SimDuration::from_nanos(gap_ns as u64);
                if next_send < tx.clock && gap_ns == 0.0 {
                    next_send = tx.clock;
                }
            }
        } else if !r_done {
            let mut out = [0u8; 16];
            if receiver.try_recv(&mut rx, &mut pool, &mut out) {
                let ts = u64::from_le_bytes(out[..8].try_into().unwrap());
                if rx.clock >= warmup {
                    received += 1;
                    if SimTime::from_nanos(ts) >= warmup {
                        hist.record(rx.clock.as_nanos().saturating_sub(ts));
                    }
                }
            }
        }
    }
    let secs = (duration - SimDuration::from_millis(1)).as_secs_f64();
    (received as f64 / secs / 1e6, hist.percentile(50.0))
}

fn sweep_publish_batch() {
    println!("-- consumed-counter publish batch (policy 4, saturation) --");
    let mut t = Table::new(vec!["publish every", "throughput (MOp/s)"]);
    for batch in [1u64, 16, 256, 1024, 4096, 8192] {
        let tput = run_custom(16, batch, f64::INFINITY);
        t.row(vec![format!("{batch} msgs"), format!("{tput:.1}")]);
    }
    println!("{}", t.render());
    println!("paper (S4): publish every half capacity (4096) to amortize write-backs\n");
}

fn sweep_sharding() {
    println!("-- channel sharding (Section 6: k channels on k core pairs) --");
    let mut t = Table::new(vec!["channels", "aggregate (MOp/s)", "scaling"]);
    let base = run_offered_load(
        Policy::InvalidatePrefetched,
        DEFAULT_SLOTS,
        f64::INFINITY,
        SimDuration::from_millis(5),
    )
    .achieved_mops;
    for k in [1usize, 2, 4, 8] {
        // Independent pairs: each gets its own cores; aggregate is the sum
        // (which is what "scales linearly" claims for a sharded design).
        let agg: f64 = (0..k)
            .map(|_| {
                run_offered_load(
                    Policy::InvalidatePrefetched,
                    DEFAULT_SLOTS,
                    f64::INFINITY,
                    SimDuration::from_millis(5),
                )
                .achieved_mops
            })
            .sum();
        t.row(vec![
            format!("{k}"),
            format!("{agg:.1}"),
            format!("{:.2}x", agg / base),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    println!("== Ablations: message-channel design choices ==\n");
    sweep_prefetch_depth();
    sweep_publish_batch();
    sweep_sharding();
}
