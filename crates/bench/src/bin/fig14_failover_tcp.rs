//! Figure 14: memcached P99 latency through a NIC failover.
//!
//! Same failure injection as Fig. 13, but the workload is memcached over
//! TCP: packets lost during the interruption are retransmitted after the
//! RTO and delivered late, so the windowed P99 spikes at the failure and
//! recovers once the backlog drains.
//!
//! Paper anchors: sharp P99 spike at the failure; recovery within ~133 ms
//! (longer than UDP's 38 ms because TCP is reliable).

use oasis_apps::memcached::{GetRequests, MemcachedFramer, MemcachedServer, MEMCACHED_PORT};
use oasis_apps::stats::ClientStats;
use oasis_apps::tcp_client::TcpRequestClient;
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_core::tcp::TcpConfig;
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn main() {
    println!("== Figure 14: memcached P99 during NIC failover ==\n");
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let _host_b = b.add_nic_host(); // serving NIC (0)
    let host_c = b.add_nic_host(); // backup NIC (1)
    let mut pod = b.backup_nic_on(host_c).build();

    let mut server = MemcachedServer::new(SimDuration::from_micros(3));
    server.preload(b"key0", &[0x6f; 100]);
    for k in 1..16 {
        server.preload(format!("key{k}").as_bytes(), &[0x6f; 100]);
    }
    let inst = pod.launch_instance(host_a, AppKind::Tcp(Box::new(server)), 10_000);
    pod.instances[inst].server_port = MEMCACHED_PORT;

    let end = SimTime::from_secs(10);
    let fail_at = SimTime::from_secs(5);
    let gap = SimDuration::from_micros(250); // 4k requests/s
    let stats = ClientStats::handle();
    let client = TcpRequestClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        MEMCACHED_PORT,
        gap,
        38_000,
        SimTime::from_millis(1),
        TcpConfig::default(),
        Box::new(GetRequests { keys: 16 }),
        Box::new(MemcachedFramer),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.schedule_nic_failure(fail_at, 0);
    pod.run(end);

    let s = stats.borrow();
    println!(
        "sent {} received {} unanswered {}\n",
        s.sent,
        s.received,
        s.lost()
    );

    // Windowed P99 timeline (100ms windows), printed around the failure.
    println!("P99 per 100ms window (4.5s..6.0s):");
    let mut t = Table::new(vec!["window start (s)", "p99 (us)", ""]);
    let mut recovery_end = fail_at;
    for w in 0..100 {
        let from = SimTime::from_millis(w * 100);
        let to = SimTime::from_millis((w + 1) * 100);
        if let Some(p99) = s.window_percentile(from, to, 99.0) {
            if p99 > 1_000_000 {
                recovery_end = recovery_end.max(to);
            }
            if (45..60).contains(&w) {
                let us = p99 as f64 / 1e3;
                let bar = ((us.log10().max(0.0)) * 10.0) as usize;
                t.row(vec![
                    format!("{:.1}", from.as_secs_f64()),
                    format!("{us:.0}"),
                    "#".repeat(bar),
                ]);
            }
        }
    }
    println!("{}", t.render());

    // Finer recovery estimate: last request (by send time) that took more
    // than 10x the healthy P99.
    let healthy_p99 = s
        .window_percentile(SimTime::from_secs(1), SimTime::from_secs(4), 99.0)
        .unwrap();
    let mut last_slow = fail_at;
    let mut first_slow = end;
    for &(sent, done) in &s.requests {
        if let Some(done) = done {
            if (done - sent).as_nanos() > healthy_p99 * 10 {
                last_slow = last_slow.max(done);
                first_slow = first_slow.min(sent);
            }
        }
    }
    println!(
        "healthy P99 = {:.1} us; latency elevated from {:.4}s to {:.4}s",
        healthy_p99 as f64 / 1e3,
        first_slow.as_secs_f64(),
        last_slow.as_secs_f64()
    );
    println!(
        "P99 recovery time ~{:.0} ms after the failure  (paper: ~133 ms)",
        (last_slow - fail_at).as_secs_f64() * 1e3
    );
}
