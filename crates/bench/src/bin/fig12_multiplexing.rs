//! Figure 12: multiplexing two hosts' traffic onto one NIC via trace
//! replay.
//!
//! Replays bursty rack-A-style inbound traces as UDP echo traffic to two
//! instances. Baseline: each instance is served by its own host's NIC.
//! Multiplexed: both share host 1's NIC (host 2 has none). Oasis runs in
//! both setups, as in the paper.
//!
//! Paper anchors: host 1's P99 unchanged, host 2 +1 µs at P99; aggregated
//! NIC utilization at P99.99 doubles (18 % → 37 %).
//!
//! Burst rates are scaled to what one simulated polling core sustains
//! (~1.2 MOp/s); the claims under test are the *interference* (P99 deltas)
//! and the *utilization doubling*, both rate-independent.

use oasis_apps::stats::{ClientStats, StatsHandle};
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_trace::packet_trace::{HostProfile, PacketTrace};

fn scaled_profiles() -> [HostProfile; 2] {
    let mut a = HostProfile::rack_a();
    let mut h1 = a[0].clone();
    let mut h2 = a[1].clone();
    // Scale burst rates into the simulated datapath's regime.
    h1.large_gbps = 14.0;
    h2.large_gbps = 11.0;
    h1.large_gap = SimDuration::from_millis(80);
    h2.large_gap = SimDuration::from_millis(90);
    let _ = &mut a;
    [h1, h2]
}

/// Run the replay; `shared` = both instances behind host 1's NIC.
fn run(shared: bool, traces: &[PacketTrace; 2]) -> [StatsHandle; 2] {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host1 = b.add_nic_host();
    let host2 = if shared {
        b.add_host()
    } else {
        b.add_nic_host()
    };
    let mut pod = b.build();

    let mut handles = Vec::new();
    for (i, host) in [host1, host2].into_iter().enumerate() {
        let inst = pod.launch_instance(
            host,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            10_000,
        );
        let stats = ClientStats::handle();
        stats.borrow_mut().record_from = SimTime::from_millis(50);
        let client = UdpClient::new(
            (i + 1) as u64,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            64,
            Pacing::Replay(traces[i].events.clone()),
            SimTime::from_micros(100),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        handles.push(stats);
    }
    let end = SimTime::ZERO + traces[0].duration + SimDuration::from_millis(20);
    pod.run(end);
    [handles.remove(0), handles.remove(0)]
}

fn main() {
    println!("== Figure 12: trace-replay multiplexing, two hosts -> one NIC ==\n");
    let duration = SimDuration::from_secs(2);
    let profiles = scaled_profiles();
    let traces = [
        PacketTrace::generate(&profiles[0], duration, 71),
        PacketTrace::generate(&profiles[1], duration, 72),
    ];
    println!(
        "replaying {} + {} packets over {}s\n",
        traces[0].len(),
        traces[1].len(),
        duration.as_secs_f64()
    );

    let baseline = run(false, &traces);
    let shared = run(true, &traces);

    let mut t = Table::new(vec![
        "host",
        "setup",
        "p50 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "lost",
    ]);
    for (i, (b, s)) in baseline.iter().zip(shared.iter()).enumerate() {
        for (label, h) in [("own NIC", b), ("shared NIC", s)] {
            let st = h.borrow();
            t.row(vec![
                format!("host {}", i + 1),
                label.to_string(),
                format!("{:.2}", st.rtt.percentile(50.0) as f64 / 1e3),
                format!("{:.2}", st.rtt.percentile(99.0) as f64 / 1e3),
                format!("{:.2}", st.rtt.percentile(99.9) as f64 / 1e3),
                format!("{}", st.lost()),
            ]);
        }
    }
    println!("{}", t.render());

    // Utilization accounting: the replayed traffic against the active NICs.
    let refs: Vec<&PacketTrace> = traces.iter().collect();
    let agg = PacketTrace::aggregate(&refs);
    let agg_bytes_p9999 = agg.utilization_percentile(99.99) * agg.line_gbps; // Gbit/s at p99.99
    let util_two_nics = agg_bytes_p9999 / 200.0;
    let util_one_nic = agg_bytes_p9999 / 100.0;
    println!(
        "aggregated NIC utilization at P99.99: {:.1}% (two NICs) -> {:.1}% (one NIC)",
        util_two_nics * 100.0,
        util_one_nic * 100.0
    );
    println!("paper: 18% -> 37% (doubling), with host 1 P99 unchanged and host 2 +1us");
}
