//! Chaos harness driver: run seeded fault schedules end-to-end and audit
//! the §5.3 recovery invariants (see [`oasis_bench::chaos`]).
//!
//! Usage: `chaos [seed...]` — defaults to the CI smoke matrix. Exits
//! non-zero if any seed violates an invariant. Prints a per-seed summary
//! and a JSON blob of detection/recovery latencies for `BENCH_failover.json`.

use oasis_bench::chaos::{run_chaos, ChaosReport};

/// The fixed CI seed matrix; together these plans cover all five fault
/// classes (asserted by `chaos_ci_seeds_cover_all_fault_classes`).
pub const CI_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("seeds are u64"))
        .collect();
    let seeds: Vec<u64> = if args.is_empty() {
        CI_SEEDS.to_vec()
    } else {
        args
    };

    println!("== Chaos harness: seeded fault schedules + recovery audit ==\n");
    let reports: Vec<ChaosReport> = seeds
        .iter()
        .map(|&s| {
            let r = run_chaos(s);
            print!("{}", r.render());
            r
        })
        .collect();

    let mut classes: Vec<&str> = reports.iter().flat_map(|r| r.classes.clone()).collect();
    classes.sort_unstable();
    classes.dedup();
    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.detection_latencies_ns())
        .collect();
    latencies.sort_unstable();
    println!("\nfault classes covered: [{}]", classes.join(", "));

    // Machine-readable summary (pasted into BENCH_failover.json).
    let lat_ms: Vec<String> = latencies
        .iter()
        .map(|&ns| format!("{:.2}", ns as f64 / 1e6))
        .collect();
    println!("\n{{");
    println!("  \"seeds\": {seeds:?},");
    println!("  \"detections\": {},", latencies.len());
    println!("  \"detection_latency_ms\": [{}],", lat_ms.join(", "));
    if !latencies.is_empty() {
        let p = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize] as f64 / 1e6;
        println!("  \"detection_latency_ms_min\": {:.2},", p(0.0));
        println!("  \"detection_latency_ms_p50\": {:.2},", p(0.5));
        println!("  \"detection_latency_ms_max\": {:.2},", p(1.0));
    }
    let failed: Vec<u64> = reports
        .iter()
        .filter(|r| !r.passed())
        .map(|r| r.seed)
        .collect();
    println!(
        "  \"violations\": {}",
        reports.iter().map(|r| r.violations.len()).sum::<usize>()
    );
    println!("}}");

    // CI forensics: when OASIS_CHAOS_ARTIFACT_DIR is set, write each
    // seed's rendered report plus the failing-seed list there, so a red
    // job can upload the exact reproducers (`chaos <seed>` replays one).
    if let Ok(dir) = std::env::var("OASIS_CHAOS_ARTIFACT_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create chaos artifact dir");
        for r in &reports {
            std::fs::write(dir.join(format!("seed-{}.log", r.seed)), r.render())
                .expect("write seed report");
        }
        let list: String = failed.iter().map(|s| format!("{s}\n")).collect();
        std::fs::write(dir.join("failing-seeds.txt"), list).expect("write failing-seed list");
    }

    if !failed.is_empty() {
        eprintln!("\nFAILED seeds: {failed:?}");
        std::process::exit(1);
    }
    println!("\nall {} seeds passed", seeds.len());
}
