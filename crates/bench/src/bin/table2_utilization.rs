//! Table 2: NIC bandwidth utilization at P99.99, racks A and B.
//!
//! Per-host P99.99 utilization of 10 µs bins over the generated traces,
//! plus the "Aggregated" column: the utilization of a hypothetical pooled
//! NIC carrying all four hosts' traffic. The paper's headline: pooling
//! lifts P99.99 utilization from 10–20 % to the NIC's capacity region.

use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;
use oasis_trace::packet_trace::{HostProfile, PacketTrace};

fn row(
    label: &str,
    profiles: &[HostProfile; 4],
    duration: SimDuration,
    seed: u64,
) -> (Vec<f64>, f64) {
    let traces: Vec<PacketTrace> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| PacketTrace::generate(p, duration, seed + i as u64))
        .collect();
    let per_host: Vec<f64> = traces
        .iter()
        .map(|t| t.utilization_percentile(99.99))
        .collect();
    let refs: Vec<&PacketTrace> = traces.iter().collect();
    let agg = PacketTrace::aggregate(&refs).utilization_percentile(99.99);
    let _ = label;
    (per_host, agg)
}

fn main() {
    let duration = SimDuration::from_secs(60);
    println!("== Table 2: NIC bandwidth utilization at P99.99 (60s traces) ==\n");

    let mut t = Table::new(vec![
        "",
        "Host 1",
        "Host 2",
        "Host 3",
        "Host 4",
        "Aggregated",
    ]);
    // Inbound and outbound are drawn from the same calibrated profiles
    // with independent seeds (the paper's in/out rows are similar).
    let configs: [(&str, [HostProfile; 4], u64); 4] = [
        ("Rack A (In)", HostProfile::rack_a(), 300),
        ("Rack A (Out)", HostProfile::rack_a(), 400),
        ("Rack B (In)", HostProfile::rack_b(), 500),
        ("Rack B (Out)", HostProfile::rack_b(), 600),
    ];
    for (label, profiles, seed) in configs {
        let (per_host, agg) = row(label, &profiles, duration, seed);
        let mut cells = vec![label.to_string()];
        cells.extend(per_host.iter().map(|u| format!("{:.0}%", u * 100.0)));
        cells.push(format!("{:.0}%", agg * 100.0));
        t.row(cells);
    }
    println!("{}", t.render());
    println!("paper: Rack A (In) 39/30/0/23 -> 10 aggregated; Rack B (In) 39/75/52/79 -> 20");
    println!(
        "\nTakeaway: four hosts can share one NIC; pooling lifts aggregated\n\
         P99.99 utilization ~4x (e.g. 20% -> 80% on rack B)."
    );
}
