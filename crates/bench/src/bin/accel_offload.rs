//! Accel offload: the generic-engine proof point, measured.
//!
//! The engine abstraction (DESIGN.md §9) claims any PCIe device class slots
//! behind the same frontend/backend split with pooling economics intact.
//! This benchmark exercises the third device class end to end: compute
//! offload jobs whose descriptors cross message channels and whose data
//! never leaves CXL pool memory.
//!
//! Two questions, mirroring the paper's NIC/SSD arguments:
//!  1. What does pooling cost? Makespan of a job batch from the host the
//!     accelerator is attached to vs a remote host reaching it over the
//!     pool — the delta is pure channel/DMA overhead.
//!  2. What does pooling buy? Aggregate throughput as more hosts share one
//!     device — stranded-per-host accelerators idle while a pooled one
//!     serves every host up to its lane parallelism.
//!
//! Usage mirrors `perf_smoke`:
//!
//! ```text
//! accel_offload              measure; keep any recorded baseline
//! accel_offload --baseline   measure and record this run as the baseline
//! accel_offload --check      fail (exit 1) when aggregate throughput fell
//!                            below the tolerance band vs BENCH_accel.json
//! ```

use oasis_accel::{AccelConfig, AccelOp};
use oasis_bench::{metrics, regress};
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_obs::MetricSink;
use oasis_sim::report::Table;
use oasis_sim::time::SimDuration;

const JOB_BYTES: usize = 64 * 1024;
const JOBS_PER_HOST: usize = 32;

fn payload(tag: u8) -> Vec<u8> {
    (0..JOB_BYTES).map(|i| tag ^ (i as u8)).collect()
}

/// Build a pod with `consumers` instance hosts sharing one accelerator on a
/// separate device host.
fn build_pod(consumers: usize) -> (Pod, Vec<usize>) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let hosts: Vec<usize> = (0..consumers).map(|_| b.add_host()).collect();
    let dev_host = b.add_nic_host();
    b.add_accel(dev_host, AccelConfig::default());
    let mut pod = b.build();
    for &h in &hosts {
        pod.launch_instance(h, AppKind::None, 1_000);
    }
    (pod, hosts)
}

/// Push `JOBS_PER_HOST` jobs from every host, resubmitting on backpressure,
/// and return the makespan: first submit to last job retired by the device.
/// The end of the span is the device's own retire timestamp
/// (`AccelStats::last_done_at`), not the polling-tick boundary the
/// completion was collected on, so the driver polling cadence never
/// quantizes the measurement.
fn run_batch(pod: &mut Pod, hosts: &[usize]) -> (SimDuration, usize) {
    let start = pod.now();
    let mut left: Vec<usize> = hosts.iter().map(|_| JOBS_PER_HOST).collect();
    let mut done = 0usize;
    let step = SimDuration::from_micros(10);
    loop {
        for (i, &h) in hosts.iter().enumerate() {
            while left[i] > 0 {
                let input = payload(h as u8 ^ left[i] as u8);
                match pod.submit_accel_job(h, AccelOp::Checksum, 0, &input) {
                    Ok(Some(_)) => left[i] -= 1,
                    Ok(None) => break, // backpressured: retry next tick
                    Err(e) => panic!("submit failed: {e}"),
                }
            }
        }
        pod.run(pod.now() + step);
        for &h in hosts {
            done += pod
                .take_accel_completions(h)
                .iter()
                .filter(|r| r.status.is_ok())
                .count();
        }
        if done == hosts.len() * JOBS_PER_HOST {
            return (pod.accels[0].stats.last_done_at - start, done);
        }
        assert!(
            pod.now() - start < SimDuration::from_millis(500),
            "batch did not drain"
        );
    }
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--baseline");
    let check = std::env::args().any(|a| a == "--check");
    println!("== Accel offload over the pooled engine fabric (64 KiB checksum jobs) ==\n");

    // 1. Pooling cost: a single host reaching the accelerator over the
    // pool. Every byte moves through pool memory (device DMA), so the
    // per-job figure is the full channel + DMA + compute path.
    let mut t = Table::new(vec!["placement", "jobs", "makespan", "per-job"]);
    let (mut pod, hosts) = build_pod(1);
    let (span, jobs) = run_batch(&mut pod, &hosts);
    t.row(vec![
        "1 host, pooled accel".to_string(),
        format!("{jobs}"),
        format!("{:.1} us", span.as_nanos() as f64 / 1e3),
        format!("{:.1} us", span.as_nanos() as f64 / 1e3 / jobs as f64),
    ]);
    println!("{}", t.render());

    // 2. Pooling benefit: hosts sharing one accelerator. Throughput scales
    // with sharers until the device's execution lanes saturate; a
    // per-host (stranded) deployment would need one device per row to
    // match the single pooled device's aggregate.
    let mut t = Table::new(vec![
        "sharing hosts",
        "jobs",
        "makespan",
        "aggregate GB/s",
        "device util vs 1 host",
    ]);
    // Every sweep point is exported into a metrics sink keyed by the
    // sharing-host count, and the table below is rendered from the snapshot
    // read-back — the same path `obs_report` uses.
    let mut sink = MetricSink::new();
    let sweep = [1usize, 2, 4, 8];
    for &consumers in &sweep {
        let (mut pod, hosts) = build_pod(consumers);
        let (span, jobs) = run_batch(&mut pod, &hosts);
        sink.set(metrics::ACCEL_BATCH_JOBS, consumers as u32, jobs as u64);
        sink.set(
            metrics::ACCEL_MAKESPAN_NS,
            consumers as u32,
            span.as_nanos(),
        );
    }
    let snap = sink.snapshot();
    let mut base_span: Option<f64> = None;
    let mut gbps_at: Vec<(usize, f64)> = Vec::new();
    for &consumers in &sweep {
        let jobs = snap.counter(metrics::ACCEL_BATCH_JOBS, consumers as u32);
        let span_ns = snap.counter(metrics::ACCEL_MAKESPAN_NS, consumers as u32) as f64;
        let gbps = (jobs as usize * JOB_BYTES) as f64 / (span_ns / 1e9) / 1e9;
        let span_us = span_ns / 1e3;
        let util = match base_span {
            None => {
                base_span = Some(span_us);
                1.0
            }
            // One batch took base_span; `consumers` batches through the
            // same device in span_us means the device did consumers*base
            // worth of work — utilization relative to the single-host run.
            Some(base) => consumers as f64 * base / span_us,
        };
        gbps_at.push((consumers, gbps));
        t.row(vec![
            format!("{consumers}"),
            format!("{jobs}"),
            format!("{span_us:.1} us"),
            format!("{gbps:.2}"),
            format!("{util:.2}x"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "pooling lets every host reach the device; aggregate throughput grows\n\
         until the device's internal lanes saturate, where a stranded\n\
         one-device-per-host deployment would leave each device mostly idle.\n"
    );

    // Regression bookkeeping. The gated metric is aggregate GB/s per
    // sharing-host count — a pure function of the deterministic simulation,
    // so any drift is a behavioral change in the engine fabric, not noise.
    let prior = std::fs::read_to_string("BENCH_accel.json").ok();
    let baseline_for = |consumers: usize| -> Option<f64> {
        prior
            .as_deref()
            .and_then(|text| regress::read_json_number(text, &format!("baseline_gbps_{consumers}")))
    };

    if check {
        let mut ok = true;
        for &(consumers, gbps) in &gbps_at {
            let baseline = baseline_for(consumers).expect(
                "--check needs a committed BENCH_accel.json with baseline_gbps_<hosts> entries",
            );
            ok &= regress::gate(
                &format!("accel aggregate GB/s @ {consumers} hosts"),
                regress::handicapped(gbps),
                baseline,
            );
        }
        std::process::exit(if ok { 0 } else { 1 });
    }

    let mut json = String::from("{\n  \"bench\": \"accel_offload\",\n");
    for (i, &(consumers, gbps)) in gbps_at.iter().enumerate() {
        let baseline = if record_baseline {
            Some(gbps)
        } else {
            baseline_for(consumers)
        };
        json.push_str(&format!("  \"gbps_{consumers}\": {gbps:.3},\n"));
        match baseline {
            Some(b) => json.push_str(&format!("  \"baseline_gbps_{consumers}\": {b:.3}")),
            None => json.push_str(&format!("  \"baseline_gbps_{consumers}\": null")),
        }
        json.push_str(if i + 1 == gbps_at.len() { "\n" } else { ",\n" });
    }
    json.push_str("}\n");
    std::fs::write("BENCH_accel.json", &json).expect("write BENCH_accel.json");
    println!("wrote BENCH_accel.json");
}
