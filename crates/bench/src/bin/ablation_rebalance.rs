//! §6 "Load balancing policies": telemetry-driven rebalancing in action.
//!
//! Three equally-leased instances land on two NICs (least-loaded placement
//! alternates, so one NIC serves two of them). All the *traffic* goes to
//! the two instances that share a NIC: that NIC runs hot while the other
//! idles. With the rebalancer enabled, the allocator notices the load skew
//! in the 100 ms telemetry and gracefully migrates one instance over —
//! without losing a packet (§3.3.4).

use oasis_apps::stats::{ClientStats, StatsHandle};
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_core::allocator::RebalancePolicy;
use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn run(rebalance: bool) -> (Pod, Vec<StatsHandle>, Vec<usize>) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let host_b = b.add_host();
    let _n0 = b.add_nic_host();
    let _n1 = b.add_nic_host();
    let mut pod = b.build();
    if rebalance {
        pod.allocator.enable_rebalancing(RebalancePolicy::new(
            2.0,
            50_000,
            SimDuration::from_millis(200),
        ));
    }
    // Placement: #1 (host A) -> NIC 0; the idle decoy (host A) -> NIC 1;
    // #3 (host B) ties and lands on NIC 0. The heavy pair therefore sits on
    // *different frontend cores* but shares NIC 0's backend core — the
    // contended resource the rebalancer relieves.
    let echo = || AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1))));
    let i1 = pod.launch_instance(host_a, echo(), 10_000);
    let _decoy = pod.launch_instance(host_a, echo(), 10_000);
    let i3 = pod.launch_instance(host_b, echo(), 10_000);
    let instances = vec![i1, _decoy, i3];

    let end = SimTime::from_secs(1);
    let mut stats = Vec::new();
    for (i, &inst) in [i1, i3].iter().enumerate() {
        let h = ClientStats::handle();
        h.borrow_mut().record_from = SimTime::from_millis(500); // post-migration window
        pod.add_endpoint(Box::new(UdpClient::new(
            (i + 1) as u64,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            1000,
            Pacing::Poisson {
                rate_rps: 320_000.0,
                until: end - SimDuration::from_millis(20),
            },
            SimTime::from_millis(1),
            h.clone(),
        )));
        stats.push(h);
    }
    pod.run(end);
    (pod, stats, instances)
}

fn main() {
    println!("== Ablation: telemetry-driven load rebalancing (Section 6) ==\n");
    let mut t = Table::new(vec![
        "rebalancer",
        "migrations",
        "heavy pair shares a NIC?",
        "p50 (us)",
        "p99 (us)",
        "lost",
    ]);
    for rebalance in [false, true] {
        let (pod, stats, instances) = run(rebalance);
        let nic_of = |inst: usize| {
            pod.allocator
                .state
                .instances
                .iter()
                .find(|i| i.ip == pod.instance_ip(inst))
                .map(|i| i.nic)
                .unwrap()
        };
        let shared = nic_of(instances[0]) == nic_of(instances[2]);
        let mut p50 = 0u64;
        let mut p99 = 0u64;
        let mut lost = 0u64;
        for h in &stats {
            let s = h.borrow();
            p50 = p50.max(s.rtt.percentile(50.0));
            p99 = p99.max(s.rtt.percentile(99.0));
            lost += s.lost();
        }
        t.row(vec![
            if rebalance { "on" } else { "off" }.to_string(),
            format!("{}", pod.allocator.rebalance_migrations),
            format!("{shared}"),
            format!("{:.2}", p50 as f64 / 1e3),
            format!("{:.2}", p99 as f64 / 1e3),
            format!("{lost}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "With the policy on, the allocator separates the heavy hitters onto\n\
         different NICs via graceful migration (GARP; zero loss), shrinking the\n\
         tail that NIC sharing under load inflicts."
    );
}
