//! Figure 10: Oasis overhead on a UDP echo microbenchmark, 75 B and
//! 1500 B packets, across load levels.
//!
//! Paper anchor: Oasis adds a consistent 4–7 µs over the Junction baseline
//! at P50/P90/P99, independent of packet size.

use oasis_apps::udp::Pacing;
use oasis_bench::harness::{run_udp_echo, Mode};
use oasis_sim::report::Table;
use oasis_sim::time::{SimDuration, SimTime};

fn main() {
    println!("== Figure 10: UDP echo RTT, baseline vs Oasis ==\n");
    let duration = SimDuration::from_millis(60);
    let warmup = SimDuration::from_millis(5);

    // Payload sizes chosen so the wire frames are 75B / 1500B like the
    // paper (Ethernet+IP+UDP headers are 42B).
    for (label, payload) in [("75B", 75usize - 42), ("1500B", 1500 - 42)] {
        println!("packet size {label}:");
        let mut t = Table::new(vec![
            "load (kRPS)",
            "mode",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "overhead p50 (us)",
        ]);
        for rate_krps in [10.0, 100.0, 400.0] {
            let mut base_p50 = 0u64;
            for mode in [Mode::Baseline, Mode::Oasis] {
                let stats = run_udp_echo(
                    mode,
                    payload,
                    Pacing::Poisson {
                        rate_rps: rate_krps * 1e3,
                        until: SimTime::ZERO + duration - SimDuration::from_millis(5),
                    },
                    duration,
                    warmup,
                );
                let s = stats.borrow();
                if mode == Mode::Baseline {
                    base_p50 = s.rtt.percentile(50.0);
                }
                let overhead = if mode == Mode::Oasis {
                    format!(
                        "{:.2}",
                        (s.rtt.percentile(50.0) as f64 - base_p50 as f64) / 1e3
                    )
                } else {
                    "-".to_string()
                };
                t.row(vec![
                    format!("{rate_krps:.0}"),
                    mode.label().to_string(),
                    format!("{:.2}", s.rtt.percentile(50.0) as f64 / 1e3),
                    format!("{:.2}", s.rtt.percentile(90.0) as f64 / 1e3),
                    format!("{:.2}", s.rtt.percentile(99.0) as f64 / 1e3),
                    overhead,
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("paper: 4-7us overhead at every percentile, independent of packet size");
}
