//! Shared experiment runners.
//!
//! Every overhead experiment compares the same three configurations the
//! paper uses (§5.1, Fig. 11):
//!
//! * **Baseline** — Junction-style: instance served by its local NIC,
//!   I/O buffers in local DDR,
//! * **Baseline + CXL buffers** — local NIC but buffer areas in pool
//!   memory,
//! * **Oasis** — instance on a NIC-less host, served by a remote NIC over
//!   the full Oasis datapath.

use oasis_apps::memcached::{GetRequests, MemcachedFramer, MemcachedServer, MEMCACHED_PORT};
use oasis_apps::stats::{ClientStats, StatsHandle};
use oasis_apps::tcp_client::TcpRequestClient;
use oasis_apps::udp::{EchoServer, Pacing, UdpClient};
use oasis_apps::webapp::{LengthFramer, WebAppServer, WebFramework, WebRequests};
use oasis_core::config::{BufferPlacement, OasisConfig};
use oasis_core::instance::AppKind;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_core::tcp::TcpConfig;
use oasis_sim::time::{SimDuration, SimTime};

/// Which datapath serves the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Junction baseline: local NIC, local-DDR buffers.
    Baseline,
    /// §5.1 modified baseline: local NIC, buffers in CXL pool memory.
    BaselineCxlBufs,
    /// Full Oasis: remote NIC over the pool datapath.
    Oasis,
}

impl Mode {
    /// All three, in Fig. 11 order.
    pub const ALL: [Mode; 3] = [Mode::Baseline, Mode::BaselineCxlBufs, Mode::Oasis];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::BaselineCxlBufs => "baseline+cxl-bufs",
            Mode::Oasis => "oasis",
        }
    }
}

/// Build a pod for `mode` and launch one instance with `app`. Returns the
/// pod and instance index.
pub fn single_instance_pod(mode: Mode, cfg: OasisConfig, app: AppKind) -> (Pod, usize) {
    let mut b = PodBuilder::new(cfg);
    let host = match mode {
        Mode::Baseline => b.add_baseline_host(BufferPlacement::LocalDdr),
        Mode::BaselineCxlBufs => b.add_baseline_host(BufferPlacement::CxlPool),
        Mode::Oasis => {
            let host_a = b.add_host(); // instance host, no NIC
            b.add_nic_host(); // remote NIC host
            host_a
        }
    };
    let mut pod = b.build();
    let inst = pod.launch_instance(host, app, 10_000);
    (pod, inst)
}

/// Run a UDP echo workload and return the client stats.
pub fn run_udp_echo(
    mode: Mode,
    payload: usize,
    pacing: Pacing,
    duration: SimDuration,
    warmup: SimDuration,
) -> StatsHandle {
    let (mut pod, inst) = single_instance_pod(
        mode,
        OasisConfig::default(),
        AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
    );
    let stats = ClientStats::handle();
    stats.borrow_mut().record_from = SimTime::ZERO + warmup;
    let client = UdpClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        7,
        payload,
        pacing,
        SimTime::from_micros(20),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::ZERO + duration);
    stats
}

/// Run a paced memcached GET workload and return the client stats.
pub fn run_memcached(
    mode: Mode,
    value_len: usize,
    gap: SimDuration,
    count: u64,
    duration: SimDuration,
    warmup: SimDuration,
) -> StatsHandle {
    let mut server = MemcachedServer::new(SimDuration::from_micros(3));
    let value = vec![0x6fu8; value_len];
    for k in 0..16 {
        server.preload(format!("key{k}").as_bytes(), &value);
    }
    let (mut pod, inst) =
        single_instance_pod(mode, OasisConfig::default(), AppKind::Tcp(Box::new(server)));
    pod.instances[inst].server_port = MEMCACHED_PORT;
    let stats = ClientStats::handle();
    stats.borrow_mut().record_from = SimTime::ZERO + warmup;
    let client = TcpRequestClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        MEMCACHED_PORT,
        gap,
        count,
        SimTime::from_micros(50),
        TcpConfig::default(),
        Box::new(GetRequests { keys: 16 }),
        Box::new(MemcachedFramer),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::ZERO + duration);
    stats
}

/// Run a web-application workload (Fig. 8) and return the client stats.
pub fn run_webapp(
    mode: Mode,
    framework: WebFramework,
    gap: SimDuration,
    count: u64,
    duration: SimDuration,
    warmup: SimDuration,
) -> StatsHandle {
    let (mut pod, inst) = single_instance_pod(
        mode,
        OasisConfig::default(),
        AppKind::Tcp(Box::new(WebAppServer::new(framework, 11))),
    );
    pod.instances[inst].server_port = 80;
    let stats = ClientStats::handle();
    stats.borrow_mut().record_from = SimTime::ZERO + warmup;
    let client = TcpRequestClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        80,
        gap,
        count,
        SimTime::from_micros(50),
        TcpConfig::default(),
        Box::new(WebRequests { body: 256 }),
        Box::new(LengthFramer),
        stats.clone(),
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::ZERO + duration);
    stats
}
