//! UDP echo server and load-generating client.
//!
//! The client is the workhorse of the evaluation: fixed-gap and Poisson
//! pacing drive the Fig. 10/11 overhead sweeps and the Fig. 13 failover
//! run; trace-replay pacing drives the Fig. 12 multiplexing experiment by
//! replaying the §2.2 rack traces ("we use two clients to generate matching
//! UDP traffic to two hosts; each host echoes the packets back").

use std::collections::VecDeque;

use oasis_core::instance::{UdpApp, UdpResponse};
use oasis_core::pod::Endpoint;
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{ArpPacket, Frame, GarpPacket, UdpPacket};
use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

use crate::stats::StatsHandle;

/// UDP echo server application with a fixed service time.
pub struct EchoServer {
    /// Per-request service time.
    pub service: SimDuration,
}

impl EchoServer {
    /// Echo with the given service time (the paper's echo server replies
    /// "immediately"; a small service time models the instance stack).
    pub fn new(service: SimDuration) -> Self {
        EchoServer { service }
    }
}

impl UdpApp for EchoServer {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse> {
        vec![UdpResponse {
            delay: self.service,
            dst: src,
            src_port: dst_port,
            payload: payload.to_vec(),
        }]
    }
}

/// How the client spaces its requests.
pub enum Pacing {
    /// Fixed inter-request gap, `count` requests (open loop).
    FixedGap {
        /// Gap between sends.
        gap: SimDuration,
        /// Requests to send.
        count: u64,
    },
    /// Poisson arrivals at `rate_rps` until `until`.
    Poisson {
        /// Mean request rate, requests/second.
        rate_rps: f64,
        /// Stop sending at this time.
        until: SimTime,
    },
    /// Replay `(send_ns, frame_bytes)` events (a `oasis-trace` packet
    /// trace). Frame bytes below the minimum UDP frame are clamped.
    Replay(Vec<(u64, u16)>),
    /// Closed loop: keep `outstanding` requests in flight until `count`
    /// have been issued (a 10 ms timeout abandons a lost slot so failures
    /// don't deadlock the loop).
    Closed {
        /// Requests kept in flight.
        outstanding: u64,
        /// Total requests to issue.
        count: u64,
    },
}

/// A UDP echo client endpoint.
pub struct UdpClient {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    dst_port: u16,
    payload_len: usize,
    pacing: Pacing,
    stats: StatsHandle,
    rng: SimRng,
    start: SimTime,
    next_send: Option<SimTime>,
    replay_idx: usize,
    /// Next ARP retry while the destination MAC is unresolved.
    next_arp: SimTime,
    /// Closed-loop slots written off after the loss timeout.
    abandoned: u64,
    /// Closed-loop: last time progress was made (send or receive).
    last_progress: SimTime,
    inbox: VecDeque<(SimTime, Frame)>,
}

impl UdpClient {
    /// Create a client sending `payload_len`-byte requests to
    /// `(dst_ip, dst_mac)`.
    // Constructor mirrors the experiment-config fields one-to-one; a
    // builder would just restate them.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload_len: usize,
        pacing: Pacing,
        start: SimTime,
        stats: StatsHandle,
    ) -> Self {
        UdpClient {
            mac: MacAddr::client(id),
            ip: Ipv4Addr::client(id as u32),
            dst_mac,
            dst_ip,
            dst_port,
            payload_len: payload_len.max(8),
            pacing,
            stats,
            rng: SimRng::new(0x5eed ^ id),
            start,
            next_send: None,
            replay_idx: 0,
            next_arp: start,
            abandoned: 0,
            last_progress: start,
            inbox: VecDeque::new(),
        }
    }

    /// Create a client that resolves the destination MAC itself with ARP
    /// before sending (no out-of-band MAC configuration).
    // Same shape as `new` minus the MAC; kept in lockstep with it.
    #[allow(clippy::too_many_arguments)]
    pub fn new_resolving(
        id: u64,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload_len: usize,
        pacing: Pacing,
        start: SimTime,
        stats: StatsHandle,
    ) -> Self {
        Self::new(
            id,
            MacAddr::ZERO,
            dst_ip,
            dst_port,
            payload_len,
            pacing,
            start,
            stats,
        )
    }

    fn resolved(&self) -> bool {
        self.dst_mac != MacAddr::ZERO
    }

    fn compute_next_send(&mut self, after: SimTime) -> Option<SimTime> {
        match &self.pacing {
            Pacing::FixedGap { gap, count } => {
                if self.stats.borrow().sent >= *count {
                    None
                } else if self.stats.borrow().sent == 0 {
                    Some(self.start)
                } else {
                    Some(after + *gap)
                }
            }
            Pacing::Poisson { rate_rps, until } => {
                let gap = self.rng.exp(1e9 / rate_rps);
                let t = if self.stats.borrow().sent == 0 {
                    self.start
                } else {
                    after + SimDuration::from_nanos(gap as u64)
                };
                if t > *until {
                    None
                } else {
                    Some(t)
                }
            }
            Pacing::Replay(events) => events
                .get(self.replay_idx)
                .map(|&(ns, _)| self.start + SimDuration::from_nanos(ns)),
            Pacing::Closed { .. } => None, // driven by responses, not time
        }
    }

    fn closed_in_flight(&self) -> u64 {
        let s = self.stats.borrow();
        (s.sent - s.received).saturating_sub(self.abandoned)
    }

    fn frame_payload_len(&self) -> usize {
        match &self.pacing {
            Pacing::Replay(events) => {
                // Frame size from the trace: strip Ethernet+IP+UDP headers.
                let frame_bytes = events
                    .get(self.replay_idx)
                    .map(|&(_, b)| b as usize)
                    .unwrap_or(64);
                frame_bytes.saturating_sub(14 + 20 + 8).max(8)
            }
            _ => self.payload_len,
        }
    }
}

impl Endpoint for UdpClient {
    fn next_time(&self) -> SimTime {
        let mut t = if self.resolved() {
            if let Pacing::Closed { outstanding, count } = self.pacing {
                // One stats lock for both reads: `closed_in_flight` locks
                // the cell itself, so it must not run under a held guard.
                let sent = self.stats.borrow().sent;
                let inflight = self.closed_in_flight();
                if sent >= count {
                    if inflight == 0 {
                        SimTime::MAX
                    } else {
                        // Drain: wake at the loss timeout to write off
                        // responses that will never come.
                        self.last_progress + SimDuration::from_millis(10)
                    }
                } else if inflight < outstanding {
                    // A send is possible right away.
                    self.start.max(self.last_progress)
                } else {
                    // Full window: wake at the loss timeout.
                    self.last_progress + SimDuration::from_millis(10)
                }
            } else {
                let mut t = self.next_send.unwrap_or(SimTime::MAX);
                if self.next_send.is_none() && self.stats.borrow().sent == 0 {
                    // First poll bootstraps the schedule.
                    t = self.start;
                }
                t
            }
        } else {
            self.next_arp
        };
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        // Resolve the destination MAC first (retrying every millisecond);
        // pacing starts once resolution succeeds.
        if !self.resolved() {
            // Drain the inbox looking for the reply.
            while let Some(&(at, _)) = self.inbox.front() {
                if at > now {
                    break;
                }
                let (_, frame) = self.inbox.pop_front().unwrap();
                if let Some(garp) = GarpPacket::parse(&frame) {
                    if garp.sender_ip == self.dst_ip {
                        self.dst_mac = garp.sender_mac;
                    }
                }
            }
            if !self.resolved() {
                if now >= self.next_arp {
                    self.next_arp = now + SimDuration::from_millis(1);
                    return vec![ArpPacket::request(self.mac, self.ip, self.dst_ip).encode()];
                }
                return Vec::new();
            }
            // Resolution done: begin pacing from now.
            self.start = self.start.max(now);
        }
        // Bootstrap the first send time lazily.
        if self.next_send.is_none() && self.stats.borrow().sent == 0 {
            self.next_send = self.compute_next_send(now);
        }
        // Receive echoes (and GARP migrations).
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (at, frame) = self.inbox.pop_front().unwrap();
            if let Some(garp) = GarpPacket::parse(&frame) {
                if garp.sender_ip == self.dst_ip {
                    self.dst_mac = garp.sender_mac;
                }
                continue;
            }
            if let Some(udp) = UdpPacket::parse(&frame) {
                if udp.dst_ip == self.ip && udp.payload.len() >= 8 {
                    let seq = u64::from_le_bytes(udp.payload[..8].try_into().unwrap());
                    self.stats.borrow_mut().on_response(seq, at);
                    self.last_progress = at;
                }
            }
        }
        // Send requests due now.
        let mut out = Vec::new();
        if let Pacing::Closed { outstanding, count } = self.pacing {
            // Abandon a lost slot after the timeout so the loop never
            // deadlocks across failures (one write-off per timeout tick).
            if self.closed_in_flight() > 0
                && now >= self.last_progress + SimDuration::from_millis(10)
            {
                self.abandoned += 1;
                self.last_progress = now;
            }
            loop {
                // Read, then drop, the stats guard before `closed_in_flight`
                // takes its own lock on the same cell.
                let sent = self.stats.borrow().sent;
                if sent >= count || self.closed_in_flight() >= outstanding {
                    break;
                }
                let len = self.payload_len;
                let mut payload = vec![0u8; len];
                let seq = self.stats.borrow_mut().on_send(now);
                payload[..8].copy_from_slice(&seq.to_le_bytes());
                out.push(
                    UdpPacket {
                        src_mac: self.mac,
                        dst_mac: self.dst_mac,
                        src_ip: self.ip,
                        dst_ip: self.dst_ip,
                        src_port: 40000,
                        dst_port: self.dst_port,
                        payload: bytes::Bytes::from(payload),
                    }
                    .encode(),
                );
                self.last_progress = now;
            }
            return out;
        }
        while let Some(due) = self.next_send {
            if due > now {
                break;
            }
            let len = self.frame_payload_len();
            let mut payload = vec![0u8; len];
            let seq = self.stats.borrow_mut().on_send(now);
            payload[..8].copy_from_slice(&seq.to_le_bytes());
            out.push(
                UdpPacket {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 40000,
                    dst_port: self.dst_port,
                    payload: bytes::Bytes::from(payload),
                }
                .encode(),
            );
            if let Pacing::Replay(_) = self.pacing {
                self.replay_idx += 1;
            }
            self.next_send = self.compute_next_send(now);
        }
        out
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ClientStats;
    use oasis_core::config::OasisConfig;
    use oasis_core::instance::AppKind;
    use oasis_core::pod::PodBuilder;

    fn echo_pod_rtts(payload: usize, count: u64) -> (u64, u64, u64) {
        let mut b = PodBuilder::new(OasisConfig::default());
        let host_a = b.add_host();
        let _host_b = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(
            host_a,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            10_000,
        );
        let stats = ClientStats::handle();
        let client = UdpClient::new(
            1,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            payload,
            Pacing::FixedGap {
                gap: SimDuration::from_micros(60),
                count,
            },
            SimTime::from_micros(20),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        pod.run(SimTime::from_millis(6));
        let s = stats.borrow();
        (s.sent, s.received, s.rtt.percentile(50.0))
    }

    #[test]
    fn oasis_echo_all_requests_answered() {
        let (sent, received, p50) = echo_pod_rtts(64, 50);
        assert_eq!(sent, 50);
        assert_eq!(received, 50);
        // Single-switch testbed: microseconds, not millis.
        assert!(p50 > 2_000 && p50 < 40_000, "p50 {p50}ns");
    }

    #[test]
    fn rtt_mostly_independent_of_packet_size() {
        // Fig. 10: overhead is the same for 75B and 1500B packets.
        let (_, _, small) = echo_pod_rtts(75, 40);
        let (_, _, big) = echo_pod_rtts(1400, 40);
        assert!(big < small + 8_000, "small {small} big {big}");
    }

    #[test]
    fn poisson_pacing_stops_at_deadline() {
        let stats = ClientStats::handle();
        let mut client = UdpClient::new(
            2,
            MacAddr::nic(0),
            Ipv4Addr::instance(1),
            7,
            64,
            Pacing::Poisson {
                rate_rps: 1e6,
                until: SimTime::from_micros(100),
            },
            SimTime::ZERO,
            stats.clone(),
        );
        let mut now;
        for _ in 0..1000 {
            let t = client.next_time();
            if t == SimTime::MAX {
                break;
            }
            now = t;
            client.poll(now);
        }
        let sent = stats.borrow().sent;
        assert!((50..=200).contains(&sent), "sent {sent} in 100us at 1M rps");
    }

    #[test]
    fn replay_pacing_follows_trace() {
        let stats = ClientStats::handle();
        let events = vec![(0u64, 100u16), (1_000, 1500), (50_000, 200)];
        let mut client = UdpClient::new(
            3,
            MacAddr::nic(0),
            Ipv4Addr::instance(1),
            7,
            64,
            Pacing::Replay(events),
            SimTime::from_micros(1),
            stats.clone(),
        );
        let mut frames = Vec::new();
        while client.next_time() != SimTime::MAX {
            let t = client.next_time();
            frames.extend(client.poll(t));
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(stats.borrow().sent, 3);
        // Frame sizes track the trace (clamped to the minimum).
        assert_eq!(frames[1].len(), 1500);
    }

    #[test]
    fn arp_resolution_through_pod() {
        // A client given only the instance's IP resolves the serving NIC's
        // MAC via ARP (the instance answers), then echoes normally.
        let mut b = PodBuilder::new(OasisConfig::default());
        let host_a = b.add_host();
        let _host_b = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(
            host_a,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            10_000,
        );
        let stats = ClientStats::handle();
        let client = UdpClient::new_resolving(
            1,
            pod.instance_ip(inst),
            7,
            64,
            Pacing::FixedGap {
                gap: SimDuration::from_micros(50),
                count: 20,
            },
            SimTime::from_micros(20),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        pod.run(SimTime::from_millis(8));
        let s = stats.borrow();
        assert_eq!(s.sent, 20, "pacing started after resolution");
        assert_eq!(s.received, 20, "all echoes received");
    }

    #[test]
    fn closed_loop_keeps_window_full_and_completes() {
        let mut b = PodBuilder::new(OasisConfig::default());
        let host_a = b.add_host();
        let _n = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(
            host_a,
            AppKind::Udp(Box::new(EchoServer::new(SimDuration::from_micros(1)))),
            10_000,
        );
        let stats = ClientStats::handle();
        let client = UdpClient::new(
            1,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            7,
            64,
            Pacing::Closed {
                outstanding: 4,
                count: 200,
            },
            SimTime::from_micros(20),
            stats.clone(),
        );
        pod.add_endpoint(Box::new(client));
        pod.run(SimTime::from_millis(20));
        let s = stats.borrow();
        assert_eq!(s.sent, 200);
        assert_eq!(s.received, 200);
        // Closed loop at 4 outstanding over ~8us RTT: ~0.5 rps/us; the run
        // must take roughly 200/4 * rtt, i.e. finish well inside 20ms.
        assert!(s.rtt.percentile(99.0) < 30_000);
    }

    #[test]
    fn garp_updates_destination_mac() {
        let stats = ClientStats::handle();
        let mut client = UdpClient::new(
            4,
            MacAddr::nic(0),
            Ipv4Addr::instance(1),
            7,
            64,
            Pacing::FixedGap {
                gap: SimDuration::from_micros(10),
                count: 2,
            },
            SimTime::ZERO,
            stats,
        );
        let garp = GarpPacket {
            sender_mac: MacAddr::nic(9),
            sender_ip: Ipv4Addr::instance(1),
        }
        .encode();
        client.deliver(SimTime::ZERO, garp);
        let frames = client.poll(SimTime::ZERO);
        assert_eq!(frames[0].dst_mac(), MacAddr::nic(9));
    }
}
