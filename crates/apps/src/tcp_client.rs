//! Generic TCP request/response client endpoint.
//!
//! Drives a single long-lived TCP-lite connection to a pod instance,
//! pacing requests open-loop and matching responses to requests in FIFO
//! order (TCP delivers in order). The response framing is pluggable:
//! memcached text protocol or length-prefixed web responses.

use std::collections::VecDeque;

use oasis_core::pod::Endpoint;
use oasis_core::tcp::{TcpConfig, TcpConn};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{Frame, GarpPacket, TcpFlags, TcpSegment};
use oasis_sim::time::{SimDuration, SimTime};

use crate::stats::StatsHandle;

/// Recognizes complete responses in the receive stream. `Send` because the
/// owning endpoint migrates between shard worker threads
/// (`oasis_sim::shard`) with its pod.
pub trait ResponseFramer: Send {
    /// If `buf` starts with one complete response, return its length.
    fn complete(&mut self, buf: &[u8]) -> Option<usize>;
}

/// Builds request bytes for a sequence number. `Send` for the same reason
/// as [`ResponseFramer`].
pub trait RequestBuilder: Send {
    /// Serialize request `seq`.
    fn build(&mut self, seq: u64) -> Vec<u8>;
}

/// The client endpoint.
pub struct TcpRequestClient {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    dst_port: u16,
    conn: TcpConn,
    gap: SimDuration,
    count: u64,
    stats: StatsHandle,
    request: Box<dyn RequestBuilder>,
    framer: Box<dyn ResponseFramer>,
    outstanding: VecDeque<u64>,
    rx_buf: Vec<u8>,
    next_send: Option<SimTime>,
    inbox: VecDeque<(SimTime, Frame)>,
}

impl TcpRequestClient {
    /// Create a client issuing `count` requests, one every `gap`.
    // Constructor mirrors the experiment-config fields one-to-one; a
    // builder would just restate them.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        gap: SimDuration,
        count: u64,
        start: SimTime,
        tcp: TcpConfig,
        request: Box<dyn RequestBuilder>,
        framer: Box<dyn ResponseFramer>,
        stats: StatsHandle,
    ) -> Self {
        TcpRequestClient {
            mac: MacAddr::client(id),
            ip: Ipv4Addr::client(id as u32),
            dst_mac,
            dst_ip,
            dst_port,
            conn: TcpConn::new(tcp),
            gap,
            count,
            stats,
            request,
            framer,
            outstanding: VecDeque::new(),
            rx_buf: Vec::new(),
            next_send: Some(start),
            inbox: VecDeque::new(),
        }
    }
}

impl Endpoint for TcpRequestClient {
    fn next_time(&self) -> SimTime {
        let mut t = SimTime::MAX;
        if self.stats.borrow().sent < self.count {
            t = t.min(self.next_send.unwrap_or(SimTime::MAX));
        }
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        if let Some(rto) = self.conn.next_timer() {
            t = t.min(rto);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        // Receive segments.
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (at, frame) = self.inbox.pop_front().unwrap();
            if let Some(garp) = GarpPacket::parse(&frame) {
                if garp.sender_ip == self.dst_ip {
                    self.dst_mac = garp.sender_mac;
                }
                continue;
            }
            if let Some(seg) = TcpSegment::parse(&frame) {
                if seg.dst_ip != self.ip {
                    continue;
                }
                self.conn.on_segment(at, seg.seq, seg.ack, &seg.payload);
                let data = self.conn.take_received();
                self.rx_buf.extend_from_slice(&data);
                while let Some(n) = self.framer.complete(&self.rx_buf) {
                    self.rx_buf.drain(..n);
                    if let Some(seq) = self.outstanding.pop_front() {
                        self.stats.borrow_mut().on_response(seq, at);
                    }
                }
            }
        }

        // Send due requests.
        while let Some(due) = self.next_send {
            if due > now || self.stats.borrow().sent >= self.count {
                break;
            }
            let seq = self.stats.borrow_mut().on_send(now);
            let bytes = self.request.build(seq);
            self.conn.send(&bytes);
            self.outstanding.push_back(seq);
            self.next_send = Some(due + self.gap);
        }

        // Emit TCP segments (data, retransmits, ACKs).
        self.conn
            .poll(now)
            .into_iter()
            .map(|s| {
                TcpSegment {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 40000,
                    dst_port: self.dst_port,
                    seq: s.seq,
                    ack: s.ack,
                    flags: TcpFlags {
                        ack: true,
                        psh: !s.payload.is_empty(),
                        ..Default::default()
                    },
                    window: 0xffff,
                    payload: bytes::Bytes::from(s.payload),
                }
                .encode()
            })
            .collect()
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}
