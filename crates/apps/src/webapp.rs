//! Web-application models for the Fig. 8 overhead experiment.
//!
//! The paper measures four "typical web applications" — a Python HTTP
//! server, a Rust Rocket server, nginx, and Apache Tomcat — and shows Oasis
//! adds a consistent 4–7 µs regardless of the stack. The applications are
//! modelled as request/response servers over TCP-lite with per-framework
//! service-time distributions (lognormal, calibrated to typical
//! small-response latencies of each stack) and response sizes.
//!
//! Framing is length-prefixed: `u32-le length` then the body, in both
//! directions.

use oasis_core::instance::{TcpApp, TcpResponse};
use oasis_net::addr::Ipv4Addr;
use oasis_sim::detmap::DetMap;
use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

use crate::tcp_client::{RequestBuilder, ResponseFramer};

/// One of the paper's four web stacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WebFramework {
    /// `python -m http.server`: interpreted, slowest.
    PythonHttp,
    /// Rocket (Rust): compiled, fast.
    Rocket,
    /// nginx serving static content: fastest.
    Nginx,
    /// Apache Tomcat (JVM): mid-range.
    Tomcat,
}

impl WebFramework {
    /// All four, in Fig. 8 order.
    pub const ALL: [WebFramework; 4] = [
        WebFramework::PythonHttp,
        WebFramework::Rocket,
        WebFramework::Nginx,
        WebFramework::Tomcat,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WebFramework::PythonHttp => "python-http",
            WebFramework::Rocket => "rocket",
            WebFramework::Nginx => "nginx",
            WebFramework::Tomcat => "tomcat",
        }
    }

    /// (median service time, lognormal sigma, response bytes).
    fn profile(self) -> (SimDuration, f64, usize) {
        match self {
            WebFramework::PythonHttp => (SimDuration::from_micros(700), 0.40, 2048),
            WebFramework::Rocket => (SimDuration::from_micros(130), 0.30, 1024),
            WebFramework::Nginx => (SimDuration::from_micros(55), 0.25, 1024),
            WebFramework::Tomcat => (SimDuration::from_micros(280), 0.45, 2048),
        }
    }
}

/// The server application.
pub struct WebAppServer {
    framework: WebFramework,
    rng: SimRng,
    partial: DetMap<(u32, u16), Vec<u8>>,
    /// Requests served.
    pub requests: u64,
}

impl WebAppServer {
    /// A server for one framework.
    pub fn new(framework: WebFramework, seed: u64) -> Self {
        WebAppServer {
            framework,
            rng: SimRng::new(seed ^ 0x3eb),
            partial: DetMap::default(),
            requests: 0,
        }
    }

    fn service_time(&mut self) -> SimDuration {
        let (median, sigma, _) = self.framework.profile();
        let mu = (median.as_nanos() as f64).ln();
        SimDuration::from_nanos(self.rng.lognormal(mu, sigma) as u64)
    }
}

impl TcpApp for WebAppServer {
    fn on_data(&mut self, _now: SimTime, peer: (Ipv4Addr, u16), data: &[u8]) -> Vec<TcpResponse> {
        let key = (peer.0.to_u32(), peer.1);
        let mut buf = self.partial.remove(&key).unwrap_or_default();
        buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            if buf.len() < 4 + len {
                break;
            }
            buf.drain(..4 + len);
            self.requests += 1;
            let (_, _, resp_len) = self.framework.profile();
            let delay = self.service_time();
            let mut resp = Vec::with_capacity(4 + resp_len);
            resp.extend_from_slice(&(resp_len as u32).to_le_bytes());
            resp.resize(4 + resp_len, 0x42);
            out.push(TcpResponse { delay, bytes: resp });
        }
        if !buf.is_empty() {
            self.partial.insert(key, buf);
        }
        out
    }
}

/// Builds fixed-size length-prefixed requests.
pub struct WebRequests {
    /// Request body size.
    pub body: usize,
}

impl RequestBuilder for WebRequests {
    fn build(&mut self, _seq: u64) -> Vec<u8> {
        let mut req = Vec::with_capacity(4 + self.body);
        req.extend_from_slice(&(self.body as u32).to_le_bytes());
        req.resize(4 + self.body, 0x51);
        req
    }
}

/// Frames length-prefixed responses.
#[derive(Default)]
pub struct LengthFramer;

impl ResponseFramer for LengthFramer {
    fn complete(&mut self, buf: &[u8]) -> Option<usize> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() >= 4 + len {
            Some(4 + len)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> (Ipv4Addr, u16) {
        (Ipv4Addr::client(1), 40000)
    }

    #[test]
    fn request_response_framing() {
        let mut s = WebAppServer::new(WebFramework::Nginx, 1);
        let mut req = WebRequests { body: 100 }.build(0);
        assert_eq!(req.len(), 104);
        // Split delivery.
        let tail = req.split_off(50);
        assert!(s.on_data(SimTime::ZERO, peer(), &req).is_empty());
        let out = s.on_data(SimTime::ZERO, peer(), &tail);
        assert_eq!(out.len(), 1);
        assert_eq!(s.requests, 1);
        let mut f = LengthFramer;
        assert_eq!(f.complete(&out[0].bytes), Some(out[0].bytes.len()));
    }

    #[test]
    fn service_times_ordered_by_framework() {
        // Medians across many samples must preserve the stack ordering:
        // nginx < rocket < tomcat < python.
        let mut medians = Vec::new();
        for fw in WebFramework::ALL {
            let mut s = WebAppServer::new(fw, 7);
            let mut samples: Vec<u64> = (0..2000).map(|_| s.service_time().as_nanos()).collect();
            samples.sort_unstable();
            medians.push((fw, samples[1000]));
        }
        let by = |f: WebFramework| medians.iter().find(|(x, _)| *x == f).unwrap().1;
        assert!(by(WebFramework::Nginx) < by(WebFramework::Rocket));
        assert!(by(WebFramework::Rocket) < by(WebFramework::Tomcat));
        assert!(by(WebFramework::Tomcat) < by(WebFramework::PythonHttp));
    }

    #[test]
    fn pipelined_requests_all_served() {
        let mut s = WebAppServer::new(WebFramework::Rocket, 3);
        let mut batch = Vec::new();
        for i in 0..5 {
            batch.extend(WebRequests { body: 32 }.build(i));
        }
        let out = s.on_data(SimTime::ZERO, peer(), &batch);
        assert_eq!(out.len(), 5);
    }
}
