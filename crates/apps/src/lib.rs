//! Workloads for the Oasis evaluation.
//!
//! Server applications (attached to pod instances) and client endpoints
//! (attached to switch ports) for every experiment in the paper:
//!
//! * [`udp`] — UDP echo server and a load-generating client with fixed-gap,
//!   Poisson, and trace-replay pacing (Figs. 10–13 and the Fig. 12
//!   multiplexing replay),
//! * [`memcached`] — a memcached-like key/value server over TCP-lite and a
//!   paced GET/SET client (Figs. 9 and 14),
//! * [`webapp`] — request/response web applications with per-framework
//!   service-time models (Fig. 8's Python / Rocket / nginx / Tomcat),
//! * [`stats`] — shared client-side recorders (RTT histograms, per-request
//!   timelines, loss accounting) accessible from outside the pod via
//!   `Rc<RefCell<...>>` handles.

pub mod memcached;
pub mod stats;
pub mod tcp_client;
pub mod udp;
pub mod webapp;

pub use stats::{ClientStats, StatsHandle};
pub use udp::{EchoServer, Pacing, UdpClient};
