//! A memcached-like key/value server and client (Figs. 9 and 14).
//!
//! Text protocol subset:
//!
//! * `get <key>\r\n` → `VALUE <key> <len>\r\n<data>\r\nEND\r\n`, or
//!   `END\r\n` on miss,
//! * `set <key> <len>\r\n<data>\r\n` → `STORED\r\n`.

use oasis_core::instance::{TcpApp, TcpResponse};
use oasis_net::addr::Ipv4Addr;
use oasis_sim::detmap::DetMap;
use oasis_sim::time::{SimDuration, SimTime};

use crate::tcp_client::{RequestBuilder, ResponseFramer};

/// The standard memcached port.
pub const MEMCACHED_PORT: u16 = 11211;

/// The server application.
pub struct MemcachedServer {
    /// Per-operation service time (hash lookup + stack).
    pub service: SimDuration,
    store: DetMap<Vec<u8>, Vec<u8>>,
    /// Per-peer partial command buffers.
    partial: DetMap<(u32, u16), Vec<u8>>,
    /// Operations served.
    pub ops: u64,
}

impl MemcachedServer {
    /// Empty cache with the given per-op service time.
    pub fn new(service: SimDuration) -> Self {
        MemcachedServer {
            service,
            store: DetMap::default(),
            partial: DetMap::default(),
            ops: 0,
        }
    }

    /// Preload a key (experiments issue GETs against warm data).
    pub fn preload(&mut self, key: &[u8], value: &[u8]) {
        self.store.insert(key.to_vec(), value.to_vec());
    }

    fn serve_one(&mut self, buf: &mut Vec<u8>) -> Option<Vec<u8>> {
        let line_end = buf.windows(2).position(|w| w == b"\r\n")?;
        let line = buf[..line_end].to_vec();
        let parts: Vec<&[u8]> = line.split(|&b| b == b' ').collect();
        match parts.as_slice() {
            [b"get", key] => {
                buf.drain(..line_end + 2);
                self.ops += 1;
                match self.store.get(*key) {
                    Some(v) => {
                        let mut resp = Vec::with_capacity(v.len() + 48);
                        resp.extend_from_slice(b"VALUE ");
                        resp.extend_from_slice(key);
                        resp.extend_from_slice(format!(" {}\r\n", v.len()).as_bytes());
                        resp.extend_from_slice(v);
                        resp.extend_from_slice(b"\r\nEND\r\n");
                        Some(resp)
                    }
                    None => Some(b"END\r\n".to_vec()),
                }
            }
            [b"set", key, len] => {
                let len: usize = std::str::from_utf8(len).ok()?.parse().ok()?;
                let total = line_end + 2 + len + 2;
                if buf.len() < total {
                    return None; // wait for the data block
                }
                let data = buf[line_end + 2..line_end + 2 + len].to_vec();
                self.store.insert(key.to_vec(), data);
                buf.drain(..total);
                self.ops += 1;
                Some(b"STORED\r\n".to_vec())
            }
            _ => {
                // Unknown command: drop the line.
                buf.drain(..line_end + 2);
                Some(b"ERROR\r\n".to_vec())
            }
        }
    }
}

impl TcpApp for MemcachedServer {
    fn on_data(&mut self, _now: SimTime, peer: (Ipv4Addr, u16), data: &[u8]) -> Vec<TcpResponse> {
        let key = (peer.0.to_u32(), peer.1);
        let mut buf = self.partial.remove(&key).unwrap_or_default();
        buf.extend_from_slice(data);
        let mut out = Vec::new();
        while let Some(resp) = self.serve_one(&mut buf) {
            out.push(TcpResponse {
                delay: self.service,
                bytes: resp,
            });
        }
        if !buf.is_empty() {
            self.partial.insert(key, buf);
        }
        out
    }
}

/// Builds `get key<seq % keys>` requests.
pub struct GetRequests {
    /// Number of distinct keys cycled through.
    pub keys: u64,
}

impl RequestBuilder for GetRequests {
    fn build(&mut self, seq: u64) -> Vec<u8> {
        format!("get key{}\r\n", seq % self.keys).into_bytes()
    }
}

/// Frames memcached responses (`...END\r\n`, `STORED\r\n`, `ERROR\r\n`).
#[derive(Default)]
pub struct MemcachedFramer;

impl ResponseFramer for MemcachedFramer {
    fn complete(&mut self, buf: &[u8]) -> Option<usize> {
        for prefix in [&b"STORED\r\n"[..], &b"ERROR\r\n"[..], &b"END\r\n"[..]] {
            if buf.starts_with(prefix) {
                return Some(prefix.len());
            }
        }
        if buf.starts_with(b"VALUE ") {
            let line_end = buf.windows(2).position(|w| w == b"\r\n")?;
            let line = std::str::from_utf8(&buf[..line_end]).ok()?;
            let len: usize = line.rsplit(' ').next()?.parse().ok()?;
            let total = line_end + 2 + len + 2 + 5; // data + \r\n + END\r\n
            if buf.len() >= total && &buf[total - 5..total] == b"END\r\n" {
                return Some(total);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MemcachedServer {
        let mut s = MemcachedServer::new(SimDuration::from_micros(2));
        s.preload(b"key0", b"hello-world");
        s
    }

    fn peer() -> (Ipv4Addr, u16) {
        (Ipv4Addr::client(1), 40000)
    }

    #[test]
    fn get_hit_and_miss() {
        let mut s = server();
        let out = s.on_data(SimTime::ZERO, peer(), b"get key0\r\n");
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].bytes,
            b"VALUE key0 11\r\nhello-world\r\nEND\r\n".to_vec()
        );
        let out = s.on_data(SimTime::ZERO, peer(), b"get nope\r\n");
        assert_eq!(out[0].bytes, b"END\r\n".to_vec());
        assert_eq!(s.ops, 2);
    }

    #[test]
    fn set_then_get() {
        let mut s = MemcachedServer::new(SimDuration::ZERO);
        let out = s.on_data(SimTime::ZERO, peer(), b"set k 3\r\nabc\r\n");
        assert_eq!(out[0].bytes, b"STORED\r\n".to_vec());
        let out = s.on_data(SimTime::ZERO, peer(), b"get k\r\n");
        assert_eq!(out[0].bytes, b"VALUE k 3\r\nabc\r\nEND\r\n".to_vec());
    }

    #[test]
    fn fragmented_commands_reassembled() {
        let mut s = server();
        assert!(s.on_data(SimTime::ZERO, peer(), b"get ke").is_empty());
        let out = s.on_data(SimTime::ZERO, peer(), b"y0\r\nget key0\r\n");
        assert_eq!(out.len(), 2, "both pipelined commands served");
    }

    #[test]
    fn set_waits_for_data_block() {
        let mut s = MemcachedServer::new(SimDuration::ZERO);
        assert!(s
            .on_data(SimTime::ZERO, peer(), b"set k 5\r\nab")
            .is_empty());
        let out = s.on_data(SimTime::ZERO, peer(), b"cde\r\n");
        assert_eq!(out[0].bytes, b"STORED\r\n".to_vec());
    }

    #[test]
    fn framer_parses_value_and_terminals() {
        let mut f = MemcachedFramer;
        let resp = b"VALUE key0 11\r\nhello-world\r\nEND\r\n";
        assert_eq!(f.complete(resp), Some(resp.len()));
        assert_eq!(f.complete(b"END\r\n extra"), Some(5));
        assert_eq!(f.complete(b"STORED\r\n"), Some(8));
        assert_eq!(f.complete(b"VALUE key0 11\r\nhello"), None);
        assert_eq!(f.complete(b"VAL"), None);
    }

    #[test]
    fn per_peer_buffers_are_isolated() {
        let mut s = server();
        let p2 = (Ipv4Addr::client(2), 40001);
        assert!(s.on_data(SimTime::ZERO, peer(), b"get ke").is_empty());
        // Another peer's complete command is unaffected by peer 1's
        // fragment.
        let out = s.on_data(SimTime::ZERO, p2, b"get key0\r\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn request_builder_cycles_keys() {
        let mut b = GetRequests { keys: 2 };
        assert_eq!(b.build(0), b"get key0\r\n".to_vec());
        assert_eq!(b.build(3), b"get key1\r\n".to_vec());
    }
}
