//! Client-side measurement recorders.
//!
//! Endpoints live inside the pod as boxed trait objects; experiments need
//! their measurements afterwards. Clients therefore write into a
//! [`ClientStats`] behind a shared [`StatsHandle`] the experiment keeps.
//!
//! The handle is an `Arc` over a [`StatsCell`] so pods can migrate between
//! worker threads under the sharded runner (`oasis_sim::shard`). A pod is
//! still single-threaded *at any instant* — only one shard worker owns it
//! per window — so the inner lock is never contended; it exists to satisfy
//! `Send`/`Sync`, not to synchronize. `StatsCell` keeps the `RefCell`
//! vocabulary (`borrow`/`borrow_mut`) so recording sites read the same as
//! they always have.

use std::sync::{Arc, Mutex, MutexGuard};

use oasis_sim::hist::Histogram;
use oasis_sim::series::BinnedSeries;
use oasis_sim::time::{SimDuration, SimTime};

/// Shared handle to a client's measurements.
pub type StatsHandle = Arc<StatsCell>;

/// Interior-mutable cell holding a client's stats; see the module docs for
/// why this is a (never-contended) lock rather than a `RefCell`.
#[derive(Debug, Default)]
pub struct StatsCell(Mutex<ClientStats>);

impl StatsCell {
    /// Wrap freshly-zeroed stats.
    pub fn new(stats: ClientStats) -> Self {
        StatsCell(Mutex::new(stats))
    }

    /// Shared read access (uncontended by construction). Poisoning
    /// requires a panicked worker, which already aborts the run.
    pub fn borrow(&self) -> MutexGuard<'_, ClientStats> {
        self.0.lock().expect("stats cell poisoned")
    }

    /// Exclusive write access (uncontended by construction).
    pub fn borrow_mut(&self) -> MutexGuard<'_, ClientStats> {
        self.0.lock().expect("stats cell poisoned")
    }
}

/// Everything a load-generating client records.
#[derive(Debug)]
pub struct ClientStats {
    /// Request RTT histogram (nanoseconds).
    pub rtt: Histogram,
    /// Per-request `(sent_at, completed_at)`; `None` while outstanding.
    pub requests: Vec<(SimTime, Option<SimTime>)>,
    /// Requests sent.
    pub sent: u64,
    /// Responses received.
    pub received: u64,
    /// Only record samples at or after this time (warm-up exclusion).
    pub record_from: SimTime,
}

impl Default for ClientStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientStats {
    /// Fresh, recording from time zero.
    pub fn new() -> Self {
        ClientStats {
            rtt: Histogram::new(),
            requests: Vec::new(),
            sent: 0,
            received: 0,
            record_from: SimTime::ZERO,
        }
    }

    /// Create a shareable handle.
    pub fn handle() -> StatsHandle {
        Arc::new(StatsCell::new(ClientStats::new()))
    }

    /// Register a request; returns its sequence number.
    pub fn on_send(&mut self, now: SimTime) -> u64 {
        self.sent += 1;
        self.requests.push((now, None));
        (self.requests.len() - 1) as u64
    }

    /// Register the response to request `seq`.
    pub fn on_response(&mut self, seq: u64, now: SimTime) {
        self.received += 1;
        let (sent, done) = &mut self.requests[seq as usize];
        if done.is_none() {
            *done = Some(now);
            if *sent >= self.record_from {
                self.rtt.record((now - *sent).as_nanos());
            }
        }
    }

    /// Requests sent but never answered (packet loss / black hole).
    pub fn lost(&self) -> u64 {
        self.requests.iter().filter(|(_, d)| d.is_none()).count() as u64
    }

    /// Loss timeline: count of never-answered requests per `bin` of *send*
    /// time — the Fig. 13 plot.
    pub fn loss_series(&self, bin: SimDuration, until: SimTime) -> BinnedSeries {
        let mut s = BinnedSeries::new(bin);
        for &(sent, done) in &self.requests {
            if done.is_none() {
                s.add(sent, 1.0);
            }
        }
        s.extend_to(until);
        s
    }

    /// Latency percentile over completions whose *send* time falls in
    /// `[from, to)` — used for the Fig. 14 windowed P99 timeline.
    pub fn window_percentile(&self, from: SimTime, to: SimTime, p: f64) -> Option<u64> {
        let mut h = Histogram::new();
        for &(sent, done) in &self.requests {
            if sent >= from && sent < to {
                if let Some(done) = done {
                    h.record((done - sent).as_nanos());
                }
            }
        }
        if h.is_empty() {
            None
        } else {
            Some(h.percentile(p))
        }
    }

    /// Timestamps (send time) of the lost requests, sorted.
    pub fn loss_times(&self) -> Vec<SimTime> {
        let mut v: Vec<SimTime> = self
            .requests
            .iter()
            .filter(|(_, d)| d.is_none())
            .map(|&(s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn send_response_roundtrip() {
        let mut s = ClientStats::new();
        let a = s.on_send(t(0));
        let b = s.on_send(t(10));
        s.on_response(a, t(5));
        assert_eq!(s.rtt.count(), 1);
        assert_eq!(s.rtt.percentile(50.0), 5_000);
        assert_eq!(s.lost(), 1);
        s.on_response(b, t(30));
        assert_eq!(s.lost(), 0);
        // Duplicate responses ignored.
        s.on_response(b, t(40));
        assert_eq!(s.received, 3); // counted as received ...
        assert_eq!(s.rtt.count(), 2, "... but not double-recorded");
    }

    #[test]
    fn warmup_exclusion() {
        let mut s = ClientStats::new();
        s.record_from = t(100);
        let a = s.on_send(t(50));
        let b = s.on_send(t(150));
        s.on_response(a, t(60));
        s.on_response(b, t(160));
        assert_eq!(s.rtt.count(), 1);
    }

    #[test]
    fn loss_series_bins_by_send_time() {
        let mut s = ClientStats::new();
        let a = s.on_send(t(5));
        let _lost1 = s.on_send(t(15));
        let _lost2 = s.on_send(t(18));
        s.on_response(a, t(9));
        let series = s.loss_series(SimDuration::from_micros(10), t(30));
        assert_eq!(series.bins(), &[0.0, 2.0, 0.0, 0.0]);
        assert_eq!(s.loss_times(), vec![t(15), t(18)]);
    }

    #[test]
    fn window_percentile_selects_by_send_time() {
        let mut s = ClientStats::new();
        let a = s.on_send(t(0));
        s.on_response(a, t(10)); // 10us rtt in window [0,100)
        let b = s.on_send(t(200));
        s.on_response(b, t(300)); // 100us rtt in window [200,300)
        assert_eq!(s.window_percentile(t(0), t(100), 99.0), Some(10_000));
        let w2 = s.window_percentile(t(150), t(250), 99.0).unwrap();
        assert!(w2 > 90_000);
        assert_eq!(s.window_percentile(t(400), t(500), 99.0), None);
    }
}
