//! Simulated pooled compute-offload accelerators.
//!
//! Oasis's thesis is that *any* PCIe device class fits behind the same
//! frontend/backend message-channel split (§3.1); this crate is the third
//! device model proving it, next to NICs (`oasis-net`) and SSDs
//! (`oasis-storage`). An accelerator accepts 64 B job descriptors through a
//! bounded submission queue, DMAs the input straight out of CXL pool memory
//! (no CPU-cache involvement, §3.2.1), runs a fixed-function kernel
//! (checksum or byte-scale), DMAs the result back, and posts a completion.
//! Latency is a setup cost plus a bandwidth term, with internal channel
//! parallelism — the same shape as the SSD model, so pooling economics
//! carry over.
//!
//! Fault injection mirrors the SSD's: a timeout window silently swallows
//! jobs (exercising the engine's retry path) and a compute-error window
//! completes jobs with an error status and poisoned output.

pub mod command;
pub mod device;

pub use command::{fnv1a, AccelCommand, AccelCompletion, AccelOp, AccelStatus};
pub use device::{AccelConfig, AccelDevice};
