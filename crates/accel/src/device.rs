//! The accelerator device model.
//!
//! Jobs are submitted to a bounded submission queue; the device DMAs the
//! input out of CXL pool memory, runs the fixed-function kernel, DMAs the
//! result back, and posts a completion the backend driver polls. Latency is
//! a per-job setup cost plus a bandwidth term, with internal execution-lane
//! parallelism so queue depth buys throughput — the same latency shape as
//! the SSD model, deliberately, so the pooling economics of §4 transfer.

use std::collections::VecDeque;

use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_sim::time::{SimDuration, SimTime};

use crate::command::{fnv1a, AccelCommand, AccelCompletion, AccelOp, AccelStatus};

/// Accelerator timing and shape configuration.
#[derive(Clone, Debug)]
pub struct AccelConfig {
    /// Per-job setup latency (descriptor fetch + kernel launch).
    pub setup_ns: u64,
    /// Sustained compute/DMA bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Internal execution-lane parallelism (concurrent jobs).
    pub channels: usize,
    /// Submission queue depth.
    pub sq_depth: usize,
    /// Largest input a single job may name, in bytes.
    pub max_job_bytes: u32,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            setup_ns: 20_000,
            bandwidth: 8e9,
            channels: 4,
            sq_depth: 128,
            max_job_bytes: 1 << 20,
        }
    }
}

/// Device counters.
#[derive(Clone, Debug, Default)]
pub struct AccelStats {
    /// Jobs completed successfully.
    pub jobs: u64,
    /// Input bytes processed.
    pub bytes_in: u64,
    /// Jobs failed (any status other than success).
    pub errors: u64,
    /// Jobs rejected because the submission queue was full.
    pub sq_rejected: u64,
    /// Jobs silently swallowed by an injected timeout window.
    pub swallowed: u64,
    /// Jobs completed with an injected compute error.
    pub compute_errors: u64,
    /// Retire time of the latest job to finish on any lane. Benchmarks use
    /// this as the exact end of a batch's device-side span, free of driver
    /// polling-cadence quantization.
    pub last_done_at: SimTime,
}

struct InFlight {
    completion: AccelCompletion,
    done_at: SimTime,
}

/// The simulated pooled accelerator.
pub struct AccelDevice {
    cfg: AccelConfig,
    /// Submitted jobs with their arrival times. Jobs start retroactively at
    /// `max(lane_free, arrival)`, so lanes never idle between driver polls
    /// while work is queued.
    sq: VecDeque<(SimTime, AccelCommand)>,
    in_flight: Vec<InFlight>,
    cq: VecDeque<InFlight>,
    channel_free: Vec<SimTime>,
    failed: bool,
    /// Injected fault window: jobs started before this time are silently
    /// swallowed (never complete), exercising the frontend's retry path.
    fault_timeout_until: SimTime,
    /// Injected fault window: jobs started before this time complete with
    /// [`AccelStatus::ComputeError`] and no output DMA.
    fault_compute_error_until: SimTime,
    /// Device counters.
    pub stats: AccelStats,
}

impl AccelDevice {
    /// A healthy accelerator.
    pub fn new(cfg: AccelConfig) -> Self {
        let channels = cfg.channels;
        AccelDevice {
            cfg,
            sq: VecDeque::new(),
            in_flight: Vec::new(),
            cq: VecDeque::new(),
            channel_free: vec![SimTime::ZERO; channels],
            failed: false,
            fault_timeout_until: SimTime::ZERO,
            fault_compute_error_until: SimTime::ZERO,
            stats: AccelStats::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Mark the device failed (or repaired). A failed accelerator completes
    /// every job with [`AccelStatus::DeviceFailure`]; like a failed SSD, the
    /// error propagates to the guest (§3.4).
    pub fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    /// Has the device been failed?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Open an injected timeout window until `until`: jobs *started* while
    /// it is open are accepted and then silently swallowed — no completion
    /// is ever posted, so the submitter's retry timeout must fire.
    pub fn inject_timeout_until(&mut self, until: SimTime) {
        self.fault_timeout_until = until;
    }

    /// Open an injected compute-error window until `until`: jobs started
    /// while it is open complete with [`AccelStatus::ComputeError`].
    pub fn inject_compute_errors_until(&mut self, until: SimTime) {
        self.fault_compute_error_until = until;
    }

    /// Is an injected fault window currently open at `now`?
    pub fn fault_window_open(&self, now: SimTime) -> bool {
        now < self.fault_timeout_until || now < self.fault_compute_error_until
    }

    /// Submit a job arriving at `now`. Returns `false` if the submission
    /// queue is full.
    pub fn submit(&mut self, now: SimTime, cmd: AccelCommand) -> bool {
        if self.sq.len() >= self.cfg.sq_depth {
            self.stats.sq_rejected += 1;
            return false;
        }
        self.sq.push_back((now, cmd));
        true
    }

    /// Occupancy of the submission queue.
    pub fn sq_len(&self) -> usize {
        self.sq.len()
    }

    fn validate(&self, cmd: &AccelCommand) -> AccelStatus {
        if self.failed {
            return AccelStatus::DeviceFailure;
        }
        if cmd.input_len == 0 {
            return AccelStatus::InvalidField;
        }
        if cmd.input_len > self.cfg.max_job_bytes {
            return AccelStatus::LenOutOfRange;
        }
        AccelStatus::Success
    }

    /// Execute queued jobs and retire finished ones up to `now`.
    ///
    /// Jobs start *retroactively*: a job that arrived at `arrival` starts
    /// on the earliest lane at `max(lane_free, arrival)`, not at the poll
    /// instant. Without this, every lane freed between two driver polls
    /// sat idle until the next poll, so past ~4 hosts the polling cadence
    /// — not lane parallelism — bounded throughput and aggregate
    /// goodput *fell* as hosts were added.
    pub fn process(&mut self, now: SimTime, dma: &mut dyn DmaMemory) {
        // Start jobs in arrival order on free execution lanes.
        while let Some(&(arrival, _)) = self.sq.front() {
            // Earliest-free lane; ties resolve to the lowest index, same
            // as the old free-lane filter, keeping the timeline
            // deterministic.
            let Some(ch) = (0..self.channel_free.len()).min_by_key(|&c| self.channel_free[c])
            else {
                break;
            };
            let start = self.channel_free[ch].max(arrival);
            if start > now {
                break;
            }
            let Some((_, cmd)) = self.sq.pop_front() else {
                break;
            };
            if start < self.fault_timeout_until {
                // Injected timeout: the job vanishes inside the device. No
                // completion will ever be posted for this cid.
                self.stats.swallowed += 1;
                continue;
            }
            let mut status = self.validate(&cmd);
            if status.is_ok() && start < self.fault_compute_error_until {
                status = AccelStatus::ComputeError;
                self.stats.compute_errors += 1;
            }
            let bytes = cmd.transfer_bytes();
            let service = if status.is_ok() {
                self.cfg.setup_ns + (bytes as f64 / self.cfg.bandwidth * 1e9) as u64
            } else {
                1_000 // errors complete fast
            };
            let dma_ns = dma.dma_latency_ns(MemRef::Pool(cmd.input_ptr));
            let done_at = start + SimDuration::from_nanos(service + dma_ns);
            self.channel_free[ch] = done_at;
            self.stats.last_done_at = self.stats.last_done_at.max(done_at);

            let mut result = 0u64;
            if status.is_ok() {
                let mut input = vec![0u8; bytes as usize];
                dma.dma_read(start, MemRef::Pool(cmd.input_ptr), &mut input);
                match cmd.op {
                    AccelOp::Checksum => {
                        result = fnv1a(&input);
                        dma.dma_write(start, MemRef::Pool(cmd.output_ptr), &result.to_le_bytes());
                    }
                    AccelOp::Scale => {
                        let k = cmd.arg as u8;
                        for b in input.iter_mut() {
                            *b = b.wrapping_mul(k);
                        }
                        dma.dma_write(start, MemRef::Pool(cmd.output_ptr), &input);
                    }
                }
                self.stats.jobs += 1;
                self.stats.bytes_in += bytes;
            } else {
                self.stats.errors += 1;
            }
            self.in_flight.push(InFlight {
                completion: AccelCompletion {
                    cid: cmd.cid,
                    status,
                    result,
                    frontend: cmd.frontend,
                },
                done_at,
            });
        }

        // Retire to the completion queue in completion-time order.
        self.in_flight.sort_by_key(|f| f.done_at);
        while let Some(f) = self.in_flight.first() {
            if f.done_at > now {
                break;
            }
            let f = self.in_flight.remove(0);
            self.cq.push_back(f);
        }
    }

    /// Drain completions that finished by `now`.
    pub fn poll_completions(&mut self, now: SimTime) -> Vec<AccelCompletion> {
        let mut out = Vec::new();
        while self.cq.front().is_some_and(|f| f.done_at <= now) {
            if let Some(f) = self.cq.pop_front() {
                out.push(f.completion);
            }
        }
        out
    }

    /// Jobs started but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatMem {
        mem: Vec<u8>,
    }

    impl DmaMemory for FlatMem {
        fn dma_read(&mut self, _now: SimTime, mem: MemRef, out: &mut [u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            out.copy_from_slice(&self.mem[a as usize..a as usize + out.len()]);
        }
        fn dma_write(&mut self, _now: SimTime, mem: MemRef, data: &[u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            self.mem[a as usize..a as usize + data.len()].copy_from_slice(data);
        }
        fn dma_latency_ns(&self, _mem: MemRef) -> u64 {
            850
        }
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn job(cid: u16, op: AccelOp, arg: u32, inp: u64, out: u64, len: u32) -> AccelCommand {
        AccelCommand {
            op,
            cid,
            arg,
            input_ptr: inp,
            output_ptr: out,
            input_len: len,
            frontend: 0,
        }
    }

    #[test]
    fn checksum_matches_host_fnv() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        mem.mem[..5].copy_from_slice(b"oasis");
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 4096, 5));
        dev.process(t(0), &mut mem);
        dev.process(t(1_000_000), &mut mem);
        let comps = dev.poll_completions(t(1_000_000));
        assert_eq!(comps.len(), 1);
        assert!(comps[0].status.is_ok());
        assert_eq!(comps[0].result, fnv1a(b"oasis"));
        // Digest is also DMA'd to the output buffer.
        assert_eq!(&mem.mem[4096..4104], &fnv1a(b"oasis").to_le_bytes());
    }

    #[test]
    fn scale_transforms_bytes() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        mem.mem[..4].copy_from_slice(&[1, 2, 3, 100]);
        dev.submit(t(0), job(1, AccelOp::Scale, 3, 0, 4096, 4));
        dev.process(t(0), &mut mem);
        dev.process(t(1_000_000), &mut mem);
        assert!(dev.poll_completions(t(1_000_000))[0].status.is_ok());
        assert_eq!(&mem.mem[4096..4100], &[3, 6, 9, 44]); // 100*3 = 300 % 256
    }

    #[test]
    fn latency_is_setup_plus_bandwidth() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem {
            mem: vec![0; 1 << 17],
        };
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 65536, 65536));
        dev.process(t(0), &mut mem);
        // 20us setup + 64KiB/8GBps ~ 8.2us + 850ns dma ~ 29us.
        assert!(dev.poll_completions(t(25_000)).is_empty());
        dev.process(t(35_000), &mut mem);
        assert_eq!(dev.poll_completions(t(35_000)).len(), 1);
    }

    #[test]
    fn zero_length_and_oversize_jobs_fail() {
        let cfg = AccelConfig {
            max_job_bytes: 4096,
            ..Default::default()
        };
        let mut dev = AccelDevice::new(cfg);
        let mut mem = FlatMem {
            mem: vec![0; 16384],
        };
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 64, 0));
        dev.submit(t(0), job(2, AccelOp::Checksum, 0, 0, 64, 8192));
        dev.process(t(0), &mut mem);
        dev.process(t(1_000_000), &mut mem);
        let comps = dev.poll_completions(t(1_000_000));
        assert_eq!(comps.len(), 2);
        let zero = comps.iter().find(|c| c.cid == 1).unwrap();
        let big = comps.iter().find(|c| c.cid == 2).unwrap();
        assert_eq!(zero.status, AccelStatus::InvalidField);
        assert_eq!(big.status, AccelStatus::LenOutOfRange);
        assert_eq!(dev.stats.errors, 2);
    }

    #[test]
    fn failed_device_errors_every_job() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        dev.set_failed(true);
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(0), &mut mem);
        dev.process(t(1_000_000), &mut mem);
        assert_eq!(
            dev.poll_completions(t(1_000_000))[0].status,
            AccelStatus::DeviceFailure
        );
        // Repair and retry.
        dev.set_failed(false);
        dev.submit(t(1_000_000), job(2, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(1_000_000), &mut mem);
        dev.process(t(2_000_000), &mut mem);
        assert!(dev.poll_completions(t(2_000_000))[0].status.is_ok());
    }

    #[test]
    fn lane_parallelism_overlaps_jobs() {
        let cfg = AccelConfig {
            channels: 4,
            ..Default::default()
        };
        let mut dev = AccelDevice::new(cfg);
        let mut mem = FlatMem {
            mem: vec![0; 64 * 1024],
        };
        for i in 0..4 {
            dev.submit(
                t(0),
                job(i, AccelOp::Checksum, 0, (i as u64) * 4096, 60_000, 4096),
            );
        }
        dev.process(t(0), &mut mem);
        // All four run concurrently: all complete by ~22us, not 4x that.
        dev.process(t(30_000), &mut mem);
        assert_eq!(dev.poll_completions(t(30_000)).len(), 4);
    }

    #[test]
    fn sq_depth_enforced() {
        let cfg = AccelConfig {
            sq_depth: 2,
            ..Default::default()
        };
        let mut dev = AccelDevice::new(cfg);
        assert!(dev.submit(t(0), job(0, AccelOp::Checksum, 0, 0, 64, 64)));
        assert!(dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 64, 64)));
        assert!(!dev.submit(t(0), job(2, AccelOp::Checksum, 0, 0, 64, 64)));
        assert_eq!(dev.stats.sq_rejected, 1);
    }

    #[test]
    fn timeout_window_swallows_jobs() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        dev.inject_timeout_until(t(1_000_000));
        assert!(dev.fault_window_open(t(0)));
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(0), &mut mem);
        assert_eq!(dev.in_flight(), 0, "swallowed, never started");
        dev.process(t(10_000_000), &mut mem);
        assert!(dev.poll_completions(t(10_000_000)).is_empty());
        assert_eq!(dev.stats.swallowed, 1);
        // Past the window (a resubmission) the job completes normally.
        assert!(!dev.fault_window_open(t(2_000_000)));
        dev.submit(t(2_000_000), job(1, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(2_000_000), &mut mem);
        dev.process(t(3_000_000), &mut mem);
        let comps = dev.poll_completions(t(3_000_000));
        assert_eq!(comps.len(), 1);
        assert!(comps[0].status.is_ok());
    }

    #[test]
    fn compute_error_window_is_transient() {
        let mut dev = AccelDevice::new(AccelConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        dev.inject_compute_errors_until(t(1_000_000));
        dev.submit(t(0), job(1, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(0), &mut mem);
        dev.process(t(10_000_000), &mut mem);
        let comps = dev.poll_completions(t(10_000_000));
        assert_eq!(comps[0].status, AccelStatus::ComputeError);
        assert_eq!(dev.stats.compute_errors, 1);
        // No output DMA happened.
        assert!(mem.mem[4096..4104].iter().all(|&b| b == 0));
        // Retry after the window succeeds.
        dev.submit(t(10_000_000), job(2, AccelOp::Checksum, 0, 0, 4096, 64));
        dev.process(t(10_000_000), &mut mem);
        dev.process(t(20_000_000), &mut mem);
        assert!(dev.poll_completions(t(20_000_000))[0].status.is_ok());
    }
}
