//! 64 B accelerator job-descriptor and completion codecs.
//!
//! The accel engine reuses the storage engine's wire discipline: fixed 64 B
//! descriptors through Oasis message channels, with the final byte's MSB
//! left free for the channel epoch bit. A job names its input and output
//! buffers by CXL pool address — the backend never touches the payload, the
//! device DMAs it directly (§3.2.1).
//!
//! Layout (little-endian):
//!
//! ```text
//! [0]      opcode          [1]      flags (reserved)
//! [2..4)   cid             [4..8)   op argument (scale factor etc.)
//! [8..16)  input pointer (CXL pool address)
//! [16..24) output pointer (CXL pool address)
//! [24..28) input length in bytes
//! [28..32) frontend id     [32..63) reserved
//! [63]     channel epoch/flags byte (must stay clear here)
//! ```

/// Offload operation subset used by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccelOp {
    /// FNV-1a checksum over the input; 8 B digest written to the output
    /// buffer and echoed in the completion.
    Checksum,
    /// Byte-wise wrapping multiply of the input by `arg`, written to the
    /// output buffer.
    Scale,
}

impl AccelOp {
    fn to_byte(self) -> u8 {
        match self {
            AccelOp::Checksum => 0x01,
            AccelOp::Scale => 0x02,
        }
    }

    fn from_byte(b: u8) -> Option<AccelOp> {
        match b {
            0x01 => Some(AccelOp::Checksum),
            0x02 => Some(AccelOp::Scale),
            _ => None,
        }
    }
}

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccelStatus {
    /// Job completed successfully.
    Success,
    /// Invalid field (bad opcode or zero-length job).
    InvalidField,
    /// Input length exceeds the device's job-size limit.
    LenOutOfRange,
    /// Transient compute fault (parity trip in an injected fault window;
    /// the frontend retries).
    ComputeError,
    /// The device has failed; propagated to the guest like a failed SSD
    /// (§3.4 — no transparent failover for stateful devices).
    DeviceFailure,
}

impl AccelStatus {
    /// Status byte as it appears in an encoded completion (also used by
    /// the snapshot layer to serialize completion caches).
    pub fn to_byte(self) -> u8 {
        match self {
            AccelStatus::Success => 0x00,
            AccelStatus::InvalidField => 0x02,
            AccelStatus::LenOutOfRange => 0x80,
            AccelStatus::ComputeError => 0x81,
            AccelStatus::DeviceFailure => 0x06,
        }
    }

    /// Inverse of [`AccelStatus::to_byte`]; unknown bytes degrade to
    /// [`AccelStatus::DeviceFailure`].
    pub fn from_byte(b: u8) -> AccelStatus {
        match b {
            0x00 => AccelStatus::Success,
            0x02 => AccelStatus::InvalidField,
            0x80 => AccelStatus::LenOutOfRange,
            0x81 => AccelStatus::ComputeError,
            _ => AccelStatus::DeviceFailure,
        }
    }

    /// Did the job succeed?
    pub fn is_ok(self) -> bool {
        self == AccelStatus::Success
    }
}

/// A 64 B accelerator job descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccelCommand {
    /// Operation.
    pub op: AccelOp,
    /// Command id, echoed in the completion.
    pub cid: u16,
    /// Operation argument (scale factor for [`AccelOp::Scale`]).
    pub arg: u32,
    /// Input buffer address in CXL pool memory.
    pub input_ptr: u64,
    /// Output buffer address in CXL pool memory.
    pub output_ptr: u64,
    /// Input length in bytes.
    pub input_len: u32,
    /// Originating frontend driver (Oasis routing field).
    pub frontend: u32,
}

/// Fixed-width little-endian field at `off` in a 64 B message; bounds are
/// checked at compile time through the const generic, so no fallible
/// `try_into` is needed on the decode path.
#[inline]
fn sub<const N: usize>(b: &[u8; 64], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&b[off..off + N]);
    out
}

impl AccelCommand {
    /// Encode into a 64 B message (epoch byte left clear).
    pub fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0] = self.op.to_byte();
        b[2..4].copy_from_slice(&self.cid.to_le_bytes());
        b[4..8].copy_from_slice(&self.arg.to_le_bytes());
        b[8..16].copy_from_slice(&self.input_ptr.to_le_bytes());
        b[16..24].copy_from_slice(&self.output_ptr.to_le_bytes());
        b[24..28].copy_from_slice(&self.input_len.to_le_bytes());
        b[28..32].copy_from_slice(&self.frontend.to_le_bytes());
        b
    }

    /// Decode from a 64 B message. `None` if the opcode is unknown.
    pub fn decode(b: &[u8; 64]) -> Option<AccelCommand> {
        Some(AccelCommand {
            op: AccelOp::from_byte(b[0])?,
            cid: u16::from_le_bytes(sub(b, 2)),
            arg: u32::from_le_bytes(sub(b, 4)),
            input_ptr: u64::from_le_bytes(sub(b, 8)),
            output_ptr: u64::from_le_bytes(sub(b, 16)),
            input_len: u32::from_le_bytes(sub(b, 24)),
            frontend: u32::from_le_bytes(sub(b, 28)),
        })
    }

    /// Bytes the device moves for this job (input DMA'd in, result out).
    pub fn transfer_bytes(&self) -> u64 {
        self.input_len as u64
    }
}

/// A completion entry, also encodable into a 64 B channel message
/// (completions travel backend → frontend over the reverse channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccelCompletion {
    /// Command id being completed.
    pub cid: u16,
    /// Status.
    pub status: AccelStatus,
    /// Operation result (checksum digest; zero for scale jobs).
    pub result: u64,
    /// Originating frontend driver.
    pub frontend: u32,
}

impl AccelCompletion {
    /// Encode into a 64 B message (epoch byte left clear).
    pub fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0] = 0xfd; // distinguishes completions from job descriptors
        b[1] = self.status.to_byte();
        b[2..4].copy_from_slice(&self.cid.to_le_bytes());
        b[8..16].copy_from_slice(&self.result.to_le_bytes());
        b[28..32].copy_from_slice(&self.frontend.to_le_bytes());
        b
    }

    /// Decode from a 64 B message. `None` if it is not a completion.
    pub fn decode(b: &[u8; 64]) -> Option<AccelCompletion> {
        if b[0] != 0xfd {
            return None;
        }
        Some(AccelCompletion {
            cid: u16::from_le_bytes(sub(b, 2)),
            status: AccelStatus::from_byte(b[1]),
            result: u64::from_le_bytes(sub(b, 8)),
            frontend: u32::from_le_bytes(sub(b, 28)),
        })
    }
}

/// FNV-1a over a byte slice — the checksum kernel the device implements.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let cmd = AccelCommand {
            op: AccelOp::Scale,
            cid: 0xBEEF,
            arg: 3,
            input_ptr: 0x1234_5678_9abc,
            output_ptr: 0xdef0_0000,
            input_len: 4096,
            frontend: 2,
        };
        let enc = cmd.encode();
        assert_eq!(enc[63] & 0x80, 0, "epoch byte clear");
        assert_eq!(AccelCommand::decode(&enc), Some(cmd));
    }

    #[test]
    fn completion_roundtrip_and_discrimination() {
        let c = AccelCompletion {
            cid: 7,
            status: AccelStatus::LenOutOfRange,
            result: 0xfeed_beef,
            frontend: 5,
        };
        let enc = c.encode();
        assert_eq!(AccelCompletion::decode(&enc), Some(c));
        // A completion is not decodable as a command and vice versa.
        assert!(AccelCommand::decode(&enc).is_none());
        let cmd = AccelCommand {
            op: AccelOp::Checksum,
            cid: 1,
            arg: 0,
            input_ptr: 0,
            output_ptr: 64,
            input_len: 64,
            frontend: 0,
        };
        assert!(AccelCompletion::decode(&cmd.encode()).is_none());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 64];
        b[0] = 0x77;
        assert!(AccelCommand::decode(&b).is_none());
    }

    #[test]
    fn status_byte_roundtrip() {
        for s in [
            AccelStatus::Success,
            AccelStatus::InvalidField,
            AccelStatus::LenOutOfRange,
            AccelStatus::ComputeError,
            AccelStatus::DeviceFailure,
        ] {
            assert_eq!(AccelStatus::from_byte(s.to_byte()), s);
        }
        assert!(AccelStatus::Success.is_ok());
        assert!(!AccelStatus::DeviceFailure.is_ok());
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // Deterministic and content-sensitive.
        assert_ne!(fnv1a(b"oasis"), fnv1a(b"oasiT"));
    }
}
