//! Property-based Raft safety tests: randomized delays, drops, and crash
//! schedules must never violate election safety or the log-matching /
//! state-machine-safety properties.

use oasis_raft::{RaftConfig, RaftMessage, RaftNode};
use oasis_sim::event::EventQueue;
use oasis_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

struct Net {
    nodes: Vec<RaftNode>,
    wire: EventQueue<(usize, usize, RaftMessage)>,
    up: Vec<bool>,
    now: SimTime,
    /// All (term, leader) observations for election safety.
    leaders: Vec<(u64, usize)>,
    /// Applied commands per node, in order.
    applied: Vec<Vec<(u64, Vec<u8>)>>,
}

impl Net {
    fn new(n: usize, seed: u64) -> Self {
        let ids: Vec<usize> = (0..n).collect();
        Net {
            nodes: ids
                .iter()
                .map(|&id| {
                    let peers = ids.iter().copied().filter(|&p| p != id).collect();
                    RaftNode::new(id, peers, RaftConfig::default(), seed)
                })
                .collect(),
            wire: EventQueue::new(),
            up: vec![true; n],
            now: SimTime::ZERO,
            leaders: Vec::new(),
            applied: vec![Vec::new(); n],
        }
    }

    fn tick(&mut self, delay_us: u64, drop: bool) {
        self.now += SimDuration::from_micros(500);
        while let Some((_, (from, to, msg))) = self.wire.pop_due(self.now) {
            if self.up[to] && self.up[from] {
                self.nodes[to].handle(self.now, from, msg);
            }
        }
        for i in 0..self.nodes.len() {
            if self.up[i] {
                self.nodes[i].tick(self.now);
            }
        }
        for i in 0..self.nodes.len() {
            for (to, msg) in self.nodes[i].take_outbox() {
                if self.up[i] && !drop {
                    self.wire
                        .push(self.now + SimDuration::from_micros(delay_us), (i, to, msg));
                }
            }
            for entry in self.nodes[i].take_applied() {
                self.applied[i].push(entry);
            }
            if self.nodes[i].is_leader() {
                self.leaders.push((self.nodes[i].term(), i));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under random per-round delays, drops, and node crash/restart
    /// toggles, with commands proposed whenever a leader exists:
    /// * at most one leader per term (election safety),
    /// * every pair of nodes' applied sequences is prefix-consistent
    ///   (state-machine safety),
    /// * applied indices are dense and ordered.
    #[test]
    fn safety_under_chaos(
        seed in any::<u64>(),
        schedule in proptest::collection::vec(
            (1u64..400, any::<bool>(), 0usize..6),
            50..250
        ),
    ) {
        let n = 3;
        let mut net = Net::new(n, seed);
        let mut proposed = 0u8;
        for (delay_us, drop, crash_sel) in schedule {
            // Occasionally toggle one node, but never lose the majority.
            if crash_sel < n {
                let up_count = net.up.iter().filter(|&&u| u).count();
                if net.up[crash_sel] && up_count > 2 {
                    net.up[crash_sel] = false;
                } else if !net.up[crash_sel] {
                    net.up[crash_sel] = true;
                }
            }
            if let Some(leader) = (0..n).find(|&i| net.up[i] && net.nodes[i].is_leader()) {
                if proposed < 30 {
                    net.nodes[leader].propose(net.now, vec![proposed]);
                    proposed += 1;
                }
            }
            net.tick(delay_us, drop);
        }
        // Run a calm tail so logs converge. Raft cannot commit entries
        // from *prior* terms by counting replicas (Figure 8 / S5.4.2 of
        // the Raft paper), so — like a real leader's post-election no-op —
        // propose a barrier command once a stable leader exists.
        for i in 0..n {
            net.up[i] = true;
        }
        let mut barrier_proposed = false;
        for round in 0..600 {
            // Re-propose every 100 calm rounds until some node applies it —
            // a proposal accepted by a stale, about-to-be-deposed leader is
            // lost, and real clients retry.
            let committed = net.applied.iter().any(|a| a.iter().any(|(_, c)| c == &vec![0xff]));
            if !committed && round % 100 == 0 {
                if let Some(leader) = (0..n).find(|&i| net.nodes[i].is_leader()) {
                    net.nodes[leader].propose(net.now, vec![0xff]);
                    barrier_proposed = true;
                }
            }
            net.tick(5, false);
        }

        // Election safety.
        let mut by_term = std::collections::BTreeMap::new();
        for &(term, id) in &net.leaders {
            let prev = by_term.entry(term).or_insert(id);
            prop_assert_eq!(*prev, id, "two leaders in term {}", term);
        }
        // Applied sequences: strictly increasing log indices (election
        // no-ops leave gaps), prefix-consistent across nodes.
        for node in &net.applied {
            for pair in node.windows(2) {
                prop_assert!(pair[0].0 < pair[1].0, "apply order regressed");
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let m = net.applied[i].len().min(net.applied[j].len());
                prop_assert_eq!(
                    &net.applied[i][..m],
                    &net.applied[j][..m],
                    "state machines diverged between {} and {}", i, j
                );
            }
        }
        // Liveness: the post-election barrier (and with it every surviving
        // earlier entry) must have committed on every node.
        if barrier_proposed {
            for (i, node) in net.applied.iter().enumerate() {
                prop_assert!(
                    node.iter().any(|(_, cmd)| cmd == &vec![0xff]),
                    "node {} never applied the barrier; state: {:?}",
                    i,
                    net.nodes
                        .iter()
                        .map(|n| (n.id(), n.role(), n.term(), n.last_log_index(), n.commit_index()))
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}
