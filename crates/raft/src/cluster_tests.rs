//! Cluster-level Raft tests: a co-simulated cluster with message delays,
//! loss, and partitions, checking the safety and liveness properties the
//! allocator depends on.

use oasis_sim::event::EventQueue;
use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

use crate::node::{NodeId, RaftConfig, RaftMessage, RaftNode};

/// Co-simulated cluster harness.
struct Cluster {
    nodes: Vec<RaftNode>,
    wire: EventQueue<(NodeId, NodeId, RaftMessage)>,
    now: SimTime,
    /// Per-node reachability (simulates partitions/crashes).
    up: Vec<bool>,
    delay: SimDuration,
    drop_rate: f64,
    rng: SimRng,
    /// (term, leader) pairs ever observed, for the election-safety check.
    leaders_seen: Vec<(u64, NodeId)>,
}

impl Cluster {
    fn new(n: usize, seed: u64) -> Self {
        let ids: Vec<NodeId> = (0..n).collect();
        let nodes = ids
            .iter()
            .map(|&id| {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
                RaftNode::new(id, peers, RaftConfig::default(), seed)
            })
            .collect();
        Cluster {
            nodes,
            wire: EventQueue::new(),
            now: SimTime::ZERO,
            up: vec![true; n],
            delay: SimDuration::from_micros(5), // CXL channel RPC latency
            drop_rate: 0.0,
            rng: SimRng::new(seed ^ 0xC1u64),
            leaders_seen: Vec::new(),
        }
    }

    /// Run for `dur`, ticking every 500 µs like the allocator's poll loop.
    fn run(&mut self, dur: SimDuration) {
        let end = self.now + dur;
        let tick = SimDuration::from_micros(500);
        while self.now < end {
            self.now += tick;
            // Deliver due messages.
            while let Some((_, (from, to, msg))) = self.wire.pop_due(self.now) {
                if self.up[to] && self.up[from] {
                    self.nodes[to].handle(self.now, from, msg);
                }
            }
            for i in 0..self.nodes.len() {
                if self.up[i] {
                    self.nodes[i].tick(self.now);
                }
            }
            // Collect outboxes.
            for i in 0..self.nodes.len() {
                for (to, msg) in self.nodes[i].take_outbox() {
                    if !self.up[i] || self.rng.chance(self.drop_rate) {
                        continue;
                    }
                    self.wire.push(self.now + self.delay, (i, to, msg));
                }
            }
            // Record leaders for the safety check.
            for n in &self.nodes {
                if n.is_leader() {
                    self.leaders_seen.push((n.term(), n.id()));
                }
            }
        }
        self.assert_election_safety();
    }

    fn leader(&self) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.is_leader()).map(|n| n.id())
    }

    fn assert_election_safety(&self) {
        // At most one leader per term, ever.
        let mut by_term: std::collections::BTreeMap<u64, NodeId> = Default::default();
        for &(term, id) in &self.leaders_seen {
            if let Some(&prev) = by_term.get(&term) {
                assert_eq!(prev, id, "two leaders in term {term}");
            } else {
                by_term.insert(term, id);
            }
        }
    }
}

#[test]
fn cluster_elects_exactly_one_leader() {
    let mut c = Cluster::new(3, 42);
    c.run(SimDuration::from_millis(100));
    let leaders = c.nodes.iter().filter(|n| n.is_leader()).count();
    assert_eq!(leaders, 1);
}

#[test]
fn committed_commands_apply_on_all_nodes_in_order() {
    let mut c = Cluster::new(3, 7);
    c.run(SimDuration::from_millis(100));
    let leader = c.leader().unwrap();
    let now = c.now;
    for i in 0u8..10 {
        c.nodes[leader].propose(now, vec![i]).unwrap();
    }
    c.run(SimDuration::from_millis(50));
    for n in &mut c.nodes {
        let applied: Vec<Vec<u8>> = n.take_applied().into_iter().map(|(_, cmd)| cmd).collect();
        assert_eq!(
            applied,
            (0u8..10).map(|i| vec![i]).collect::<Vec<_>>(),
            "node {} applied out of order",
            n.id()
        );
    }
}

#[test]
fn leader_crash_triggers_reelection_and_no_committed_loss() {
    let mut c = Cluster::new(5, 11);
    c.run(SimDuration::from_millis(100));
    let old_leader = c.leader().unwrap();
    let now = c.now;
    c.nodes[old_leader]
        .propose(now, b"pre-crash".to_vec())
        .unwrap();
    c.run(SimDuration::from_millis(50));

    // Crash the leader.
    c.up[old_leader] = false;
    c.run(SimDuration::from_millis(100));
    let new_leader = c
        .nodes
        .iter()
        .find(|n| n.is_leader() && n.id() != old_leader)
        .map(|n| n.id())
        .expect("a new leader must emerge");

    let now = c.now;
    c.nodes[new_leader]
        .propose(now, b"post-crash".to_vec())
        .unwrap();
    c.run(SimDuration::from_millis(50));

    // Every live node applied both commands, in order.
    for i in 0..c.nodes.len() {
        if !c.up[i] {
            continue;
        }
        let applied: Vec<Vec<u8>> = c.nodes[i]
            .take_applied()
            .into_iter()
            .map(|(_, cmd)| cmd)
            .collect();
        assert_eq!(applied, vec![b"pre-crash".to_vec(), b"post-crash".to_vec()]);
    }
}

#[test]
fn minority_partition_cannot_commit() {
    let mut c = Cluster::new(5, 13);
    c.run(SimDuration::from_millis(100));
    let leader = c.leader().unwrap();
    // Partition the leader with one other node (minority of 2).
    let mut minority = vec![leader];
    minority.push((0..5).find(|&i| i != leader).unwrap());
    for i in 0..5 {
        if !minority.contains(&i) {
            c.up[i] = false;
        }
    }
    let now = c.now;
    let commit_before = c.nodes[leader].commit_index();
    c.nodes[leader].propose(now, b"doomed".to_vec());
    c.run(SimDuration::from_millis(100));
    assert_eq!(
        c.nodes[leader].commit_index(),
        commit_before,
        "minority leader must not commit"
    );

    // Heal: majority side elects a fresh leader and the doomed entry is
    // eventually superseded or replicated consistently (we just check
    // commit progress resumes and safety held throughout — safety is
    // asserted in run()).
    for i in 0..5 {
        c.up[i] = true;
    }
    c.run(SimDuration::from_millis(200));
    let new_leader = c.leader().expect("leader after heal");
    let now = c.now;
    c.nodes[new_leader].propose(now, b"alive".to_vec()).unwrap();
    c.run(SimDuration::from_millis(100));
    assert!(c.nodes[new_leader].commit_index() >= 1);
}

#[test]
fn progress_under_message_loss() {
    let mut c = Cluster::new(3, 17);
    c.drop_rate = 0.10;
    c.run(SimDuration::from_millis(300));
    let leader = c.leader().expect("leader despite 10% loss");
    let now = c.now;
    for i in 0u8..5 {
        c.nodes[leader].propose(now, vec![i]);
    }
    c.run(SimDuration::from_millis(300));
    // Retries (heartbeat piggybacking) must get everything committed.
    assert!(
        c.nodes[leader].commit_index() >= 5,
        "commit {} < 5 under loss",
        c.nodes[leader].commit_index()
    );
}

#[test]
fn deterministic_given_seed() {
    let run = |seed| {
        let mut c = Cluster::new(3, seed);
        c.run(SimDuration::from_millis(100));
        (
            c.leader(),
            c.nodes.iter().map(|n| n.term()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(99), run(99));
}
