//! Raft consensus for the Oasis pod-wide allocator.
//!
//! §3.5: "The allocator itself is replicated with Raft, using RPCs
//! transmitted over the message channels." This crate implements the Raft
//! core (leader election, log replication, commit, apply) as a pure state
//! machine driven by the discrete-event simulation: the embedding (the
//! allocator service in `oasis-core`) delivers messages between nodes over
//! Oasis message channels and calls [`RaftNode::tick`] on its polling
//! cadence.
//!
//! The implementation follows the TLA⁺-checked algorithm of Ongaro &
//! Ousterhout's "In Search of an Understandable Consensus Algorithm"
//! (§5.1–5.4 of that paper): single-round voting with term monotonicity,
//! log-matching via `prev_log_index`/`prev_log_term`, commit only of
//! current-term entries, and apply in log order.

pub mod node;

pub use node::{LogEntry, RaftConfig, RaftMessage, RaftNode, Role};

#[cfg(test)]
mod cluster_tests;
