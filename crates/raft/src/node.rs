//! The Raft state machine for one node.

use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

/// Node identifier (dense, assigned by the embedding).
pub type NodeId = usize;
/// Raft term.
pub type Term = u64;

/// A replicated log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was appended at the leader.
    pub term: Term,
    /// Opaque command applied by the embedding's state machine.
    pub command: Vec<u8>,
}

/// Raft RPCs. The embedding moves these between nodes (over Oasis message
/// channels in the pod).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaftMessage {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Candidate's id.
        candidate: NodeId,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to `RequestVote`.
    VoteResponse {
        /// Responder's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat).
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Leader's id.
        leader: NodeId,
        /// Index of the entry preceding `entries`.
        prev_log_index: u64,
        /// Term of that entry.
        prev_log_term: Term,
        /// Entries to append.
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Reply to `AppendEntries`.
    AppendResponse {
        /// Responder's term.
        term: Term,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the responder (valid when
        /// `success`).
        match_index: u64,
    },
}

/// The role a node currently plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// The (unique per term) leader.
    Leader,
}

/// Timing configuration. Defaults suit an allocator replicated over
/// microsecond-latency CXL channels: fast heartbeats, ~10–20 ms election
/// timeouts.
#[derive(Clone, Debug)]
pub struct RaftConfig {
    /// Minimum election timeout.
    pub election_timeout_min: SimDuration,
    /// Maximum election timeout (jitter upper bound).
    pub election_timeout_max: SimDuration,
    /// Leader heartbeat interval.
    pub heartbeat_interval: SimDuration,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: SimDuration::from_millis(10),
            election_timeout_max: SimDuration::from_millis(20),
            heartbeat_interval: SimDuration::from_millis(2),
        }
    }
}

/// A Raft node. Drive it with [`RaftNode::tick`] and [`RaftNode::handle`];
/// collect RPCs with [`RaftNode::take_outbox`] and committed commands with
/// [`RaftNode::take_applied`].
pub struct RaftNode {
    id: NodeId,
    peers: Vec<NodeId>,
    cfg: RaftConfig,
    rng: SimRng,

    term: Term,
    voted_for: Option<NodeId>,
    /// 1-based log (index 0 is the implicit empty prefix).
    log: Vec<LogEntry>,
    commit_index: u64,
    last_applied: u64,

    role: Role,
    votes_granted: usize,
    /// Leader state: next index to send / highest replicated, per peer slot.
    next_index: Vec<u64>,
    match_index: Vec<u64>,

    election_deadline: SimTime,
    heartbeat_due: SimTime,

    outbox: Vec<(NodeId, RaftMessage)>,
    applied: Vec<(u64, Vec<u8>)>,
}

impl RaftNode {
    /// Create a follower with a randomized first election deadline.
    pub fn new(id: NodeId, peers: Vec<NodeId>, cfg: RaftConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
        let deadline = SimTime::ZERO + Self::random_timeout(&cfg, &mut rng);
        let n_peers = peers.len();
        RaftNode {
            id,
            peers,
            cfg,
            rng,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            last_applied: 0,
            role: Role::Follower,
            votes_granted: 0,
            next_index: vec![1; n_peers],
            match_index: vec![0; n_peers],
            election_deadline: deadline,
            heartbeat_due: SimTime::ZERO,
            outbox: Vec::new(),
            applied: Vec::new(),
        }
    }

    fn random_timeout(cfg: &RaftConfig, rng: &mut SimRng) -> SimDuration {
        let lo = cfg.election_timeout_min.as_nanos();
        let hi = cfg.election_timeout_max.as_nanos().max(lo + 1);
        SimDuration::from_nanos(rng.range_u64(lo, hi))
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Is this node the leader of its current term?
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Log length (highest index).
    pub fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    /// The whole log, 1-based index `i` at slot `i - 1`. Read-only: the
    /// embedding uses it to audit its state machine against the committed
    /// prefix (chaos-harness invariant).
    pub fn log_entries(&self) -> &[LogEntry] {
        &self.log
    }

    fn last_log_term(&self) -> Term {
        self.log.last().map_or(0, |e| e.term)
    }

    fn term_at(&self, index: u64) -> Term {
        if index == 0 {
            0
        } else {
            self.log[(index - 1) as usize].term
        }
    }

    /// Drain pending outgoing RPCs.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, RaftMessage)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drain commands committed and applied since the last call, as
    /// `(log_index, command)` in log order.
    pub fn take_applied(&mut self) -> Vec<(u64, Vec<u8>)> {
        std::mem::take(&mut self.applied)
    }

    /// Propose a command. Returns its log index if this node is the leader,
    /// `None` otherwise (the embedding should redirect to the leader).
    pub fn propose(&mut self, now: SimTime, command: Vec<u8>) -> Option<u64> {
        if self.role != Role::Leader {
            return None;
        }
        self.log.push(LogEntry {
            term: self.term,
            command,
        });
        let index = self.last_log_index();
        // Replicate eagerly rather than waiting for the heartbeat.
        self.broadcast_append(now);
        // Single-node cluster commits immediately.
        self.advance_commit();
        Some(index)
    }

    fn become_follower(&mut self, now: SimTime, term: Term) {
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.election_deadline = now + Self::random_timeout(&self.cfg, &mut self.rng);
    }

    fn become_candidate(&mut self, now: SimTime) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes_granted = 1;
        self.election_deadline = now + Self::random_timeout(&self.cfg, &mut self.rng);
        let (lli, llt) = (self.last_log_index(), self.last_log_term());
        for &p in &self.peers {
            self.outbox.push((
                p,
                RaftMessage::RequestVote {
                    term: self.term,
                    candidate: self.id,
                    last_log_index: lli,
                    last_log_term: llt,
                },
            ));
        }
        self.maybe_win(now);
    }

    fn maybe_win(&mut self, now: SimTime) {
        let cluster = self.peers.len() + 1;
        if self.role == Role::Candidate && self.votes_granted * 2 > cluster {
            self.role = Role::Leader;
            let lli = self.last_log_index();
            for i in 0..self.peers.len() {
                self.next_index[i] = lli + 1;
                self.match_index[i] = 0;
            }
            // Append a no-op barrier: a leader can only commit entries of
            // its *own* term by counting replicas (Raft 5.4.2), so without
            // this, surviving entries from deposed leaders could sit
            // uncommitted indefinitely. No-ops are filtered out of the
            // applied stream.
            self.log.push(LogEntry {
                term: self.term,
                command: Vec::new(),
            });
            self.advance_commit(); // single-node cluster commits at once
            self.heartbeat_due = now; // send heartbeats immediately
            self.broadcast_append(now);
        }
    }

    fn append_for_peer(&self, slot: usize) -> RaftMessage {
        let next = self.next_index[slot];
        let prev_log_index = next - 1;
        let prev_log_term = self.term_at(prev_log_index);
        let entries: Vec<LogEntry> = self.log[(next - 1) as usize..].to_vec();
        RaftMessage::AppendEntries {
            term: self.term,
            leader: self.id,
            prev_log_index,
            prev_log_term,
            entries,
            leader_commit: self.commit_index,
        }
    }

    fn broadcast_append(&mut self, now: SimTime) {
        if self.role != Role::Leader {
            return;
        }
        for slot in 0..self.peers.len() {
            let msg = self.append_for_peer(slot);
            self.outbox.push((self.peers[slot], msg));
        }
        self.heartbeat_due = now + self.cfg.heartbeat_interval;
    }

    fn advance_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        let cluster = self.peers.len() + 1;
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            // Only current-term entries commit by counting (Raft §5.4.2).
            if self.term_at(n) != self.term {
                continue;
            }
            let replicas = 1 + self.match_index.iter().filter(|&&m| m >= n).count();
            if replicas * 2 > cluster {
                self.commit_index = n;
                break;
            }
        }
        self.apply_committed();
    }

    fn apply_committed(&mut self) {
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            let cmd = self.log[(self.last_applied - 1) as usize].command.clone();
            // Election no-ops advance the commit frontier but carry nothing
            // for the embedding's state machine.
            if !cmd.is_empty() {
                self.applied.push((self.last_applied, cmd));
            }
        }
    }

    /// Advance timers: start an election on timeout, send heartbeats when
    /// leading.
    pub fn tick(&mut self, now: SimTime) {
        match self.role {
            Role::Leader => {
                if now >= self.heartbeat_due {
                    self.broadcast_append(now);
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    self.become_candidate(now);
                }
            }
        }
    }

    /// Process one incoming RPC.
    pub fn handle(&mut self, now: SimTime, from: NodeId, msg: RaftMessage) {
        match msg {
            RaftMessage::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                if term > self.term {
                    self.become_follower(now, term);
                }
                let log_ok = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                let grant =
                    term == self.term && log_ok && self.voted_for.is_none_or(|v| v == candidate);
                if grant {
                    self.voted_for = Some(candidate);
                    self.election_deadline = now + Self::random_timeout(&self.cfg, &mut self.rng);
                }
                self.outbox.push((
                    from,
                    RaftMessage::VoteResponse {
                        term: self.term,
                        granted: grant,
                    },
                ));
            }
            RaftMessage::VoteResponse { term, granted } => {
                if term > self.term {
                    self.become_follower(now, term);
                    return;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes_granted += 1;
                    self.maybe_win(now);
                }
            }
            RaftMessage::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                if term > self.term || (term == self.term && self.role == Role::Candidate) {
                    self.become_follower(now, term);
                }
                if term < self.term {
                    self.outbox.push((
                        from,
                        RaftMessage::AppendResponse {
                            term: self.term,
                            success: false,
                            match_index: 0,
                        },
                    ));
                    return;
                }
                // Valid leader for our term: reset the election timer.
                let _ = leader;
                self.election_deadline = now + Self::random_timeout(&self.cfg, &mut self.rng);
                // Log-matching check.
                if prev_log_index > self.last_log_index()
                    || self.term_at(prev_log_index) != prev_log_term
                {
                    self.outbox.push((
                        from,
                        RaftMessage::AppendResponse {
                            term: self.term,
                            success: false,
                            match_index: 0,
                        },
                    ));
                    return;
                }
                // Append, truncating conflicts.
                let mut idx = prev_log_index;
                for entry in entries {
                    idx += 1;
                    if idx <= self.last_log_index() {
                        if self.term_at(idx) != entry.term {
                            self.log.truncate((idx - 1) as usize);
                            self.log.push(entry);
                        }
                    } else {
                        self.log.push(entry);
                    }
                }
                if leader_commit > self.commit_index {
                    self.commit_index = leader_commit.min(self.last_log_index());
                    self.apply_committed();
                }
                self.outbox.push((
                    from,
                    RaftMessage::AppendResponse {
                        term: self.term,
                        success: true,
                        match_index: idx,
                    },
                ));
            }
            RaftMessage::AppendResponse {
                term,
                success,
                match_index,
            } => {
                if term > self.term {
                    self.become_follower(now, term);
                    return;
                }
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                let Some(slot) = self.peers.iter().position(|&p| p == from) else {
                    return;
                };
                if success {
                    self.match_index[slot] = self.match_index[slot].max(match_index);
                    self.next_index[slot] = self.match_index[slot] + 1;
                    self.advance_commit();
                } else {
                    // Back off and retry immediately.
                    self.next_index[slot] = self.next_index[slot].saturating_sub(1).max(1);
                    let msg = self.append_for_peer(slot);
                    self.outbox.push((self.peers[slot], msg));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RaftConfig {
        RaftConfig::default()
    }

    #[test]
    fn single_node_elects_itself_and_commits() {
        let mut n = RaftNode::new(0, vec![], cfg(), 1);
        n.tick(SimTime::from_millis(25));
        assert!(n.is_leader());
        // Index 1 is the election no-op barrier; it commits immediately and
        // is filtered from the applied stream.
        assert_eq!(n.commit_index(), 1);
        let now = SimTime::from_millis(25);
        let idx = n.propose(now, b"cmd".to_vec()).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(n.commit_index(), 2);
        let applied = n.take_applied();
        assert_eq!(applied, vec![(2, b"cmd".to_vec())]);
    }

    #[test]
    fn follower_grants_vote_once_per_term() {
        let mut n = RaftNode::new(0, vec![1, 2], cfg(), 1);
        let now = SimTime::from_millis(1);
        n.handle(
            now,
            1,
            RaftMessage::RequestVote {
                term: 1,
                candidate: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        let out = n.take_outbox();
        assert!(matches!(
            out[0].1,
            RaftMessage::VoteResponse { granted: true, .. }
        ));
        // Second candidate, same term: refused.
        n.handle(
            now,
            2,
            RaftMessage::RequestVote {
                term: 1,
                candidate: 2,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        let out = n.take_outbox();
        assert!(matches!(
            out[0].1,
            RaftMessage::VoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn vote_refused_for_stale_log() {
        let mut n = RaftNode::new(0, vec![1], cfg(), 1);
        // Give node 0 a log entry at term 2 via AppendEntries.
        n.handle(
            SimTime::ZERO,
            1,
            RaftMessage::AppendEntries {
                term: 2,
                leader: 1,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![LogEntry {
                    term: 2,
                    command: vec![1],
                }],
                leader_commit: 0,
            },
        );
        n.take_outbox();
        // Candidate with an older log must not get the vote.
        n.handle(
            SimTime::ZERO,
            1,
            RaftMessage::RequestVote {
                term: 3,
                candidate: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        let out = n.take_outbox();
        assert!(matches!(
            out[0].1,
            RaftMessage::VoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn append_entries_rejects_gap() {
        let mut n = RaftNode::new(0, vec![1], cfg(), 1);
        n.handle(
            SimTime::ZERO,
            1,
            RaftMessage::AppendEntries {
                term: 1,
                leader: 1,
                prev_log_index: 5, // node has an empty log
                prev_log_term: 1,
                entries: vec![],
                leader_commit: 0,
            },
        );
        let out = n.take_outbox();
        assert!(matches!(
            out[0].1,
            RaftMessage::AppendResponse { success: false, .. }
        ));
    }

    #[test]
    fn conflicting_suffix_truncated() {
        let mut n = RaftNode::new(0, vec![1], cfg(), 1);
        // Old leader appends two entries at term 1.
        n.handle(
            SimTime::ZERO,
            1,
            RaftMessage::AppendEntries {
                term: 1,
                leader: 1,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        command: vec![1],
                    },
                    LogEntry {
                        term: 1,
                        command: vec![2],
                    },
                ],
                leader_commit: 0,
            },
        );
        n.take_outbox();
        // New leader at term 2 overwrites index 2.
        n.handle(
            SimTime::ZERO,
            1,
            RaftMessage::AppendEntries {
                term: 2,
                leader: 1,
                prev_log_index: 1,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 2,
                    command: vec![9],
                }],
                leader_commit: 2,
            },
        );
        n.take_outbox();
        assert_eq!(n.last_log_index(), 2);
        let applied = n.take_applied();
        assert_eq!(applied[1].1, vec![9]);
    }

    #[test]
    fn higher_term_dethrones_leader() {
        let mut n = RaftNode::new(0, vec![], cfg(), 1);
        n.tick(SimTime::from_millis(25));
        assert!(n.is_leader());
        n.handle(
            SimTime::from_millis(26),
            1,
            RaftMessage::AppendEntries {
                term: 99,
                leader: 1,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert_eq!(n.role(), Role::Follower);
        assert_eq!(n.term(), 99);
    }

    #[test]
    fn propose_refused_on_follower() {
        let mut n = RaftNode::new(0, vec![1, 2], cfg(), 1);
        assert!(n.propose(SimTime::ZERO, vec![1]).is_none());
    }
}
