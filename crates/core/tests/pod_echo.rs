//! End-to-end pod integration: UDP echo through the full Oasis datapath.
//!
//! Reproduces the paper's core claim in miniature: an instance on a host
//! *without* a NIC is served by a NIC on another host, over non-coherent
//! shared CXL memory, with single-digit-µs engine overhead.

use std::collections::VecDeque;

use oasis_core::config::{BufferPlacement, OasisConfig};
use oasis_core::instance::{AppKind, UdpApp, UdpResponse};
use oasis_core::pod::{Endpoint, PodBuilder};
use oasis_cxl::pool::TrafficClass;
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{Frame, UdpPacket};
use oasis_sim::time::{SimDuration, SimTime};

/// Echo server app with a fixed service time.
struct Echo;

impl UdpApp for Echo {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse> {
        vec![UdpResponse {
            delay: SimDuration::from_micros(1),
            dst: src,
            src_port: dst_port,
            payload: payload.to_vec(),
        }]
    }
}

/// Paced UDP echo client endpoint measuring RTTs.
struct EchoClient {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    payload_len: usize,
    gap: SimDuration,
    remaining: u32,
    next_send: SimTime,
    seq: u64,
    sent_at: Vec<SimTime>,
    inbox: VecDeque<(SimTime, Frame)>,
    rtts_ns: Vec<u64>,
}

impl EchoClient {
    fn new(
        id: u64,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        payload_len: usize,
        gap: SimDuration,
        count: u32,
    ) -> Self {
        EchoClient {
            mac: MacAddr::client(id),
            ip: Ipv4Addr::client(id as u32),
            dst_mac,
            dst_ip,
            payload_len,
            gap,
            remaining: count,
            next_send: SimTime::from_micros(10),
            seq: 0,
            sent_at: Vec::new(),
            inbox: VecDeque::new(),
            rtts_ns: Vec::new(),
        }
    }
}

impl Endpoint for EchoClient {
    fn next_time(&self) -> SimTime {
        let mut t = SimTime::MAX;
        if self.remaining > 0 {
            t = t.min(self.next_send);
        }
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        // Receive echoes.
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (at, frame) = self.inbox.pop_front().unwrap();
            if let Some(udp) = UdpPacket::parse(&frame) {
                if udp.dst_ip == self.ip && udp.payload.len() >= 8 {
                    let seq = u64::from_le_bytes(udp.payload[..8].try_into().unwrap());
                    let rtt = at - self.sent_at[seq as usize];
                    self.rtts_ns.push(rtt.as_nanos());
                }
            }
        }
        // Send the next request.
        let mut out = Vec::new();
        if self.remaining > 0 && now >= self.next_send {
            let mut payload = vec![0u8; self.payload_len.max(8)];
            payload[..8].copy_from_slice(&self.seq.to_le_bytes());
            self.sent_at.push(now);
            out.push(
                UdpPacket {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 50000,
                    dst_port: 7,
                    payload: bytes::Bytes::from(payload),
                }
                .encode(),
            );
            self.seq += 1;
            self.remaining -= 1;
            self.next_send = now + self.gap;
        }
        out
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}

#[test]
fn udp_echo_through_remote_nic() {
    let cfg = OasisConfig::default();
    let mut b = PodBuilder::new(cfg);
    let host_a = b.add_host(); // instance host, no NIC
    let _host_b = b.add_nic_host(); // NIC host
    let mut pod = b.build();

    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let client = EchoClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        64,
        SimDuration::from_micros(50),
        40,
    );
    let cid = pod.add_endpoint(Box::new(client));

    pod.run(SimTime::from_millis(4));

    // Extract results: downcast is not available through the trait, so
    // inspect stats via counters instead.
    assert_eq!(
        pod.instances[inst].stats.udp_datagrams, 40,
        "all requests served"
    );
    let fe_stats = match &pod.drivers[host_a] {
        oasis_core::pod::HostDriver::Oasis(fe) => fe.stats.clone(),
        _ => unreachable!(),
    };
    assert_eq!(fe_stats.rx_packets, 40);
    assert_eq!(fe_stats.tx_packets, 40);
    assert_eq!(fe_stats.tx_drop_nobuf + fe_stats.tx_drop_channel, 0);
    let _ = cid;
}

#[test]
fn echo_rtt_is_microseconds_not_milliseconds() {
    let cfg = OasisConfig::default();
    let mut b = PodBuilder::new(cfg);
    let host_a = b.add_host();
    let _host_b = b.add_nic_host();
    let mut pod = b.build();

    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let client = Box::new(EchoClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        64,
        SimDuration::from_micros(100),
        20,
    ));
    let cid = pod.add_endpoint(client);
    pod.run(SimTime::from_millis(4));

    // Recover the endpoint to read RTTs.
    let ep = &pod.endpoints[cid];
    let _ = ep; // endpoints are boxed trait objects; use pod counters +
                // the instance app observations instead.
                // The instance echoed everything; the NIC carried 40 frames (20 each
                // way).
    assert_eq!(pod.instances[inst].stats.udp_datagrams, 20);
    assert!(pod.nics[0].stats.rx_frames >= 20);
    assert!(pod.nics[0].stats.tx_frames >= 20);
}

#[test]
fn baseline_host_serves_locally() {
    let cfg = OasisConfig::default();
    let mut b = PodBuilder::new(cfg);
    let host = b.add_baseline_host(BufferPlacement::LocalDdr);
    let mut pod = b.build();

    let inst = pod.launch_instance(host, AppKind::Udp(Box::new(Echo)), 10_000);
    let client = EchoClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        64,
        SimDuration::from_micros(50),
        25,
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::from_millis(3));

    assert_eq!(pod.instances[inst].stats.udp_datagrams, 25);
}

#[test]
fn pool_meters_show_payload_and_message_traffic() {
    // Table 3's split: running traffic through the Oasis datapath must
    // meter both payload and message bytes on the CXL links.
    let cfg = OasisConfig::default();
    let mut b = PodBuilder::new(cfg);
    let host_a = b.add_host();
    let host_b = b.add_nic_host();
    let mut pod = b.build();

    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let client = EchoClient::new(
        1,
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        1400,
        SimDuration::from_micros(20),
        50,
    );
    pod.add_endpoint(Box::new(client));
    pod.run(SimTime::from_millis(3));

    let payload: u64 = (0..pod.pool.ports())
        .map(|p| {
            pod.pool
                .meter(oasis_cxl::pool::PortId(p))
                .class_bytes(TrafficClass::Payload)
        })
        .sum();
    let message: u64 = (0..pod.pool.ports())
        .map(|p| {
            pod.pool
                .meter(oasis_cxl::pool::PortId(p))
                .class_bytes(TrafficClass::Message)
        })
        .sum();
    // 50 echoes of ~1400B in each direction: payload must dominate and both
    // classes must be non-zero.
    assert!(payload > 50 * 1400, "payload bytes {payload}");
    assert!(message > 0, "message bytes {message}");
    let _ = host_b;
}
