//! Coherence-sanitizer regression harness for the DMA-buffer stale-read
//! bug: the storage frontend once returned read buffers to the free list
//! without invalidating their cache lines, so the *next* read that reused
//! the buffer could copy stale cached bytes instead of the data the SSD
//! just DMA'd into the pool. The fix flushes the lines in `release_buf`;
//! these tests prove the sanitizer re-detects the bug when that flush is
//! reverted, and stays silent when it is in place.
#![cfg(feature = "sanitize")]

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_cxl::ReportKind;
use oasis_sim::time::SimTime;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

fn block(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

/// Two reads of changing data through the same frontend, with the release
/// flush intact: no coherence errors.
#[test]
fn fixed_release_path_reports_no_stale_read() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 8).expect("capacity available");

    for round in 0..2u8 {
        let data = block(0x10 + round);
        pod.volume_write(vol, 0, &data).expect("write accepted");
        pod.run(SimTime::from_millis(2 * (round as u64 * 2 + 1)));
        pod.take_storage_completions(h0);
        pod.volume_read(vol, 0, 1).expect("read accepted");
        pod.run(SimTime::from_millis(2 * (round as u64 * 2 + 2)));
        let done = pod.take_storage_completions(h0);
        assert_eq!(done[0].data.as_deref(), Some(&data[..]));
    }
    assert_eq!(
        pod.pool.san.count_of(ReportKind::StaleRead),
        0,
        "{}",
        pod.pool.san.summary()
    );
}

/// Reverting the release-time invalidation reintroduces the bug — and the
/// sanitizer reports it as a stale read at the frontend's acquire point,
/// naming the host, the buffer address (with its region), and the time.
#[test]
fn reverted_release_flush_redetects_stale_read() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 8).expect("capacity available");

    // Revert the fix on h0's storage frontend.
    pod.storage_frontends[h0]
        .as_mut()
        .expect("oasis host has a storage frontend")
        .set_skip_release_invalidate(true);

    // Step 1: write A to block 0 and read it back (correct).
    let a = block(0xA0);
    pod.volume_write(vol, 0, &a).expect("write accepted");
    pod.run(SimTime::from_millis(2));
    pod.take_storage_completions(h0);
    pod.volume_read(vol, 0, 1).expect("read accepted");
    pod.run(SimTime::from_millis(4));
    assert_eq!(
        pod.take_storage_completions(h0)[0].data.as_deref(),
        Some(&a[..])
    );

    // Step 2: write B to a *different* block. LIFO reuse stages B through
    // the very buffer the read just released, leaving B's bytes cached
    // clean on h0 (the un-fixed release skipped the invalidation).
    let bdata = block(0xB5);
    pod.volume_write(vol, 1, &bdata).expect("write accepted");
    pod.run(SimTime::from_millis(6));
    pod.take_storage_completions(h0);

    // Step 3: read block 0 again. The SSD DMAs A into the reused pool
    // buffer, but h0's cached lines from step 2 mask the DMA'd bytes.
    pod.volume_read(vol, 0, 1).expect("read accepted");
    pod.run(SimTime::from_millis(8));
    let done = pod.take_storage_completions(h0);

    // The bug is real: the caller observed step-2 staging bytes, not A.
    assert_eq!(
        done[0].data.as_deref(),
        Some(&bdata[..]),
        "without the release flush the read returns stale cached bytes"
    );

    // ...and the sanitizer caught it, with enough context to localize.
    let san = &pod.pool.san;
    assert!(
        san.count_of(ReportKind::StaleRead) > 0,
        "sanitizer must re-detect the stale read: {}",
        san.summary()
    );
    let r = san
        .reports()
        .iter()
        .find(|r| r.kind == ReportKind::StaleRead)
        .expect("a stale-read report is stored");
    assert_eq!(r.port.0, h0, "report names the reading host");
    assert!(r.region.is_some(), "report names the buffer region");
    assert!(r.time > SimTime::ZERO, "report carries the sim-time");
}
