//! Control-plane integration: host-failure inference from missing
//! telemetry (§3.5) and the §6 telemetry-driven load-balancing policy.

use std::collections::VecDeque;

use oasis_core::allocator::RebalancePolicy;
use oasis_core::config::OasisConfig;
use oasis_core::instance::{AppKind, UdpApp, UdpResponse};
use oasis_core::pod::{Endpoint, HostDriver, PodBuilder};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{Frame, GarpPacket, UdpPacket};
use oasis_sim::time::{SimDuration, SimTime};

struct Echo;
impl UdpApp for Echo {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse> {
        vec![UdpResponse {
            delay: SimDuration::from_micros(1),
            dst: src,
            src_port: dst_port,
            payload: payload.to_vec(),
        }]
    }
}

/// Simple paced client that follows GARPs (no stats needed here).
struct Pinger {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    gap: SimDuration,
    until: SimTime,
    next: SimTime,
    received: u64,
    inbox: VecDeque<(SimTime, Frame)>,
}

impl Pinger {
    fn new(id: u64, dst_mac: MacAddr, dst_ip: Ipv4Addr, gap: SimDuration, until: SimTime) -> Self {
        Pinger {
            mac: MacAddr::client(id),
            ip: Ipv4Addr::client(id as u32),
            dst_mac,
            dst_ip,
            gap,
            until,
            next: SimTime::from_millis(1),
            received: 0,
            inbox: VecDeque::new(),
        }
    }
}

impl Endpoint for Pinger {
    fn next_time(&self) -> SimTime {
        let mut t = if self.next <= self.until {
            self.next
        } else {
            SimTime::MAX
        };
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (_, frame) = self.inbox.pop_front().unwrap();
            if let Some(garp) = GarpPacket::parse(&frame) {
                if garp.sender_ip == self.dst_ip {
                    self.dst_mac = garp.sender_mac;
                }
                continue;
            }
            if let Some(udp) = UdpPacket::parse(&frame) {
                if udp.dst_ip == self.ip {
                    self.received += 1;
                }
            }
        }
        let mut out = Vec::new();
        while self.next <= now && self.next <= self.until {
            out.push(
                UdpPacket {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 40000,
                    dst_port: 7,
                    payload: bytes::Bytes::from(vec![0u8; 64]),
                }
                .encode(),
            );
            self.next += self.gap;
        }
        out
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}

fn fast_cfg() -> OasisConfig {
    OasisConfig {
        link_detect: SimDuration::from_millis(5),
        telemetry_period: SimDuration::from_millis(10),
        migration_grace: SimDuration::from_millis(20),
        ..Default::default()
    }
}

#[test]
fn host_failure_inferred_from_missing_telemetry() {
    let mut b = PodBuilder::new(fast_cfg());
    let host_a = b.add_host(); // instance host
    let host_b = b.add_nic_host(); // serving NIC (0)
    let host_c = b.add_nic_host(); // backup NIC (1)
    let mut pod = b.backup_nic_on(host_c).build();
    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    assert_eq!(pod.instance_mac(inst), pod.nic_mac(0));

    // Crash the whole NIC host: its backend stops sending telemetry. The
    // link itself never reports down (the NIC is fine; its host is not),
    // so only the §3.5 inference path can catch this.
    pod.schedule_host_failure(SimTime::from_millis(50), host_b);
    pod.run(SimTime::from_millis(200));

    assert!(
        pod.allocator.state.nics[0].as_ref().unwrap().failed,
        "allocator must infer the host failure from missing telemetry"
    );
    assert_eq!(pod.allocator.failovers, 1);
    let HostDriver::Oasis(fe) = &pod.drivers[host_a] else {
        unreachable!()
    };
    assert_eq!(fe.serving_nic(pod.instance_ip(inst)), Some(1));
}

#[test]
fn rebalancer_moves_load_off_hot_nic() {
    let mut b = PodBuilder::new(fast_cfg());
    let host_a = b.add_host();
    let _host_b = b.add_nic_host(); // nic 0
    let _host_c = b.add_nic_host(); // nic 1
    let mut pod = b.build();
    pod.allocator.enable_rebalancing(RebalancePolicy::new(
        2.0,
        10_000, // bytes per telemetry window
        SimDuration::from_millis(50),
    ));

    // Two instances on host A. Local-first doesn't apply (no local NIC);
    // least-loaded placement puts one on each NIC... so force the hot
    // pattern: both leases small enough that nic 0 takes the first, nic 1
    // the second, then only instance 0 gets traffic. To create a *hot*
    // NIC with >1 instance, launch three: nic0 gets #1 and #3.
    let i0 = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let i1 = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let _ = i1;
    let i2 = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    let nic_of = |pod: &oasis_core::pod::Pod, inst: usize| {
        pod.allocator
            .state
            .instances
            .iter()
            .find(|i| i.ip == pod.instance_ip(inst))
            .map(|i| i.nic)
            .unwrap()
    };
    assert_eq!(
        nic_of(&pod, i0),
        nic_of(&pod, i2),
        "least-loaded alternates"
    );

    // Drive heavy traffic only to i0 and i2: their shared NIC becomes hot.
    let end = SimTime::from_millis(400);
    for (cid, inst) in [(1u64, i0), (2, i2)] {
        let p = Pinger::new(
            cid,
            pod.instance_mac(inst),
            pod.instance_ip(inst),
            SimDuration::from_micros(20),
            end - SimDuration::from_millis(20),
        );
        pod.add_endpoint(Box::new(p));
    }
    pod.run(end);

    assert!(
        pod.allocator.rebalance_migrations >= 1,
        "hot NIC must shed load"
    );
    // The two heavy instances no longer share a NIC.
    assert_ne!(
        nic_of(&pod, i0),
        nic_of(&pod, i2),
        "rebalancer separates the heavy hitters"
    );
    let HostDriver::Oasis(fe) = &pod.drivers[host_a] else {
        unreachable!()
    };
    assert!(fe.stats.migrations >= 1);
}

#[test]
fn rebalancer_idle_pod_does_nothing() {
    let mut b = PodBuilder::new(fast_cfg());
    let host_a = b.add_host();
    let _b = b.add_nic_host();
    let _c = b.add_nic_host();
    let mut pod = b.build();
    pod.allocator.enable_rebalancing(RebalancePolicy::new(
        2.0,
        10_000,
        SimDuration::from_millis(50),
    ));
    pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    pod.run(SimTime::from_millis(300));
    assert_eq!(
        pod.allocator.rebalance_migrations, 0,
        "no load, no migrations (min_load threshold)"
    );
}
