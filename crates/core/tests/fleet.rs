//! Multi-pod fleet integration: cross-pod UDP traffic over uplinks, with
//! byte-identical output at every `OASIS_SHARD_THREADS` setting.
//!
//! Two pods are joined by one Ethernet uplink. A client endpoint on pod 0
//! talks to an instance on pod 1 (and vice versa), so every request and
//! reply crosses the uplink and therefore exercises the conservative
//! window exchange. The whole simulation is then repeated at several
//! worker thread counts and the canonical metric snapshots must compare
//! equal byte for byte.

use std::collections::VecDeque;

use oasis_core::config::OasisConfig;
use oasis_core::fleet::Fleet;
use oasis_core::instance::{AppKind, UdpApp, UdpResponse};
use oasis_core::pod::{Endpoint, PodBuilder};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{Frame, UdpPacket};
use oasis_sim::time::{SimDuration, SimTime};

struct Echo;

impl UdpApp for Echo {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse> {
        vec![UdpResponse {
            delay: SimDuration::from_micros(1),
            dst: src,
            src_port: dst_port,
            payload: payload.to_vec(),
        }]
    }
}

/// Paced UDP client endpoint (same shape as the pod_echo one).
struct Client {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    gap: SimDuration,
    remaining: u32,
    next_send: SimTime,
    seq: u64,
    inbox: VecDeque<(SimTime, Frame)>,
    echoes: u64,
}

impl Client {
    fn new(id: u64, dst_mac: MacAddr, dst_ip: Ipv4Addr, gap: SimDuration, count: u32) -> Self {
        Client {
            mac: MacAddr::client(id),
            ip: Ipv4Addr::client(id as u32),
            dst_mac,
            dst_ip,
            gap,
            remaining: count,
            next_send: SimTime::from_micros(10),
            seq: 0,
            inbox: VecDeque::new(),
            echoes: 0,
        }
    }
}

impl Endpoint for Client {
    fn next_time(&self) -> SimTime {
        let mut t = SimTime::MAX;
        if self.remaining > 0 {
            t = t.min(self.next_send);
        }
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (_, frame) = self.inbox.pop_front().unwrap();
            if let Some(udp) = UdpPacket::parse(&frame) {
                if udp.dst_ip == self.ip {
                    self.echoes += 1;
                }
            }
        }
        let mut out = Vec::new();
        if self.remaining > 0 && now >= self.next_send {
            let mut payload = vec![0u8; 64];
            payload[..8].copy_from_slice(&self.seq.to_le_bytes());
            out.push(
                UdpPacket {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 50000,
                    dst_port: 7,
                    payload: bytes::Bytes::from(payload),
                }
                .encode(),
            );
            self.seq += 1;
            self.remaining -= 1;
            self.next_send = now + self.gap;
        }
        out
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}

/// Build the two-pod scenario and run it to 4 ms with `threads` workers.
/// Returns (per-pod instance datagram counts, fleet snapshot JSON).
fn run_cross_pod(threads: usize) -> (Vec<u64>, String) {
    let mut fleet = Fleet::with_threads(threads);

    let mut pods = Vec::new();
    for site in 0..2u32 {
        // Distinct sites: pods in one fleet share an L2 domain over the
        // uplinks, so their MAC/IP numbering must not collide.
        let mut b = PodBuilder::new(OasisConfig::default()).site(site);
        let inst_host = b.add_host();
        let _nic_host = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(inst_host, AppKind::Udp(Box::new(Echo)), 10_000);
        pods.push((pod, inst));
    }

    // Cross wiring: the client attached to each pod targets the *other*
    // pod's instance, so all request/reply traffic crosses the uplink.
    let (mac0, ip0) = (
        pods[0].0.instance_mac(pods[0].1),
        pods[0].0.instance_ip(pods[0].1),
    );
    let (mac1, ip1) = (
        pods[1].0.instance_mac(pods[1].1),
        pods[1].0.instance_ip(pods[1].1),
    );
    pods[0].0.add_endpoint(Box::new(Client::new(
        1,
        mac1,
        ip1,
        SimDuration::from_micros(50),
        30,
    )));
    pods[1].0.add_endpoint(Box::new(Client::new(
        2,
        mac0,
        ip0,
        SimDuration::from_micros(70),
        20,
    )));

    let insts: Vec<usize> = pods.iter().map(|(_, i)| *i).collect();
    for (pod, _) in pods {
        fleet.add_pod(pod).expect("distinct sites");
    }
    fleet
        .connect(0, 1, oasis_cxl::topology::UPLINK_LATENCY)
        .expect("first uplink");

    fleet.run(SimTime::from_millis(4)).expect("fleet run");

    let served: Vec<u64> = insts
        .iter()
        .enumerate()
        .map(|(p, &i)| fleet.pod(p).instances[i].stats.udp_datagrams)
        .collect();
    (served, fleet.metrics_snapshot().to_json())
}

#[test]
fn cross_pod_echo_crosses_the_uplink() {
    let (served, _) = run_cross_pod(1);
    // Pod 1's instance serves pod 0's 30 requests and vice versa — traffic
    // cannot complete without the uplink.
    assert_eq!(served, vec![20, 30]);
}

#[test]
fn fleet_output_is_byte_identical_at_any_thread_count() {
    let (served1, snap1) = run_cross_pod(1);
    for threads in [2, 8] {
        let (served, snap) = run_cross_pod(threads);
        assert_eq!(
            served, served1,
            "served counts diverge at {threads} threads"
        );
        assert_eq!(snap, snap1, "snapshot diverges at {threads} threads");
    }
}

#[test]
fn disconnected_pods_run_independently() {
    // No uplinks: each pod serves only its local client; the fleet must
    // still run (unbounded lookahead) rather than erroring.
    let mut fleet = Fleet::new();
    for site in 0..2u32 {
        let mut b = PodBuilder::new(OasisConfig::default()).site(site);
        let inst_host = b.add_host();
        let _nic_host = b.add_nic_host();
        let mut pod = b.build();
        let inst = pod.launch_instance(inst_host, AppKind::Udp(Box::new(Echo)), 10_000);
        let mac = pod.instance_mac(inst);
        let ip = pod.instance_ip(inst);
        pod.add_endpoint(Box::new(Client::new(
            9,
            mac,
            ip,
            SimDuration::from_micros(40),
            10,
        )));
        fleet.add_pod(pod).expect("distinct sites");
    }
    fleet.run(SimTime::from_millis(2)).expect("fleet run");
    for p in 0..fleet.pods() {
        assert_eq!(fleet.pod(p).instances[0].stats.udp_datagrams, 10);
        assert_eq!(fleet.pod(p).now(), SimTime::from_millis(2));
    }
}

#[test]
fn zero_latency_uplink_is_a_deterministic_error() {
    let mut fleet = Fleet::new();
    for site in 0..2u32 {
        let mut b = PodBuilder::new(OasisConfig::default()).site(site);
        b.add_nic_host();
        fleet.add_pod(b.build()).expect("distinct sites");
    }
    fleet
        .connect(0, 1, SimDuration::ZERO)
        .expect("connect itself accepts any latency");
    let err = fleet.run(SimTime::from_millis(1)).unwrap_err();
    assert!(err.to_string().contains("lookahead"), "got: {err}");
}

/// A minimal pod with one instance-capable host and one NIC host.
fn small_pod(site: u32) -> oasis_core::pod::Pod {
    let mut b = PodBuilder::new(OasisConfig::default()).site(site);
    b.add_host();
    b.add_nic_host();
    b.build()
}

#[test]
fn duplicate_site_is_a_typed_error() {
    use oasis_core::error::FleetError;
    let mut fleet = Fleet::new();
    fleet.add_pod(small_pod(3)).expect("first pod");
    match fleet.add_pod(small_pod(3)) {
        Err(FleetError::DuplicateSite { site: 3, pod: 0 }) => {}
        other => panic!("expected DuplicateSite, got {other:?}"),
    }
    // The rejected pod must not have been registered.
    assert_eq!(fleet.pods(), 1);
}

#[test]
fn self_and_duplicate_links_are_typed_errors() {
    use oasis_core::error::FleetError;
    let mut fleet = Fleet::new();
    fleet.add_pod(small_pod(0)).unwrap();
    fleet.add_pod(small_pod(1)).unwrap();
    assert_eq!(
        fleet.connect(0, 0, SimDuration::from_micros(2)),
        Err(FleetError::SelfLink { pod: 0 })
    );
    assert_eq!(
        fleet.connect(0, 7, SimDuration::from_micros(2)),
        Err(FleetError::NoSuchPod(7))
    );
    fleet.connect(0, 1, SimDuration::from_micros(2)).unwrap();
    // Either direction counts as the same link.
    assert_eq!(
        fleet.connect(1, 0, SimDuration::from_micros(5)),
        Err(FleetError::DuplicateLink { a: 0, b: 1 })
    );
}

#[test]
fn control_plane_commands_drive_live_placement() {
    use oasis_core::allocator::{FleetCommand, FleetResponse};
    use oasis_core::error::FleetError;

    let mut fleet = Fleet::new();
    for site in 0..2u32 {
        fleet.add_pod(small_pod(site)).unwrap();
    }
    fleet
        .connect(0, 1, oasis_cxl::topology::UPLINK_LATENCY)
        .unwrap();

    // Topology commands may not bypass the wiring path.
    assert_eq!(
        fleet.execute(
            SimTime::ZERO,
            &FleetCommand::AddLink {
                a: 0,
                b: 1,
                latency_ns: 1
            }
        ),
        Err(FleetError::TopologyManaged)
    );

    // Create through the typed command API: the allocator picks the pod
    // and host, and a live instance is launched there.
    let (id, pod, inst) = fleet
        .create_instance(
            SimTime::ZERO,
            AppKind::Udp(Box::new(Echo)),
            8,
            32,
            0,
            10_000,
            None,
        )
        .expect("fleet has capacity");
    assert!(pod < 2);
    assert_eq!(fleet.pod(pod).instances[inst].stats.rx_frames, 0);

    // Resize and query flow through the same replicated service.
    let resized = fleet
        .execute(
            SimTime::from_micros(1),
            &FleetCommand::ResizeInstance {
                at: 1_000,
                id,
                nic_mbps: 20_000,
                ssd: 0,
            },
        )
        .unwrap();
    assert_eq!(resized, FleetResponse::Resized { id });

    let FleetResponse::State(report) = fleet
        .execute(SimTime::from_micros(2), &FleetCommand::QueryFleetState)
        .unwrap()
    else {
        panic!("expected a state report");
    };
    assert_eq!(report.live, 1);
    assert_eq!(report.pods.len(), 2);
    assert_eq!(report.pods[pod].nic_mbps_used, 20_000);

    // Kill releases fleet capacity and the log stays consistent.
    fleet
        .execute(
            SimTime::from_micros(3),
            &FleetCommand::KillInstance { at: 3_000, id },
        )
        .unwrap();
    assert_eq!(
        fleet.execute(
            SimTime::from_micros(4),
            &FleetCommand::KillInstance { at: 4_000, id }
        ),
        Err(FleetError::NoSuchInstance(id))
    );
    assert!(fleet.allocator().consistent_with_log());

    // The fleet snapshot carries the control-plane counters.
    let snap = fleet.metrics_snapshot();
    assert_eq!(snap.counter("core.fleet_pods", 0), 2);
    assert_eq!(snap.counter("core.fleet_instances_placed", 0), 1);
    assert_eq!(snap.counter("core.fleet_instances_killed", 0), 1);
}

#[test]
fn live_migration_commits_over_the_cxl_path() {
    use oasis_core::allocator::TransferPath;

    let mut fleet = Fleet::new();
    for site in 0..2u32 {
        fleet.add_pod(small_pod(site)).unwrap();
    }
    fleet
        .connect(0, 1, oasis_cxl::topology::UPLINK_LATENCY)
        .unwrap();
    let (id, src_pod, _) = fleet
        .create_instance(SimTime::ZERO, AppKind::None, 8, 32, 0, 10_000, Some(0))
        .expect("pod 0 has capacity");
    assert_eq!(src_pod, 0);

    let outcome = fleet
        .migrate_instance(SimTime::from_micros(5), id, 1, TransferPath::Cxl)
        .expect("migration commits");
    assert!(outcome.rounds >= 1);
    assert!(
        outcome.bytes_moved >= 32u64 << 30,
        "moves at least the state"
    );

    let st = &fleet.allocator().state;
    let inst = st.instances[id as usize].expect("instance survives");
    assert_eq!(inst.pod, 1, "instance re-homed to the target pod");
    assert!(st.migration(id).is_none(), "ticket closed");
    assert_eq!(st.migrations_committed, 1);
    assert!(fleet.allocator().consistent_with_log());

    // Transfer metrics land on the CXL tag; the NIC tag stays absent.
    let snap = fleet.metrics_snapshot();
    assert_eq!(snap.counter("core.fleet_migrations_started", 0), 1);
    assert_eq!(snap.counter("core.fleet_migrations_committed", 0), 1);
    assert_eq!(
        snap.counter("core.fleet_migration_rounds", 0),
        outcome.rounds as u64
    );
    assert_eq!(
        snap.counter("core.fleet_migration_bytes", 0),
        outcome.bytes_moved
    );
    assert_eq!(snap.counter("core.fleet_migration_bytes", 1), 0);
}

#[test]
fn failed_target_launch_rolls_the_migration_back() {
    use oasis_core::allocator::TransferPath;
    use oasis_core::error::FleetError;

    let mut fleet = Fleet::new();
    fleet.add_pod(small_pod(0)).unwrap();
    // Target pod with two NICs: fleet-level capacity is their sum, but
    // pod-local admission needs a single NIC with the whole lease spare.
    let mut b = PodBuilder::new(OasisConfig::default()).site(1);
    b.add_host();
    b.add_nic_host();
    b.add_nic_host();
    fleet.add_pod(b.build()).unwrap();
    fleet
        .connect(0, 1, oasis_cxl::topology::UPLINK_LATENCY)
        .unwrap();

    let (id, _, _) = fleet
        .create_instance(SimTime::ZERO, AppKind::None, 8, 32, 0, 50_000, Some(0))
        .expect("pod 0 has capacity");
    // Fragment the target: each NIC ends up 60/100 Gbit/s used, so pod 1
    // has 80 Gbit/s free in aggregate but no NIC with 50 Gbit/s spare.
    for _ in 0..2 {
        fleet
            .create_instance(SimTime::ZERO, AppKind::None, 8, 32, 0, 60_000, Some(1))
            .expect("pod 1 has aggregate capacity");
    }

    let err = fleet
        .migrate_instance(SimTime::from_micros(5), id, 1, TransferPath::Nic)
        .expect_err("target launch must fail on fragmented NICs");
    assert!(matches!(err, FleetError::Pod(_)), "got: {err:?}");

    // Compensating rollback: the ticket is gone, the target reservation
    // released, and the source never stopped serving.
    let st = &fleet.allocator().state;
    let inst = st.instances[id as usize].expect("instance survives");
    assert_eq!(inst.pod, 0, "source keeps the instance");
    assert!(st.migration(id).is_none(), "ticket rolled back");
    assert_eq!(st.migrations_aborted, 1);
    assert!(fleet.allocator().consistent_with_log());
}
