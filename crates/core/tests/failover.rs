//! NIC failover (§3.3.3) and graceful migration (§3.3.4) integration tests.
//!
//! The §5.3 failure injection is reproduced exactly: the switch port of the
//! serving NIC is disabled; the NIC reports loss of carrier `link_detect`
//! later; the backend's link monitor tells the allocator over message
//! channels; the allocator reroutes affected instances to the pod's backup
//! NIC; the frontend borrows the failed NIC's MAC so the switch re-points
//! RX immediately. Timings are scaled down (5 ms detection instead of the
//! production 35 ms) to keep the debug-mode test fast; the full-scale
//! timeline is measured by the `fig13_failover_udp` experiment binary.

use std::collections::VecDeque;

use oasis_core::config::OasisConfig;
use oasis_core::instance::{AppKind, UdpApp, UdpResponse};
use oasis_core::pod::{Endpoint, HostDriver, PodBuilder};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{Frame, GarpPacket, UdpPacket};
use oasis_sim::time::{SimDuration, SimTime};

struct Echo;
impl UdpApp for Echo {
    fn on_datagram(
        &mut self,
        _now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse> {
        vec![UdpResponse {
            delay: SimDuration::from_micros(1),
            dst: src,
            src_port: dst_port,
            payload: payload.to_vec(),
        }]
    }
}

/// Minimal paced echo client tracking per-request outcomes.
struct Client {
    mac: MacAddr,
    ip: Ipv4Addr,
    dst_mac: MacAddr,
    dst_ip: Ipv4Addr,
    gap: SimDuration,
    until: SimTime,
    next_send: SimTime,
    sent_at: Vec<SimTime>,
    answered: Vec<bool>,
    inbox: VecDeque<(SimTime, Frame)>,
}

impl Client {
    fn new(dst_mac: MacAddr, dst_ip: Ipv4Addr, gap: SimDuration, until: SimTime) -> Self {
        Client {
            mac: MacAddr::client(1),
            ip: Ipv4Addr::client(1),
            dst_mac,
            dst_ip,
            gap,
            until,
            next_send: SimTime::from_micros(100),
            sent_at: Vec::new(),
            answered: Vec::new(),
            inbox: VecDeque::new(),
        }
    }

    fn loss_window(&self) -> Option<(SimTime, SimTime)> {
        let lost: Vec<SimTime> = self
            .sent_at
            .iter()
            .zip(&self.answered)
            .filter(|(_, &a)| !a)
            .map(|(&t, _)| t)
            .collect();
        Some((*lost.first()?, *lost.last()?))
    }
}

impl Endpoint for Client {
    fn next_time(&self) -> SimTime {
        let mut t = if self.next_send <= self.until {
            self.next_send
        } else {
            SimTime::MAX
        };
        if let Some(&(at, _)) = self.inbox.front() {
            t = t.min(at);
        }
        t
    }

    fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        while let Some(&(at, _)) = self.inbox.front() {
            if at > now {
                break;
            }
            let (_, frame) = self.inbox.pop_front().unwrap();
            if let Some(garp) = GarpPacket::parse(&frame) {
                if garp.sender_ip == self.dst_ip {
                    self.dst_mac = garp.sender_mac;
                }
                continue;
            }
            if let Some(udp) = UdpPacket::parse(&frame) {
                if udp.dst_ip == self.ip && udp.payload.len() >= 8 {
                    let seq = u64::from_le_bytes(udp.payload[..8].try_into().unwrap());
                    self.answered[seq as usize] = true;
                }
            }
        }
        let mut out = Vec::new();
        while self.next_send <= now && self.next_send <= self.until {
            let seq = self.sent_at.len() as u64;
            self.sent_at.push(now);
            self.answered.push(false);
            let mut payload = vec![0u8; 64];
            payload[..8].copy_from_slice(&seq.to_le_bytes());
            out.push(
                UdpPacket {
                    src_mac: self.mac,
                    dst_mac: self.dst_mac,
                    src_ip: self.ip,
                    dst_ip: self.dst_ip,
                    src_port: 40000,
                    dst_port: 7,
                    payload: bytes::Bytes::from(payload),
                }
                .encode(),
            );
            self.next_send += self.gap;
        }
        out
    }

    fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbox.push_back((at, frame));
    }
}

fn test_cfg() -> OasisConfig {
    OasisConfig {
        link_detect: SimDuration::from_millis(5),
        migration_grace: SimDuration::from_millis(20),
        ..Default::default()
    }
}

#[test]
fn failover_to_backup_nic_with_mac_borrowing() {
    let mut b = PodBuilder::new(test_cfg());
    let host_a = b.add_host(); // instance host
    let host_b = b.add_nic_host(); // serving NIC (nic 0)
    let host_c = b.add_nic_host(); // backup NIC (nic 1)
    let mut pod = b.backup_nic_on(host_c).build();

    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    assert_eq!(pod.instance_mac(inst), pod.nic_mac(0), "served by nic 0");

    let fail_at = SimTime::from_millis(20);
    let end = SimTime::from_millis(60);
    let client = Client::new(
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        SimDuration::from_micros(200),
        end - SimDuration::from_millis(5),
    );
    let cid = pod.add_endpoint(Box::new(client));
    pod.schedule_nic_failure(fail_at, 0);
    pod.run(end);

    // The failover happened: allocator marked nic 0 failed and rerouted.
    assert!(pod.allocator.state.nics[0].as_ref().unwrap().failed);
    assert_eq!(pod.allocator.failovers, 1);
    assert_eq!(pod.allocator.reroutes_sent, 1);
    let HostDriver::Oasis(fe) = &pod.drivers[host_a] else {
        unreachable!()
    };
    assert_eq!(fe.stats.reroutes, 1);
    assert_eq!(fe.serving_nic(pod.instance_ip(inst)), Some(1));

    // Loss is confined to a window starting at the failure and ending
    // within detection time plus control-plane slack.
    let ep = &pod.endpoints[cid];
    let _ = ep;
    // (Read the client back out through a raw pointer-free path: we kept no
    // handle, so recompute from a second, identical run below instead.)
    let _ = host_b;
}

#[test]
fn failover_loss_window_matches_detection_time() {
    // Same scenario, but keep a stats view by re-running with a handle-less
    // client we can interrogate through Pod::endpoints using Any-free
    // composition: store results in thread-local-free fashion via a probe.
    // Simplest: rebuild the client inline and move measurement into this
    // scope using a raw Box + pointer.
    let mut b = PodBuilder::new(test_cfg());
    let host_a = b.add_host();
    let _host_b = b.add_nic_host();
    let host_c = b.add_nic_host();
    let mut pod = b.backup_nic_on(host_c).build();
    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);

    let fail_at = SimTime::from_millis(20);
    let end = SimTime::from_millis(80);
    let client = Box::new(Client::new(
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        SimDuration::from_micros(200),
        end - SimDuration::from_millis(5),
    ));
    let client_ptr: *const Client = &*client;
    pod.add_endpoint(client);
    pod.schedule_nic_failure(fail_at, 0);
    pod.run(end);

    // Safety: the pod owns the box; it is alive until `pod` drops, and we
    // only read after `run` returned (single-threaded).
    let client: &Client = unsafe { &*client_ptr };
    let sent = client.sent_at.len();
    let answered = client.answered.iter().filter(|&&a| a).count();
    assert!(sent > 250, "sent {sent}");
    let (first_loss, last_loss) = client.loss_window().expect("failure must lose packets");
    assert!(
        first_loss >= fail_at - SimDuration::from_millis(1),
        "losses must not precede the failure: {first_loss}"
    );
    let window = last_loss - first_loss;
    // Interruption ~= link_detect (5ms) + control plane slack; §5.3 measures
    // 38ms with the production 35ms detection time.
    assert!(
        window >= SimDuration::from_millis(4),
        "window {window} too short for 5ms detection"
    );
    assert!(
        window <= SimDuration::from_millis(9),
        "window {window} too long: failover stalled"
    );
    // Traffic fully recovers after the failover.
    let lost_after = client
        .sent_at
        .iter()
        .zip(&client.answered)
        .filter(|(&t, &a)| t > last_loss && !a)
        .count();
    assert_eq!(lost_after, 0, "no loss after recovery");
    // Overall: everything outside the window was answered.
    let expected_lost = ((window.as_nanos() / 200_000) as usize).max(1);
    let lost = sent - answered;
    assert!(
        lost <= expected_lost + 10,
        "lost {lost} vs window-expected {expected_lost}"
    );
}

#[test]
fn graceful_migration_no_packet_loss() {
    let mut b = PodBuilder::new(test_cfg());
    let host_a = b.add_host();
    let _host_b = b.add_nic_host(); // nic 0 (serving)
    let _host_c = b.add_nic_host(); // nic 1 (target)
    let mut pod = b.build();
    let inst = pod.launch_instance(host_a, AppKind::Udp(Box::new(Echo)), 10_000);
    assert_eq!(pod.instance_mac(inst), pod.nic_mac(0));

    let end = SimTime::from_millis(70);
    let client = Box::new(Client::new(
        pod.instance_mac(inst),
        pod.instance_ip(inst),
        SimDuration::from_micros(200),
        end - SimDuration::from_millis(10),
    ));
    let client_ptr: *const Client = &*client;
    pod.add_endpoint(client);
    pod.schedule_migration(SimTime::from_millis(20), pod.instance_ip(inst), 1);
    pod.run(end);

    let client: &Client = unsafe { &*client_ptr };
    let lost = client.answered.iter().filter(|&&a| !a).count();
    assert_eq!(lost, 0, "graceful migration must not lose packets (§3.3.4)");

    // The instance now answers on nic 1's MAC, announced via GARP.
    assert_eq!(pod.instance_mac(inst), pod.nic_mac(1));
    assert_eq!(client.dst_mac, pod.nic_mac(1), "client learned the new MAC");
    let HostDriver::Oasis(fe) = &pod.drivers[host_a] else {
        unreachable!()
    };
    assert_eq!(fe.stats.migrations, 1);
    assert_eq!(fe.serving_nic(pod.instance_ip(inst)), Some(1));
    // After the grace period the old NIC's registration was dropped.
    assert_eq!(pod.backends[0].registration_count(), 0);
    assert_eq!(pod.backends[1].registration_count(), 1);
}
