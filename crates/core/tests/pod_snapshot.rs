//! Pod-level checkpoint/restore: a snapshot taken at a quiesce point
//! restores into an identically built pod byte-identically, and the
//! restored pod keeps running (ISSUE 10).

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_core::snapshot::SnapshotError;
use oasis_sim::time::SimTime;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

fn block(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

/// A pod with a device-less instance host plus a NIC+SSD+accel host; both
/// the snapshot source and the restore target are built through here so
/// their topology is identical by construction.
fn build_pod() -> (Pod, usize) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let host_b = b.add_nic_host();
    b.add_ssd(host_b, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(host_a, AppKind::None, 1_000);
    let _ = inst;
    (pod, host_a)
}

/// Drive some storage traffic so queues, dedup windows, and completion
/// caches hold real state, then drain it (quiesce point).
fn run_traffic(pod: &mut Pod, host: usize) {
    let inst = 0;
    let vol = pod.create_volume(inst, 32).expect("capacity");
    for lba in 0..6 {
        pod.volume_write(vol, lba, &block(lba as u8)).unwrap();
    }
    pod.run(SimTime::from_millis(3));
    let done = pod.take_storage_completions(host);
    assert_eq!(done.len(), 6);
    pod.volume_read(vol, 2, 1).unwrap();
    pod.run(SimTime::from_millis(5));
    assert_eq!(pod.take_storage_completions(host).len(), 1);
}

#[test]
fn snapshot_restores_byte_identically() {
    let (mut src, host) = build_pod();
    run_traffic(&mut src, host);
    let snap = src.snapshot();

    // A freshly built pod differs (no traffic has run)...
    let (mut dst, _) = build_pod();
    assert_ne!(dst.snapshot(), snap);

    // ...until the snapshot is restored; then re-snapshotting reproduces
    // the source bytes exactly.
    dst.restore(&snap).expect("restore succeeds");
    assert_eq!(dst.snapshot(), snap, "restore → snapshot is byte-identical");
}

#[test]
fn restored_pod_keeps_running() {
    let (mut src, host) = build_pod();
    run_traffic(&mut src, host);
    let snap = src.snapshot();

    let (mut dst, _) = build_pod();
    // The target needs the same volume table (allocator state is restored,
    // but the Pod-side volume handle comes from the carve API).
    let vol = dst.create_volume(0, 32).expect("capacity");
    dst.restore(&snap).expect("restore succeeds");

    // The restored pod serves I/O: retry/dedup state and command-id
    // sequences continue from the checkpoint instead of colliding. (SSD
    // media contents are device state outside the snapshot, so write fresh
    // data before reading it back.)
    dst.volume_write(vol, 3, &block(9)).unwrap();
    dst.run(SimTime::from_millis(8));
    let done = dst.take_storage_completions(host);
    assert_eq!(done.len(), 1);
    assert!(done[0].status.is_ok());
    dst.volume_read(vol, 3, 1).unwrap();
    dst.run(SimTime::from_millis(10));
    let done = dst.take_storage_completions(host);
    assert_eq!(done.len(), 1);
    assert!(done[0].status.is_ok());
    assert_eq!(done[0].data.as_deref(), Some(&block(9)[..]));
}

#[test]
fn restore_rejects_mismatched_topology() {
    let (mut src, host) = build_pod();
    run_traffic(&mut src, host);
    let snap = src.snapshot();

    // A pod with a different host count must refuse the snapshot with a
    // typed error, never panic.
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let _h1 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut other = b.build();
    let _ = other.launch_instance(h0, AppKind::None, 1_000);
    assert!(matches!(
        other.restore(&snap),
        Err(SnapshotError::Corrupt("pod host count"))
    ));
}

#[test]
fn restore_rejects_garbage() {
    let (mut pod, _) = build_pod();
    assert!(matches!(
        pod.restore(b"not a snapshot"),
        Err(SnapshotError::BadMagic)
    ));
    let mut truncated = pod.snapshot();
    truncated.truncate(truncated.len() / 2);
    assert!(pod.restore(&truncated).is_err());
}
