//! Pod-level storage-engine integration: pooled SSD capacity, volumes, and
//! concurrent network + storage traffic over the same CXL pool.

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::command::NvmeStatus;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

fn block(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

#[test]
fn instance_without_local_ssd_uses_remote_volume() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host(); // instance host, no devices
    let host_b = b.add_nic_host(); // device host
    b.add_ssd(host_b, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(host_a, AppKind::None, 1_000);

    // The allocator carves a volume on the remote SSD.
    let vol = pod.create_volume(inst, 64).expect("capacity available");
    assert_eq!(vol.ssd, 0);
    assert_eq!(
        pod.allocator.state.ssds[0]
            .as_ref()
            .unwrap()
            .allocated_blocks,
        64
    );

    // Write and read back across the host boundary.
    let data = block(0x5a);
    pod.volume_write(vol, 3, &data).expect("write accepted");
    pod.run(SimTime::from_millis(2));
    let done = pod.take_storage_completions(host_a);
    assert_eq!(done.len(), 1);
    assert!(done[0].status.is_ok());

    pod.volume_read(vol, 3, 1).expect("read accepted");
    pod.run(SimTime::from_millis(4));
    let done = pod.take_storage_completions(host_a);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].data.as_deref(), Some(&data[..]));
}

#[test]
fn volumes_isolate_instances_on_shared_ssd() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let h1 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let i0 = pod.launch_instance(h0, AppKind::None, 1_000);
    let i1 = pod.launch_instance(h1, AppKind::None, 1_000);

    let v0 = pod.create_volume(i0, 16).unwrap();
    let v1 = pod.create_volume(i1, 16).unwrap();
    // Disjoint carving out of the same device.
    assert_eq!(v0.ssd, v1.ssd);
    assert!(
        v0.base_block + v0.blocks <= v1.base_block || v1.base_block + v1.blocks <= v0.base_block
    );

    // Both write "their" block 0; each reads back its own data.
    pod.volume_write(v0, 0, &block(0xaa)).unwrap();
    pod.volume_write(v1, 0, &block(0xbb)).unwrap();
    pod.run(SimTime::from_millis(2));
    assert_eq!(pod.take_storage_completions(h0).len(), 1);
    assert_eq!(pod.take_storage_completions(h1).len(), 1);
    pod.volume_read(v0, 0, 1).unwrap();
    pod.volume_read(v1, 0, 1).unwrap();
    pod.run(SimTime::from_millis(4));
    assert_eq!(
        pod.take_storage_completions(h0)[0].data.as_deref(),
        Some(&block(0xaa)[..])
    );
    assert_eq!(
        pod.take_storage_completions(h1)[0].data.as_deref(),
        Some(&block(0xbb)[..])
    );
}

#[test]
fn volume_bounds_enforced() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 8).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pod.volume_read(vol, 8, 1);
    }));
    assert!(result.is_err(), "out-of-volume access must panic");
}

#[test]
fn ssd_capacity_exhaustion_refuses_volumes() {
    let cfg = SsdConfig {
        blocks_per_ns: 64,
        ..Default::default()
    };
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, cfg);
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    assert!(pod.create_volume(inst, 48).is_some());
    assert!(pod.create_volume(inst, 48).is_none(), "only 16 blocks left");
    assert!(pod.create_volume(inst, 16).is_some());
}

#[test]
fn ssd_failure_propagates_through_pod() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 8).unwrap();

    pod.set_ssd_failed(0, true);
    pod.volume_read(vol, 0, 1).unwrap();
    pod.run(SimTime::from_millis(2));
    let done = pod.take_storage_completions(h0);
    assert_eq!(done[0].status, NvmeStatus::DeviceFailure);

    pod.set_ssd_failed(0, false);
    pod.volume_read(vol, 0, 1).unwrap();
    pod.run(SimTime::from_millis(4));
    assert!(pod.take_storage_completions(h0)[0].status.is_ok());
}

#[test]
fn network_and_storage_share_the_pool() {
    // The paper's end state: one pod, one pool, NICs and SSDs both pooled.
    use oasis_core::instance::{UdpApp, UdpResponse};
    use oasis_net::addr::Ipv4Addr;

    struct Echo;
    impl UdpApp for Echo {
        fn on_datagram(
            &mut self,
            _now: SimTime,
            src: (Ipv4Addr, u16),
            dst_port: u16,
            payload: &[u8],
        ) -> Vec<UdpResponse> {
            vec![UdpResponse {
                delay: SimDuration::from_micros(1),
                dst: src,
                src_port: dst_port,
                payload: payload.to_vec(),
            }]
        }
    }

    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::Udp(Box::new(Echo)), 10_000);
    let vol = pod.create_volume(inst, 32).unwrap();

    // Storage I/O in flight while network traffic flows.
    for lba in 0..8 {
        pod.volume_write(vol, lba, &block(lba as u8)).unwrap();
    }
    pod.run(SimTime::from_millis(3));
    let done = pod.take_storage_completions(h0);
    assert_eq!(done.len(), 8);
    assert!(done.iter().all(|r| r.status.is_ok()));
    // The NIC datapath still works (drivers multiplexed fine).
    assert!(pod.nics[0].stats.tx_frames == 0); // no clients attached
    assert_eq!(pod.allocator.state.volumes.len(), 1);
}
