//! Storage-engine failover integration tests (§3.4 recovery), mirroring
//! the network engine's `failover_loss_window_matches_detection_time`:
//! in-flight SSD commands survive injected device timeouts and a host
//! crash/restart, are retried, and complete **exactly once**.

use std::collections::HashMap;

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_sim::fault::{FaultKind, FaultPlan, SsdFaultMode};
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

fn block(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

/// Commands submitted into an SSD timeout window are silently swallowed by
/// the device; the frontend's retry timers resubmit them until the window
/// closes, and every command completes exactly once with success.
#[test]
fn ssd_timeout_window_commands_retried_and_completed_exactly_once() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 64).unwrap();

    // The device swallows everything submitted in [1ms, 11ms].
    let plan = FaultPlan::seeded(7).at(
        SimTime::from_millis(1),
        FaultKind::SsdFault {
            ssd: 0,
            mode: SsdFaultMode::Timeout,
            duration: SimDuration::from_millis(10),
        },
    );
    pod.install_fault_plan(&plan);
    pod.run(SimTime::from_millis(2));

    // Eight writes land inside the window: first attempts are swallowed.
    let mut cids = Vec::new();
    for lba in 0..8 {
        cids.push(pod.volume_write(vol, lba, &block(lba as u8)).unwrap());
    }
    pod.run(SimTime::from_millis(60));

    let done = pod.take_storage_completions(h0);
    let mut seen: HashMap<u16, u32> = HashMap::new();
    for r in &done {
        assert!(r.status.is_ok(), "cid {} failed: {:?}", r.cid, r.status);
        *seen.entry(r.cid).or_insert(0) += 1;
    }
    for cid in &cids {
        assert_eq!(
            seen.get(cid),
            Some(&1),
            "cid {cid} must complete exactly once"
        );
    }
    assert_eq!(done.len(), cids.len());
    let fe = pod.storage_frontends[h0].as_ref().unwrap();
    assert!(fe.stats.retries > 0, "the window must force retries");
    assert_eq!(
        fe.stats.retry_exhausted, 0,
        "the budget outlives the window"
    );
    assert!(
        pod.ssds[0].stats.swallowed > 0,
        "first attempts were swallowed"
    );

    // The retried writes actually landed: read one back.
    pod.volume_read(vol, 3, 1).unwrap();
    pod.run(SimTime::from_millis(62));
    let done = pod.take_storage_completions(h0);
    assert_eq!(done[0].data.as_deref(), Some(&block(3)[..]));
}

/// A crash-restart of the submitting host replays its in-flight commands;
/// the backend's dedup window answers already-executed replays from its
/// completion cache, so nothing runs twice and every command completes
/// exactly once.
#[test]
fn host_restart_replays_inflight_commands_exactly_once() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(h0, AppKind::None, 1_000);
    let vol = pod.create_volume(inst, 64).unwrap();

    let mut cids = Vec::new();
    for lba in 0..4 {
        cids.push(
            pod.volume_write(vol, lba, &block(0x40 | lba as u8))
                .unwrap(),
        );
    }
    // Crash while the writes execute (the device keeps going: they finish
    // and their completions are cached at the backend); restart well after.
    pod.schedule_host_failure(SimTime::from_micros(10), h0);
    pod.schedule_host_restart(SimTime::from_micros(500), h0);
    pod.run(SimTime::from_millis(20));

    let done = pod.take_storage_completions(h0);
    let mut seen: HashMap<u16, u32> = HashMap::new();
    for r in &done {
        assert!(r.status.is_ok(), "cid {} failed: {:?}", r.cid, r.status);
        *seen.entry(r.cid).or_insert(0) += 1;
    }
    for cid in &cids {
        assert_eq!(
            seen.get(cid),
            Some(&1),
            "cid {cid} must complete exactly once"
        );
    }
    assert_eq!(done.len(), cids.len(), "no duplicate completions surface");
    // The restart really replayed, and the dedup cache answered.
    let fe = pod.storage_frontends[h0].as_ref().unwrap();
    assert_eq!(
        fe.stats.retries,
        cids.len() as u64,
        "replay resent each command"
    );
    assert!(
        pod.storage_backends[0].stats.replays_answered > 0,
        "replays answered from the completion cache, not re-executed"
    );
    // Each write executed once: the media holds exactly the written data.
    assert_eq!(pod.ssds[0].stats.writes, cids.len() as u64);
    pod.volume_read(vol, 2, 1).unwrap();
    pod.run(SimTime::from_millis(22));
    let done = pod.take_storage_completions(h0);
    assert_eq!(done[0].data.as_deref(), Some(&block(0x42)[..]));
}
