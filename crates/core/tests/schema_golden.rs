//! Golden bytes for the replicated command schemas.
//!
//! The hand-rolled encoders assign discriminant bytes in variant order, so
//! enum shape *is* the wire format: a reordered variant silently changes
//! every log entry after it. Three things pin the schema together and must
//! move together (DESIGN.md §14):
//!
//! 1. these golden byte strings,
//! 2. the `ALLOC_SCHEMA_VERSION` / `FLEET_SCHEMA_VERSION` consts, and
//! 3. the `ENUM_GOLDENS` registry in `oasis-check`, whose
//!    `schema-evolution` rule fails the build when the enum declaration
//!    drifts from the registry without a version bump.

use oasis_core::allocator::command::{ALLOC_SCHEMA_VERSION, FLEET_SCHEMA_VERSION};
use oasis_core::allocator::{AllocCommand, FleetCommand, TransferPath, ANY_POD};
use oasis_core::snapshot::SNAPSHOT_SCHEMA_VERSION;
use oasis_net::addr::Ipv4Addr;

#[test]
fn schema_versions_are_pinned() {
    // Bumping any const is a deliberate act: refresh the goldens below
    // and the `ENUM_GOLDENS` registry in the same commit.
    assert_eq!(ALLOC_SCHEMA_VERSION, 1);
    // v2 appended MigrateInstance / FinishMigration (ISSUE 10).
    assert_eq!(FLEET_SCHEMA_VERSION, 2);
    // v2 added the FleetState / ReplayCursor sections.
    assert_eq!(SNAPSHOT_SCHEMA_VERSION, 2);
}

#[test]
fn alloc_command_golden_bytes() {
    let ip = Ipv4Addr([10, 0, 0, 7]);
    let cases: Vec<(AllocCommand, Vec<u8>)> = vec![
        (
            AllocCommand::RegisterNic {
                nic: 1,
                host: 2,
                capacity_mbps: 100_000,
                backup: true,
            },
            vec![1, 1, 0, 0, 0, 2, 0, 0, 0, 160, 134, 1, 0, 1],
        ),
        (
            AllocCommand::Assign {
                ip,
                host: 2,
                nic: 1,
                lease_mbps: 8_000,
            },
            vec![2, 10, 0, 0, 7, 2, 0, 0, 0, 1, 0, 0, 0, 64, 31, 0, 0],
        ),
        (AllocCommand::Unassign { ip }, vec![3, 10, 0, 0, 7]),
        (AllocCommand::MarkFailed { nic: 9 }, vec![4, 9, 0, 0, 0]),
        (AllocCommand::MarkRepaired { nic: 9 }, vec![5, 9, 0, 0, 0]),
        (
            AllocCommand::RegisterSsd {
                ssd: 3,
                host: 2,
                capacity_blocks: 512,
            },
            vec![6, 3, 0, 0, 0, 2, 0, 0, 0, 0, 2, 0, 0],
        ),
        (
            AllocCommand::AssignVolume {
                ip,
                ssd: 3,
                base_block: 256,
                blocks: 64,
            },
            vec![7, 10, 0, 0, 7, 3, 0, 0, 0, 0, 1, 0, 0, 64, 0, 0, 0],
        ),
        (AllocCommand::ReleaseVolumes { ip }, vec![8, 10, 0, 0, 7]),
        (
            AllocCommand::MarkHostFailed { host: 5 },
            vec![9, 5, 0, 0, 0],
        ),
        (
            AllocCommand::MarkHostRestarted { host: 5 },
            vec![10, 5, 0, 0, 0],
        ),
        (
            AllocCommand::RegisterAccel { accel: 4, host: 2 },
            vec![11, 4, 0, 0, 0, 2, 0, 0, 0],
        ),
    ];
    for (cmd, golden) in cases {
        let bytes = cmd.encode();
        assert_eq!(bytes, golden, "{cmd:?} drifted from its golden encoding");
        assert_eq!(
            AllocCommand::decode(&bytes),
            Some(cmd),
            "golden bytes no longer decode"
        );
    }
}

#[test]
fn fleet_command_golden_bytes() {
    let cases: Vec<(FleetCommand, Vec<u8>)> = vec![
        (
            FleetCommand::RegisterPod {
                pod: 0,
                hosts: 4,
                vcpus_per_host: 96,
                mem_gb_per_host: 512,
                nic_mbps: 400_000,
                ssd_cap: 49_152,
            },
            vec![
                1, 0, 0, 0, 0, 4, 0, 0, 0, 96, 0, 0, 0, 0, 2, 0, 0, 128, 26, 6, 0, 0, 0, 0, 0, 0,
                192, 0, 0, 0, 0, 0, 0,
            ],
        ),
        (
            FleetCommand::AddLink {
                a: 0,
                b: 1,
                latency_ns: 600,
            },
            vec![2, 0, 0, 0, 0, 1, 0, 0, 0, 88, 2, 0, 0, 0, 0, 0, 0],
        ),
        (
            FleetCommand::CreateInstance {
                at: 1_000,
                vcpus: 8,
                mem_gb: 32,
                ssd: 200,
                nic_mbps: 16_000,
                home_pod: ANY_POD,
            },
            vec![
                3, 232, 3, 0, 0, 0, 0, 0, 0, 8, 0, 0, 0, 32, 0, 0, 0, 200, 0, 0, 0, 128, 62, 0, 0,
                255, 255, 255, 255,
            ],
        ),
        (
            FleetCommand::ResizeInstance {
                at: 2_000,
                id: 7,
                nic_mbps: 24_000,
                ssd: 400,
            },
            vec![
                4, 208, 7, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 192, 93, 0, 0, 144, 1, 0, 0,
            ],
        ),
        (
            FleetCommand::KillInstance { at: 3_000, id: 7 },
            vec![5, 184, 11, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0],
        ),
        (FleetCommand::QueryFleetState, vec![6]),
        (
            FleetCommand::MigrateInstance {
                at: 4_000,
                id: 7,
                dst_pod: 3,
                path: TransferPath::Cxl,
            },
            vec![
                7, 160, 15, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0,
            ],
        ),
        (
            FleetCommand::MigrateInstance {
                at: 4_000,
                id: 7,
                dst_pod: 3,
                path: TransferPath::Nic,
            },
            vec![
                7, 160, 15, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 1,
            ],
        ),
        (
            FleetCommand::FinishMigration {
                at: 5_000,
                id: 7,
                commit: true,
            },
            vec![8, 136, 19, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 1],
        ),
        (
            FleetCommand::FinishMigration {
                at: 5_000,
                id: 7,
                commit: false,
            },
            vec![8, 136, 19, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0],
        ),
    ];
    for (cmd, golden) in cases {
        let bytes = cmd.encode();
        assert_eq!(bytes, golden, "{cmd:?} drifted from its golden encoding");
        assert_eq!(
            FleetCommand::decode(&bytes),
            Some(cmd),
            "golden bytes no longer decode"
        );
    }
}
