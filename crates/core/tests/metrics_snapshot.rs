//! Snapshot determinism: the observability export is a pure function of
//! the simulated execution, so two identical pod runs must serialize to
//! byte-identical JSON — with or without the `obs` feature, at any
//! optimization level. This is the repo-local version of the CI job that
//! byte-diffs figure outputs.

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::metrics as m;
use oasis_core::pod::{Pod, PodBuilder};
use oasis_sim::time::SimTime;

/// Build the same two-host pod, run the same workload, snapshot.
fn run_once() -> (Pod, String) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let _nic_host = b.add_nic_host();
    let mut pod = b.build();
    let inst = pod.launch_instance(host_a, AppKind::None, 5_000);
    assert_eq!(inst, 0);
    pod.run(SimTime::from_millis(50));
    let json = pod.metrics_snapshot().to_json();
    (pod, json)
}

#[test]
fn identical_runs_export_identical_bytes() {
    let (_, a) = run_once();
    let (_, b) = run_once();
    assert_eq!(a, b, "snapshot JSON diverged between identical runs");
}

#[test]
fn snapshot_is_stable_across_repeated_reads() {
    let (pod, first) = run_once();
    // Snapshotting is a read-only observation: taking it twice from the
    // same pod must not perturb the export.
    assert_eq!(pod.metrics_snapshot().to_json(), first);
}

#[test]
fn snapshot_carries_schema_and_engine_counters() {
    let (pod, json) = run_once();
    let snap = pod.metrics_snapshot();
    assert_eq!(snap.schema, oasis_obs::SCHEMA_VERSION);
    assert!(json.starts_with("{\"schema\":"));
    // The heartbeat/control traffic of an idle pod still moves packets, so
    // the always-on export is non-trivial even with no app workload.
    assert!(!snap.counters.is_empty());
    // Spot-check a registered name round-trips through the JSON.
    assert!(json.contains(m::NET_FE_TX_PACKETS) || snap.counter(m::NET_FE_TX_PACKETS, 0) == 0);
}
