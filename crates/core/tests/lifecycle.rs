//! Device-repair and instance-teardown lifecycle.

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_net::addr::MacAddr;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::ssd::SsdConfig;

fn fast_cfg() -> OasisConfig {
    OasisConfig {
        link_detect: SimDuration::from_millis(5),
        ..Default::default()
    }
}

#[test]
fn repaired_nic_serves_new_instances() {
    let mut b = PodBuilder::new(fast_cfg());
    let host_a = b.add_host();
    let _nic_b = b.add_nic_host(); // nic 0
    let host_c = b.add_nic_host(); // nic 1 (backup)
    let mut pod = b.backup_nic_on(host_c).build();
    let _inst = pod.launch_instance(host_a, AppKind::None, 10_000);

    // Fail nic 0; the allocator marks it failed after detection.
    pod.schedule_nic_failure(SimTime::from_millis(10), 0);
    pod.run(SimTime::from_millis(40));
    assert!(pod.allocator.state.nics[0].as_ref().unwrap().failed);
    // While failed, only the backup can serve host-local demand; a remote
    // placement has nowhere to go (nic 1 is reserved as backup).
    assert!(pod
        .allocator
        .state
        .pick_nic(host_a as u32, 10_000)
        .is_none());

    // Repair: restore the port, wait for carrier, operator marks repaired.
    pod.schedule_nic_repair(SimTime::from_millis(50), 0);
    pod.run(SimTime::from_millis(70));
    pod.mark_nic_repaired(0);
    assert!(!pod.allocator.state.nics[0].as_ref().unwrap().failed);

    // New launches land on the repaired NIC again.
    let inst2 = pod.launch_instance(host_a, AppKind::None, 10_000);
    assert_eq!(
        pod.allocator
            .state
            .instances
            .iter()
            .find(|i| i.ip == pod.instance_ip(inst2))
            .unwrap()
            .nic,
        0
    );
}

#[test]
fn terminate_releases_everything() {
    let mut b = PodBuilder::new(fast_cfg());
    let host_a = b.add_host();
    let dev = b.add_nic_host();
    b.add_ssd(dev, SsdConfig::default());
    let mut pod = b.build();
    let inst = pod.launch_instance(host_a, AppKind::None, 10_000);
    let _vol = pod.create_volume(inst, 64).unwrap();

    assert_eq!(
        pod.allocator.state.nics[0].as_ref().unwrap().allocated_mbps,
        10_000
    );
    assert_eq!(
        pod.allocator.state.ssds[0]
            .as_ref()
            .unwrap()
            .allocated_blocks,
        64
    );
    assert_eq!(pod.backends[0].registration_count(), 1);
    assert_eq!(pod.nics[0].flow_count(), 1);

    pod.terminate_instance(inst);

    // NIC lease, volume blocks, registration and flow rule all released.
    assert_eq!(
        pod.allocator.state.nics[0].as_ref().unwrap().allocated_mbps,
        0
    );
    assert_eq!(
        pod.allocator.state.ssds[0]
            .as_ref()
            .unwrap()
            .allocated_blocks,
        0
    );
    assert!(pod.allocator.state.volumes.is_empty());
    assert_eq!(pod.backends[0].registration_count(), 0);
    assert_eq!(pod.nics[0].flow_count(), 0);
    assert_eq!(pod.instance_mac(inst), MacAddr::ZERO);

    // Released capacity is immediately reusable.
    let inst2 = pod.launch_instance(host_a, AppKind::None, 100_000);
    assert_eq!(
        pod.allocator.state.nics[0].as_ref().unwrap().allocated_mbps,
        100_000
    );
    let vol2 = pod.create_volume(inst2, 128).unwrap();
    assert_eq!(vol2.base_block, 0, "drained SSD restarts its carve point");
}
