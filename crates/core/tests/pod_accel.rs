//! Pod-level accel-engine integration: pooled compute offload over the same
//! CXL pool, with deterministic fault injection exercising the retry and
//! replay paths — the end-to-end proof that the generic engine abstraction
//! carries a third device class.

use oasis_accel::{fnv1a, AccelConfig, AccelOp, AccelStatus};
use oasis_core::config::OasisConfig;
use oasis_core::error::PodError;
use oasis_core::instance::AppKind;
use oasis_core::pod::PodBuilder;
use oasis_sim::fault::{AccelFaultMode, FaultKind, FaultPlan};
use oasis_sim::time::{SimDuration, SimTime};

fn payload(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag ^ (i as u8)).collect()
}

#[test]
fn host_without_local_accel_offloads_to_remote_device() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host(); // instance host, no devices
    let host_b = b.add_nic_host(); // device host
    b.add_accel(host_b, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(host_a, AppKind::None, 1_000);

    // The allocator picks the remote accelerator (pooling makes it usable).
    let input = payload(0x5a, 4096);
    let cid = pod
        .submit_accel_job(host_a, AccelOp::Checksum, 0, &input)
        .expect("accel engine present")
        .expect("not backpressured");
    pod.run(SimTime::from_millis(2));
    let done = pod.take_accel_completions(host_a);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].cid, cid);
    assert!(done[0].status.is_ok());
    // The device DMA'd the input out of the pool and computed over the same
    // bytes the guest staged.
    assert_eq!(done[0].result, fnv1a(&input));
    assert_eq!(
        done[0].output.as_deref(),
        Some(&fnv1a(&input).to_le_bytes()[..])
    );
    assert_eq!(pod.accel_jobs_in_flight(host_a), 0);
}

#[test]
fn scale_jobs_transform_data_in_pool_memory() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_accel(dev, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);

    let input = payload(0x11, 512);
    pod.submit_accel_job(h0, AccelOp::Scale, 3, &input)
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(2));
    let done = pod.take_accel_completions(h0);
    assert_eq!(done.len(), 1);
    let expect: Vec<u8> = input.iter().map(|b| b.wrapping_mul(3)).collect();
    assert_eq!(done[0].output.as_deref(), Some(&expect[..]));
}

#[test]
fn two_hosts_share_one_accelerator() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let h1 = b.add_host();
    let dev = b.add_nic_host();
    b.add_accel(dev, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);
    pod.launch_instance(h1, AppKind::None, 1_000);

    let in0 = payload(0xaa, 2048);
    let in1 = payload(0xbb, 2048);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &in0)
        .unwrap()
        .unwrap();
    pod.submit_accel_job(h1, AccelOp::Checksum, 0, &in1)
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(2));
    let d0 = pod.take_accel_completions(h0);
    let d1 = pod.take_accel_completions(h1);
    assert_eq!(d0.len(), 1);
    assert_eq!(d1.len(), 1);
    assert_eq!(d0[0].result, fnv1a(&in0));
    assert_eq!(d1[0].result, fnv1a(&in1));
}

#[test]
fn injected_fault_windows_are_survived_by_retries() {
    // A timeout window swallows jobs whole and a compute-error window
    // completes them with a transient error; both are escaped by the paced
    // retry deadline. They must be invisible to the caller except as
    // latency.
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_accel(dev, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);

    let plan = FaultPlan::empty()
        .at(
            SimTime::from_micros(10),
            FaultKind::AccelFault {
                accel: 0,
                mode: AccelFaultMode::Timeout,
                duration: SimDuration::from_micros(600),
            },
        )
        .at(
            SimTime::from_millis(4),
            FaultKind::AccelFault {
                accel: 0,
                mode: AccelFaultMode::ComputeError,
                duration: SimDuration::from_micros(600),
            },
        );
    pod.install_fault_plan(&plan);

    // Land one job inside each fault window.
    pod.run(SimTime::from_micros(100));
    let in0 = payload(0x42, 1024);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &in0)
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(4) + SimDuration::from_micros(100));
    let in1 = payload(0x43, 1024);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &in1)
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(12));

    let done = pod.take_accel_completions(h0);
    assert_eq!(
        done.len(),
        2,
        "both jobs complete despite the fault windows"
    );
    assert!(done.iter().all(|r| r.status.is_ok()));
    let results: Vec<u64> = done.iter().map(|r| r.result).collect();
    assert!(results.contains(&fnv1a(&in0)));
    assert!(results.contains(&fnv1a(&in1)));
    let fe = pod.accel_frontends[h0].as_ref().unwrap();
    assert!(
        fe.stats.retries > 0,
        "the fault windows forced resubmission"
    );
    assert_eq!(fe.stats.retry_exhausted, 0);
}

#[test]
fn host_restart_replays_in_flight_jobs_exactly_once() {
    // Crash the consuming host with a job in flight; on restart the
    // frontend replays it and the backend's dedup cache keeps execution
    // exactly-once.
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_accel(dev, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);

    let input = payload(0x77, 4096);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &input)
        .unwrap()
        .unwrap();
    // Crash almost immediately — before the completion can drain — and
    // restart shortly after.
    pod.schedule_host_failure(SimTime::from_micros(2), h0);
    pod.schedule_host_restart(SimTime::from_micros(500), h0);
    pod.run(SimTime::from_millis(10));

    let done = pod.take_accel_completions(h0);
    assert_eq!(done.len(), 1);
    assert!(done[0].status.is_ok());
    assert_eq!(done[0].result, fnv1a(&input));
    assert_eq!(pod.accel_jobs_in_flight(h0), 0);
    // Exactly-once: the device executed the job once or answered the replay
    // from its dedup cache — never computed a second, conflicting result.
    assert!(pod.accels[0].stats.jobs <= 2);
}

#[test]
fn failed_device_propagates_error_status() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    let dev = b.add_nic_host();
    b.add_accel(dev, AccelConfig::default());
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);

    pod.set_accel_failed(0, true);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &payload(1, 256))
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(2));
    let done = pod.take_accel_completions(h0);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, AccelStatus::DeviceFailure);
    assert!(done[0].output.is_none());

    // Repair and verify the engine recovers.
    pod.set_accel_failed(0, false);
    let input = payload(2, 256);
    pod.submit_accel_job(h0, AccelOp::Checksum, 0, &input)
        .unwrap()
        .unwrap();
    pod.run(SimTime::from_millis(4));
    let done = pod.take_accel_completions(h0);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].result, fnv1a(&input));
}

#[test]
fn pods_without_accelerators_report_typed_errors() {
    let mut b = PodBuilder::new(OasisConfig::default());
    let h0 = b.add_host();
    b.add_nic_host();
    let mut pod = b.build();
    pod.launch_instance(h0, AppKind::None, 1_000);

    let err = pod
        .submit_accel_job(h0, AccelOp::Checksum, 0, &payload(1, 64))
        .unwrap_err();
    assert_eq!(
        err,
        PodError::NoSuchDevice {
            class: "accel",
            index: 0
        }
    );
    assert_eq!(
        pod.submit_accel_job(99, AccelOp::Checksum, 0, &[1])
            .unwrap_err(),
        PodError::NoSuchHost(99)
    );
}
