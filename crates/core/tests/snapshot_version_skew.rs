//! Version-skew goldens for the snapshot container (ISSUE 10).
//!
//! `tests/data/snapshot_v1.bin` is a *committed* v1 pod snapshot: the
//! deterministic pod built below, serialized by the v1 writer (payload
//! layout unchanged since; the container version byte says 1). The
//! current decoder must either upgrade it in place or reject it with a
//! typed [`SnapshotError`] — it must never panic, so the `oasis-check`
//! no-panic rule stays clean across schema bumps.
//!
//! Regenerate after an *intentional* v1-compatible layout change with:
//! `cargo test -p oasis-core --test snapshot_version_skew -- --ignored`

use oasis_core::config::OasisConfig;
use oasis_core::instance::AppKind;
use oasis_core::pod::{Pod, PodBuilder, VolumeHandle};
use oasis_core::snapshot::{SnapshotError, SNAPSHOT_MIN_VERSION, SNAPSHOT_SCHEMA_VERSION};
use oasis_sim::time::SimTime;
use oasis_storage::ssd::SsdConfig;
use oasis_storage::BLOCK_SIZE;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/snapshot_v1.bin");

/// Offset of the little-endian u32 container version (after the magic).
const VERSION_OFFSET: usize = 8;

fn block(tag: u8) -> Vec<u8> {
    (0..BLOCK_SIZE as usize).map(|i| tag ^ (i as u8)).collect()
}

/// The fixture pod: identical to the one the committed snapshot was taken
/// from (the sim is deterministic, so rebuilding it reproduces the exact
/// quiesced state the snapshot holds).
fn build_fixture_pod() -> (Pod, usize, VolumeHandle) {
    let mut b = PodBuilder::new(OasisConfig::default());
    let host_a = b.add_host();
    let host_b = b.add_nic_host();
    b.add_ssd(host_b, SsdConfig::default());
    let mut pod = b.build();
    pod.launch_instance(host_a, AppKind::None, 1_000);
    let vol = pod.create_volume(0, 32).expect("capacity");
    for lba in 0..4 {
        pod.volume_write(vol, lba, &block(lba as u8)).unwrap();
    }
    pod.run(SimTime::from_millis(3));
    assert_eq!(pod.take_storage_completions(host_a).len(), 4);
    (pod, host_a, vol)
}

fn read_fixture() -> Vec<u8> {
    std::fs::read(FIXTURE).expect("committed fixture tests/data/snapshot_v1.bin")
}

fn version_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(
        bytes[VERSION_OFFSET..VERSION_OFFSET + 4]
            .try_into()
            .unwrap(),
    )
}

fn with_version(bytes: &[u8], v: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[VERSION_OFFSET..VERSION_OFFSET + 4].copy_from_slice(&v.to_le_bytes());
    out
}

/// Writes the committed fixture: today's serialization with the container
/// version set back to 1 (the payload sections a pod writes are unchanged
/// since v1; v2 only *added* the FleetState/ReplayCursor section kinds).
#[test]
#[ignore = "regenerates the committed fixture; run explicitly"]
fn regenerate_v1_fixture() {
    let (pod, _, _) = build_fixture_pod();
    let v1 = with_version(&pod.snapshot(), 1);
    std::fs::write(FIXTURE, &v1).expect("write fixture");
}

#[test]
fn committed_fixture_is_v1() {
    let fixture = read_fixture();
    assert_eq!(version_of(&fixture), 1);
    assert!(
        (SNAPSHOT_MIN_VERSION..=SNAPSHOT_SCHEMA_VERSION).contains(&version_of(&fixture)),
        "the fixture version must stay inside the decoder's accepted range"
    );
}

#[test]
fn v1_fixture_restores_and_upgrades() {
    let fixture = read_fixture();
    let (mut pod, host, vol) = build_fixture_pod();
    pod.restore(&fixture)
        .expect("the v1 snapshot still decodes");

    // Re-snapshotting writes the current container version around the
    // same payload — the in-place upgrade path.
    let upgraded = pod.snapshot();
    assert_eq!(version_of(&upgraded), SNAPSHOT_SCHEMA_VERSION);
    assert_eq!(
        upgraded[VERSION_OFFSET + 4..],
        fixture[VERSION_OFFSET + 4..],
        "payload is version-independent for the sections a pod writes"
    );

    // And the upgraded pod still serves I/O from the restored sequence
    // state (media contents are device state outside the snapshot).
    pod.volume_write(vol, 9, &block(7)).unwrap();
    pod.run(SimTime::from_millis(6));
    let done = pod.take_storage_completions(host);
    assert_eq!(done.len(), 1);
    assert!(done[0].status.is_ok());
}

#[test]
fn future_version_is_rejected_with_a_typed_error() {
    let fixture = read_fixture();
    let (mut pod, _, _) = build_fixture_pod();
    let future = SNAPSHOT_SCHEMA_VERSION + 1;
    assert_eq!(
        pod.restore(&with_version(&fixture, future)),
        Err(SnapshotError::UnsupportedVersion(future))
    );
}

#[test]
fn pre_v1_version_is_rejected_with_a_typed_error() {
    let fixture = read_fixture();
    let (mut pod, _, _) = build_fixture_pod();
    assert_eq!(
        pod.restore(&with_version(&fixture, 0)),
        Err(SnapshotError::UnsupportedVersion(0))
    );
}

#[test]
fn no_truncation_of_the_fixture_panics() {
    let fixture = read_fixture();
    let (mut pod, _, _) = build_fixture_pod();
    for len in 0..fixture.len() {
        assert!(
            pod.restore(&fixture[..len]).is_err(),
            "truncation to {len} bytes must fail with a typed error"
        );
    }
}

#[test]
fn no_single_byte_corruption_of_the_fixture_panics() {
    let fixture = read_fixture();
    // Every single-byte flip must produce Ok (the byte was truly
    // don't-care) or a typed error — never a panic or an abort. One
    // long-lived target pod absorbs all the half-applied corrupt
    // restores: the decoder's no-panic contract cannot depend on the
    // target being pristine (building a pod per flip is also ~100x the
    // whole sweep's cost).
    let (mut pod, _, _) = build_fixture_pod();
    for i in 0..fixture.len() {
        let mut bad = fixture.clone();
        bad[i] ^= 0xA5;
        let _ = pod.restore(&bad);
    }
}
