//! TCP-lite: a minimal reliable byte stream for the memcached experiments.
//!
//! The paper's memcached failover experiment (§5.3, Fig. 14) depends on TCP
//! semantics: packets lost during the NIC failure are retransmitted after
//! the failover, temporarily inflating latency. This module implements just
//! enough of TCP to reproduce that behaviour faithfully:
//!
//! * cumulative ACKs and in-order delivery with an out-of-order reassembly
//!   buffer,
//! * go-back-N retransmission on a fixed RTO,
//! * a fixed receive window,
//! * pre-established connections (no handshake/teardown — the experiments
//!   run over long-lived connections, as memcached clients do).
//!
//! Sequence numbers are 32-bit and wrap; comparisons use serial-number
//! arithmetic.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use oasis_sim::time::{SimDuration, SimTime};

/// `a < b` in serial-number (RFC 1982) arithmetic.
#[inline]
fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

/// TCP-lite tuning.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Retransmission timeout (fixed; no RTT estimation).
    pub rto: SimDuration,
    /// Send window in bytes.
    pub window: u32,
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            rto: SimDuration::from_millis(60),
            window: 64 * 1024,
            mss: 1448,
        }
    }
}

/// A segment the connection wants transmitted. The network stack wraps it
/// with addresses and checksums.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentOut {
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgment.
    pub ack: u32,
    /// Payload bytes (may be empty for a pure ACK).
    pub payload: Vec<u8>,
}

/// Counters for assertions and reports.
#[derive(Clone, Debug, Default)]
pub struct TcpStats {
    /// Data segments sent (first transmissions).
    pub data_segments: u64,
    /// Segments retransmitted after RTO.
    pub retransmits: u64,
    /// Pure ACKs sent.
    pub acks_sent: u64,
    /// Bytes delivered to the application in order.
    pub bytes_delivered: u64,
}

/// One direction-pair of a pre-established TCP-lite connection.
pub struct TcpConn {
    cfg: TcpConfig,
    /// First unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Bytes from `snd_una` onward (in-flight prefix + unsent suffix).
    send_buf: VecDeque<u8>,
    /// Next expected receive sequence number.
    rcv_nxt: u32,
    /// In-order bytes ready for the application.
    recv_ready: Vec<u8>,
    /// Out-of-order segments keyed by their start sequence.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Retransmission deadline while data is in flight.
    rto_deadline: Option<SimTime>,
    /// An ACK is owed to the peer.
    need_ack: bool,
    /// Counters.
    pub stats: TcpStats,
}

impl TcpConn {
    /// A fresh pre-established connection (both sides start at seq 0).
    pub fn new(cfg: TcpConfig) -> Self {
        TcpConn {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: VecDeque::new(),
            rcv_nxt: 0,
            recv_ready: Vec::new(),
            ooo: BTreeMap::new(),
            rto_deadline: None,
            need_ack: false,
            stats: TcpStats::default(),
        }
    }

    /// Queue application data for transmission.
    pub fn send(&mut self, data: &[u8]) {
        self.send_buf.extend(data.iter().copied());
    }

    /// Bytes queued but not yet acknowledged.
    pub fn unacked(&self) -> usize {
        self.send_buf.len()
    }

    /// Take delivered in-order bytes.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_ready)
    }

    /// Process a peer segment.
    pub fn on_segment(&mut self, now: SimTime, seq: u32, ack: u32, payload: &[u8]) {
        // --- ACK processing ---
        if seq_lt(self.snd_una, ack) || ack == self.snd_nxt {
            let advance = ack.wrapping_sub(self.snd_una);
            if advance as usize <= self.send_buf.len() + self.in_flight() as usize {
                let drop = (advance as usize).min(self.send_buf.len());
                self.send_buf.drain(..drop);
                self.snd_una = ack;
                if seq_lt(self.snd_nxt, self.snd_una) {
                    self.snd_nxt = self.snd_una;
                }
                // Restart or clear the RTO.
                self.rto_deadline = if self.snd_una == self.snd_nxt {
                    None
                } else {
                    Some(now + self.cfg.rto)
                };
            }
        }

        // --- Data processing ---
        if payload.is_empty() {
            return;
        }
        let end = seq.wrapping_add(payload.len() as u32);
        if !seq_lt(self.rcv_nxt, end) {
            // Entirely old data: re-ACK so the peer resynchronizes.
            self.need_ack = true;
            return;
        }
        if seq_lt(self.rcv_nxt, seq) {
            // Future segment: stash for reassembly.
            self.ooo.entry(seq).or_insert_with(|| payload.to_vec());
            self.need_ack = true;
            return;
        }
        // Overlapping or exactly in order: take the new suffix.
        let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
        if skip < payload.len() {
            self.recv_ready.extend_from_slice(&payload[skip..]);
            self.stats.bytes_delivered += (payload.len() - skip) as u64;
            self.rcv_nxt = end;
            // Drain any now-contiguous out-of-order segments.
            while let Some((&s, _)) = self.ooo.iter().next() {
                if seq_lt(self.rcv_nxt, s) {
                    break;
                }
                let Some((s, data)) = self.ooo.pop_first() else {
                    break;
                };
                let skip = self.rcv_nxt.wrapping_sub(s) as usize;
                if skip < data.len() {
                    self.recv_ready.extend_from_slice(&data[skip..]);
                    self.stats.bytes_delivered += (data.len() - skip) as u64;
                    self.rcv_nxt = s.wrapping_add(data.len() as u32);
                }
            }
        }
        self.need_ack = true;
    }

    fn in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Emit segments due at `now`: RTO retransmissions, new data within the
    /// window, and a pure ACK if one is owed.
    pub fn poll(&mut self, now: SimTime) -> Vec<SegmentOut> {
        let mut out = Vec::new();

        // RTO: go-back-N.
        if let Some(dl) = self.rto_deadline {
            if now >= dl {
                self.snd_nxt = self.snd_una;
                self.rto_deadline = Some(now + self.cfg.rto);
                self.stats.retransmits += 1;
            }
        }

        // Send new data within the window.
        while self.in_flight() < self.cfg.window {
            let offset = self.in_flight() as usize;
            if offset >= self.send_buf.len() {
                break;
            }
            let n = (self.send_buf.len() - offset)
                .min(self.cfg.mss)
                .min((self.cfg.window - self.in_flight()) as usize);
            let payload: Vec<u8> = self.send_buf.iter().skip(offset).take(n).copied().collect();
            out.push(SegmentOut {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                payload,
            });
            self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
            self.stats.data_segments += 1;
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.cfg.rto);
            }
            self.need_ack = false;
        }

        if self.need_ack {
            out.push(SegmentOut {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                payload: Vec::new(),
            });
            self.stats.acks_sent += 1;
            self.need_ack = false;
        }
        out
    }

    /// Earliest time this connection needs `poll` called for a timer (the
    /// RTO deadline), if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.rto_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Deliver segments from a to b (optionally dropping some by index).
    fn exchange(a: &mut TcpConn, b: &mut TcpConn, now: SimTime, drop: &[usize]) {
        let segs = a.poll(now);
        for (i, s) in segs.iter().enumerate() {
            if !drop.contains(&i) {
                b.on_segment(now, s.seq, s.ack, &s.payload);
            }
        }
    }

    #[test]
    fn lossless_transfer_in_order() {
        let mut a = TcpConn::new(TcpConfig::default());
        let mut b = TcpConn::new(TcpConfig::default());
        let data: Vec<u8> = (0..5000).map(|i| i as u8).collect();
        a.send(&data);
        for step in 0..10 {
            exchange(&mut a, &mut b, t(step), &[]);
            exchange(&mut b, &mut a, t(step), &[]);
        }
        assert_eq!(b.take_received(), data);
        assert_eq!(a.unacked(), 0);
        assert_eq!(a.stats.retransmits, 0);
    }

    #[test]
    fn mss_respected() {
        let mut a = TcpConn::new(TcpConfig {
            mss: 100,
            ..Default::default()
        });
        a.send(&[7u8; 450]);
        let segs = a.poll(t(0));
        assert_eq!(segs.len(), 5);
        assert!(segs[..4].iter().all(|s| s.payload.len() == 100));
        assert_eq!(segs[4].payload.len(), 50);
    }

    #[test]
    fn window_limits_in_flight() {
        let mut a = TcpConn::new(TcpConfig {
            window: 300,
            mss: 100,
            ..Default::default()
        });
        a.send(&[1u8; 1000]);
        let segs = a.poll(t(0));
        assert_eq!(segs.iter().map(|s| s.payload.len()).sum::<usize>(), 300);
        // No more until acked.
        assert!(a.poll(t(1)).is_empty());
    }

    #[test]
    fn lost_segment_retransmitted_after_rto() {
        let cfg = TcpConfig {
            rto: SimDuration::from_millis(60),
            mss: 100,
            ..Default::default()
        };
        let mut a = TcpConn::new(cfg);
        let mut b = TcpConn::new(cfg);
        a.send(&[9u8; 200]);
        // First segment dropped; second arrives out of order.
        exchange(&mut a, &mut b, t(0), &[0]);
        exchange(&mut b, &mut a, t(0), &[]); // ACK (rcv_nxt still 0)
        assert!(b.take_received().is_empty(), "nothing in order yet");
        // Before RTO nothing happens.
        assert!(a.poll(t(30)).is_empty());
        // After RTO: go-back-N resends everything from snd_una.
        exchange(&mut a, &mut b, t(61), &[]);
        exchange(&mut b, &mut a, t(61), &[]);
        assert_eq!(b.take_received(), vec![9u8; 200]);
        assert_eq!(a.stats.retransmits, 1);
        assert_eq!(a.unacked(), 0);
    }

    #[test]
    fn out_of_order_reassembly_without_retransmit_of_later_data() {
        let cfg = TcpConfig {
            mss: 100,
            ..Default::default()
        };
        let mut a = TcpConn::new(cfg);
        let mut b = TcpConn::new(cfg);
        let data: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        a.send(&data);
        let segs = a.poll(t(0));
        assert_eq!(segs.len(), 3);
        // Deliver 2,0,1.
        b.on_segment(t(0), segs[2].seq, segs[2].ack, &segs[2].payload);
        assert!(b.take_received().is_empty());
        b.on_segment(t(0), segs[0].seq, segs[0].ack, &segs[0].payload);
        assert_eq!(b.take_received(), data[..100].to_vec());
        b.on_segment(t(0), segs[1].seq, segs[1].ack, &segs[1].payload);
        assert_eq!(b.take_received(), data[100..].to_vec());
    }

    #[test]
    fn duplicate_segments_not_redelivered() {
        let mut a = TcpConn::new(TcpConfig::default());
        let mut b = TcpConn::new(TcpConfig::default());
        a.send(b"hello");
        let segs = a.poll(t(0));
        b.on_segment(t(0), segs[0].seq, segs[0].ack, &segs[0].payload);
        b.on_segment(t(0), segs[0].seq, segs[0].ack, &segs[0].payload);
        assert_eq!(b.take_received(), b"hello".to_vec());
        assert_eq!(b.stats.bytes_delivered, 5);
    }

    #[test]
    fn pure_ack_emitted_for_received_data() {
        let mut a = TcpConn::new(TcpConfig::default());
        let mut b = TcpConn::new(TcpConfig::default());
        a.send(b"ping");
        exchange(&mut a, &mut b, t(0), &[]);
        let acks = b.poll(t(0));
        assert_eq!(acks.len(), 1);
        assert!(acks[0].payload.is_empty());
        assert_eq!(acks[0].ack, 4);
        assert_eq!(b.stats.acks_sent, 1);
    }

    #[test]
    fn bidirectional_request_response() {
        let mut c = TcpConn::new(TcpConfig::default());
        let mut s = TcpConn::new(TcpConfig::default());
        c.send(b"GET k\r\n");
        exchange(&mut c, &mut s, t(0), &[]);
        assert_eq!(s.take_received(), b"GET k\r\n".to_vec());
        s.send(b"VALUE 1\r\n");
        exchange(&mut s, &mut c, t(0), &[]);
        exchange(&mut c, &mut s, t(1), &[]);
        assert_eq!(c.take_received(), b"VALUE 1\r\n".to_vec());
    }

    #[test]
    fn long_outage_recovers_after_multiple_rtos() {
        // Models the Fig. 14 failover: ~38ms of black-hole, then recovery.
        let cfg = TcpConfig {
            rto: SimDuration::from_millis(60),
            mss: 100,
            ..Default::default()
        };
        let mut a = TcpConn::new(cfg);
        let mut b = TcpConn::new(cfg);
        a.send(&[5u8; 300]);
        // All transmissions at t=0..38ms are lost.
        let _ = a.poll(t(0));
        let _ = a.poll(t(20));
        // Link restored; first RTO at t=60 retransmits everything.
        exchange(&mut a, &mut b, t(61), &[]);
        exchange(&mut b, &mut a, t(61), &[]);
        assert_eq!(b.take_received(), vec![5u8; 300]);
        assert!(a.stats.retransmits >= 1);
    }

    #[test]
    fn sequence_wraparound() {
        // Force both endpoints near the u32 wrap point.
        let mut a = TcpConn::new(TcpConfig::default());
        let mut b = TcpConn::new(TcpConfig::default());
        a.snd_una = u32::MAX - 50;
        a.snd_nxt = a.snd_una;
        b.rcv_nxt = u32::MAX - 50;
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        a.send(&data);
        for step in 0..6 {
            exchange(&mut a, &mut b, t(step), &[]);
            exchange(&mut b, &mut a, t(step), &[]);
        }
        assert_eq!(b.take_received(), data);
        assert_eq!(a.unacked(), 0);
    }
}
