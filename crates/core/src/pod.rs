//! The pod runtime: one deterministic co-simulation of an entire Oasis pod.
//!
//! A [`Pod`] owns the CXL pool, the hosts' polling cores (frontend and
//! backend drivers, or the Junction baseline driver), the NICs, the ToR
//! switch, the instances, the pod-wide allocator, and any external client
//! endpoints. [`Pod::run`] steps whichever component has the earliest local
//! clock, exactly like the co-simulated microbenchmarks — so cross-host
//! latencies, failover timelines, and CXL link traffic all emerge from the
//! same component models the unit tests exercise.
//!
//! Instance launch (placement + registration) is performed synchronously at
//! build time, as a cloud control plane would before a VM starts; the
//! *runtime* control paths that the paper measures — link-failure
//! detection, telemetry, failover rerouting, graceful migration — all flow
//! through message channels with simulated timing.

use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::region::Region;
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::nic::{Nic, NicConfig};
use oasis_net::packet::Frame;
use oasis_net::switch::Switch;
use oasis_sim::event::EventQueue;
use oasis_sim::fault::{FaultInjector, FaultKind, FaultPlan, PacketFaultState, SsdFaultMode};
use oasis_sim::time::{SimDuration, SimTime};

use oasis_storage::ssd::{Ssd, SsdConfig};

use crate::allocator::{AllocCommand, PodAllocator};
use crate::baseline::LocalDriver;
use crate::config::{BufferPlacement, OasisConfig};
use crate::datapath::{alloc_net_channel, BufferArea};
use crate::engine_net::{BackendDriver, FrontendDriver};
use crate::engine_storage::{alloc_storage_channel, StorageBackend, StorageFrontend};
use crate::instance::{AppKind, Instance};

/// An external client attached directly to a switch port (load generators,
/// echo clients, trace replayers — implemented in `oasis-apps`).
pub trait Endpoint {
    /// When this endpoint next wants to act ([`SimTime::MAX`] when idle).
    fn next_time(&self) -> SimTime;
    /// Act at `now`; emitted frames enter the switch on this endpoint's
    /// port.
    fn poll(&mut self, now: SimTime) -> Vec<Frame>;
    /// A frame arrives from the switch at `at`.
    fn deliver(&mut self, at: SimTime, frame: Frame);
}

/// The driver serving a host's instances.
pub enum HostDriver {
    /// Oasis frontend (instances may be served by remote NICs).
    Oasis(FrontendDriver),
    /// Junction-style baseline: combined driver + local NIC.
    Local(LocalDriver),
}

enum PortOwner {
    Nic(usize),
    Endpoint(usize),
}

enum PodEvent {
    /// Operator/failure injection: disable the switch port of a NIC
    /// (§5.3's failure method).
    DisableNicPort(usize),
    /// The NIC's PHY notices carrier loss (after `link_detect`).
    LinkDown(usize),
    /// Repair: re-enable the port.
    EnableNicPort(usize),
    /// Carrier restored.
    LinkUp(usize),
    /// Start a graceful migration of an instance to a NIC (§3.3.4).
    Migrate(Ipv4Addr, u32),
    /// Crash a host: all of its polling cores stop, and its devices go
    /// silent. The allocator infers the failure from missing telemetry
    /// (§3.5).
    FailHost(usize),
    /// A crashed host boots again: cores resume (cold caches) from the
    /// restart time and the storage frontend replays in-flight commands.
    RestartHost(usize),
    /// Install probabilistic drop/corrupt/duplicate on a NIC's switch port
    /// (the state self-expires).
    SetPacketFault(usize, PacketFaultState),
    /// Add extra CXL load-to-use latency on every core of a host.
    CxlSlowStart(usize, u64),
    /// Remove the extra latency again.
    CxlSlowEnd(usize, u64),
    /// Freeze every core of a host for the duration (link retraining).
    CxlStall(usize, SimDuration),
    /// Open an SSD command-swallowing window closing at the given time.
    SsdTimeoutUntil(usize, SimTime),
    /// Open an SSD read-media-error window closing at the given time.
    SsdReadErrorsUntil(usize, SimTime),
}

/// A block volume carved for an instance by the pod-wide allocator.
#[derive(Clone, Copy, Debug)]
pub struct VolumeHandle {
    /// Owning instance.
    pub inst: usize,
    /// SSD the volume lives on.
    pub ssd: usize,
    /// First device block.
    pub base_block: u64,
    /// Length in blocks.
    pub blocks: u64,
}

/// The assembled pod.
pub struct Pod {
    /// Configuration.
    pub cfg: OasisConfig,
    /// The shared CXL pool.
    pub pool: CxlPool,
    /// The ToR switch.
    pub switch: Switch,
    /// NICs by id.
    pub nics: Vec<Nic>,
    /// Per-host drivers.
    pub drivers: Vec<HostDriver>,
    /// Backend drivers (Oasis NICs only).
    pub backends: Vec<BackendDriver>,
    /// Instances by index (instance id == index).
    pub instances: Vec<Instance>,
    /// The pod-wide allocator.
    pub allocator: PodAllocator,
    /// Client endpoints.
    pub endpoints: Vec<Box<dyn Endpoint>>,
    /// SSDs by id.
    pub ssds: Vec<Ssd>,
    /// Storage frontends, per host (Oasis hosts in pods with SSDs).
    pub storage_frontends: Vec<Option<StorageFrontend>>,
    /// Storage backends, per SSD.
    pub storage_backends: Vec<StorageBackend>,
    nic_macs: Vec<MacAddr>,
    nic_host: Vec<usize>,
    nic_port: Vec<usize>,
    backend_of_nic: Vec<Option<usize>>,
    endpoint_port: Vec<usize>,
    port_owner: Vec<PortOwner>,
    pending: EventQueue<PodEvent>,
    ra: RegionAllocator,
    /// Per-instance TX-area region, kept so a host-failure reclaim can
    /// return it to the allocator (`None` for baseline instances).
    inst_region: Vec<Option<Region>>,
    /// Hosts that have crashed (their cores are no longer stepped).
    dead_host: Vec<bool>,
    now: SimTime,
}

/// Builds a [`Pod`]. Hosts and NICs are declared first; instances and
/// endpoints are added to the built pod.
pub struct PodBuilder {
    cfg: OasisConfig,
    pool_bytes: u64,
    /// (has_nic, baseline placement or None for Oasis).
    hosts: Vec<(bool, Option<BufferPlacement>)>,
    backup_nic_host: Option<usize>,
    /// (host, config) per SSD.
    ssds: Vec<(usize, SsdConfig)>,
}

impl PodBuilder {
    /// Start building with a configuration.
    pub fn new(cfg: OasisConfig) -> Self {
        PodBuilder {
            cfg,
            pool_bytes: 64 << 20,
            hosts: Vec::new(),
            backup_nic_host: None,
            ssds: Vec::new(),
        }
    }

    /// Override the pool size (default 64 MiB of simulated CXL memory).
    pub fn pool_bytes(mut self, bytes: u64) -> Self {
        self.pool_bytes = bytes;
        self
    }

    /// Add an Oasis host without a local NIC. Returns the host index.
    pub fn add_host(&mut self) -> usize {
        self.hosts.push((false, None));
        self.hosts.len() - 1
    }

    /// Add an Oasis host with a local NIC (and backend driver).
    pub fn add_nic_host(&mut self) -> usize {
        self.hosts.push((true, None));
        self.hosts.len() - 1
    }

    /// Add a baseline (Junction) host with a local NIC and the given buffer
    /// placement.
    pub fn add_baseline_host(&mut self, placement: BufferPlacement) -> usize {
        self.hosts.push((true, Some(placement)));
        self.hosts.len() - 1
    }

    /// Attach an SSD to `host` (drives the storage engine, §3.4). Returns
    /// the SSD id.
    pub fn add_ssd(&mut self, host: usize, cfg: SsdConfig) -> usize {
        assert!(host < self.hosts.len(), "add hosts before their SSDs");
        self.ssds.push((host, cfg));
        self.ssds.len() - 1
    }

    /// Reserve the NIC of `host` as the pod's failover backup (§3.3.3).
    pub fn backup_nic_on(mut self, host: usize) -> Self {
        self.backup_nic_host = Some(host);
        self
    }

    /// Assemble the pod.
    pub fn build(self) -> Pod {
        let n_hosts = self.hosts.len();
        let mut pool = CxlPool::new(self.pool_bytes, n_hosts);
        let mut ra = RegionAllocator::new(&pool);
        let mut switch = Switch::new(0);
        let mut nics = Vec::new();
        let mut nic_macs = Vec::new();
        let mut nic_host = Vec::new();
        let mut nic_port = Vec::new();
        let mut backend_of_nic: Vec<Option<usize>> = Vec::new();
        let mut backends: Vec<BackendDriver> = Vec::new();
        let mut port_owner = Vec::new();

        // Allocator service core (control plane; port 0's host).
        let alloc_core = HostCtx::new(PortId(0), 0);
        let mut allocator = PodAllocator::new(alloc_core, self.cfg.clone());

        // Create NICs and backend drivers.
        let mut oasis_nic_ids = Vec::new();
        for (host, &(has_nic, baseline)) in self.hosts.iter().enumerate() {
            if !has_nic {
                continue;
            }
            let nic_id = nics.len();
            let mac = MacAddr::nic(nic_id as u64);
            let nic = Nic::new(mac, NicConfig::default());
            let port = switch.add_port();
            port_owner.push(PortOwner::Nic(nic_id));
            let backup = self.backup_nic_host == Some(host);
            allocator.propose(AllocCommand::RegisterNic {
                nic: nic_id as u32,
                host: host as u32,
                capacity_mbps: (nic.bandwidth_gbps() * 1000.0) as u32,
                backup,
            });
            if baseline.is_none() {
                // Oasis backend: RX area + allocator channel.
                let rx_region = ra.alloc(
                    &mut pool,
                    format!("nic{nic_id}.rx_area"),
                    self.cfg.rx_area_per_nic,
                    TrafficClass::Payload,
                );
                let pair =
                    alloc_net_channel(&mut pool, &mut ra, &format!("be{nic_id}->alloc"), 256);
                allocator.add_backend(nic_id as u32, pair.receiver);
                let be_to_alloc = pair.sender;
                let be_core = HostCtx::new(PortId(host), 1 << 20);
                // Backends do not receive from the allocator in this
                // implementation; give them an inert receiver on a tiny
                // private channel.
                let inert =
                    alloc_net_channel(&mut pool, &mut ra, &format!("alloc->be{nic_id}"), 16);
                let backend = BackendDriver::new(
                    nic_id,
                    host,
                    be_core,
                    self.cfg.clone(),
                    BufferArea::new(rx_region, self.cfg.buf_size),
                    be_to_alloc,
                    inert.receiver,
                );
                backend_of_nic.push(Some(backends.len()));
                backends.push(backend);
                oasis_nic_ids.push(nic_id);
            } else {
                backend_of_nic.push(None);
            }
            nic_macs.push(mac);
            nic_host.push(host);
            nic_port.push(port);
            nics.push(nic);
        }

        // Create host drivers.
        let mut drivers = Vec::new();
        for (host, &(has_nic, baseline)) in self.hosts.iter().enumerate() {
            match baseline {
                Some(placement) => {
                    let nic_id = nic_host
                        .iter()
                        .position(|&h| h == host)
                        .expect("baseline host has a NIC");
                    let core = HostCtx::new(PortId(host), 8 << 20);
                    let ld = LocalDriver::new(
                        host,
                        nic_id,
                        core,
                        self.cfg.clone(),
                        placement,
                        &mut pool,
                        &mut ra,
                    );
                    drivers.push(HostDriver::Local(ld));
                }
                None => {
                    let _ = has_nic;
                    let fe_core = HostCtx::new(PortId(host), 8 << 20);
                    let fe_alloc_tx =
                        alloc_net_channel(&mut pool, &mut ra, &format!("fe{host}->alloc"), 256);
                    let alloc_fe =
                        alloc_net_channel(&mut pool, &mut ra, &format!("alloc->fe{host}"), 256);
                    allocator.add_frontend(host, alloc_fe.sender, fe_alloc_tx.receiver);
                    let mut fe = FrontendDriver::new(
                        host,
                        fe_core,
                        self.cfg.clone(),
                        fe_alloc_tx.sender,
                        alloc_fe.receiver,
                    );
                    // Channel pairs to every Oasis backend.
                    for &nic_id in &oasis_nic_ids {
                        let fe_be = alloc_net_channel(
                            &mut pool,
                            &mut ra,
                            &format!("fe{host}->be{nic_id}"),
                            self.cfg.channel_slots,
                        );
                        let be_fe = alloc_net_channel(
                            &mut pool,
                            &mut ra,
                            &format!("be{nic_id}->fe{host}"),
                            self.cfg.channel_slots,
                        );
                        fe.add_backend_link(nic_id, fe_be.sender, be_fe.receiver);
                        let be_idx = backend_of_nic[nic_id].unwrap();
                        backends[be_idx].add_frontend_link(host, be_fe.sender, fe_be.receiver);
                    }
                    drivers.push(HostDriver::Oasis(fe));
                }
            }
        }

        // Storage engine: one backend per SSD, one frontend per Oasis host
        // (only when the pod has SSDs), fully meshed with 64 B channels.
        let mut ssds = Vec::new();
        let mut storage_backends: Vec<StorageBackend> = Vec::new();
        let mut storage_frontends: Vec<Option<StorageFrontend>> = Vec::new();
        for (ssd_id, (host, ssd_cfg)) in self.ssds.iter().enumerate() {
            allocator.propose(AllocCommand::RegisterSsd {
                ssd: ssd_id as u32,
                host: *host as u32,
                capacity_blocks: ssd_cfg.blocks_per_ns as u32 * ssd_cfg.namespaces,
            });
            let be_core = HostCtx::new(PortId(*host), 0);
            storage_backends.push(StorageBackend::new(
                ssd_id,
                *host,
                be_core,
                self.cfg.clone(),
            ));
            ssds.push(Ssd::new(ssd_cfg.clone()));
        }
        for (host, &(_, baseline)) in self.hosts.iter().enumerate() {
            if self.ssds.is_empty() || baseline.is_some() {
                storage_frontends.push(None);
                continue;
            }
            let data_region = ra.alloc(
                &mut pool,
                format!("host{host}.storage_data"),
                self.cfg.storage_area_per_host,
                TrafficClass::Payload,
            );
            let fe_core = HostCtx::new(PortId(host), 0);
            let mut fe = StorageFrontend::new(
                host,
                fe_core,
                self.cfg.clone(),
                BufferArea::new(data_region, self.cfg.storage_buf_size),
            );
            for (ssd_id, be) in storage_backends.iter_mut().enumerate() {
                let cmd = alloc_storage_channel(
                    &mut pool,
                    &mut ra,
                    &format!("sfe{host}->sbe{ssd_id}"),
                    1024,
                );
                let cpl = alloc_storage_channel(
                    &mut pool,
                    &mut ra,
                    &format!("sbe{ssd_id}->sfe{host}"),
                    1024,
                );
                fe.add_ssd_link(ssd_id, cmd.sender, cpl.receiver);
                be.add_frontend_link(host, cpl.sender, cmd.receiver);
            }
            storage_frontends.push(Some(fe));
        }

        Pod {
            cfg: self.cfg,
            pool,
            switch,
            nics,
            drivers,
            backends,
            instances: Vec::new(),
            allocator,
            endpoints: Vec::new(),
            ssds,
            storage_frontends,
            storage_backends,
            nic_macs,
            nic_host,
            nic_port,
            backend_of_nic,
            endpoint_port: Vec::new(),
            port_owner,
            pending: EventQueue::new(),
            ra,
            inst_region: Vec::new(),
            dead_host: vec![false; n_hosts],
            now: SimTime::ZERO,
        }
    }
}

impl Pod {
    /// Current simulated time (max of all dispatched clocks).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The MAC of a NIC.
    pub fn nic_mac(&self, nic: usize) -> MacAddr {
        self.nic_macs[nic]
    }

    /// The host a NIC is attached to.
    pub fn nic_host(&self, nic: usize) -> usize {
        self.nic_host[nic]
    }

    /// The IP assigned to an instance.
    pub fn instance_ip(&self, inst: usize) -> Ipv4Addr {
        self.instances[inst].ip
    }

    /// The MAC an instance currently answers on (its serving NIC's MAC).
    pub fn instance_mac(&self, inst: usize) -> MacAddr {
        self.instances[inst].mac()
    }

    /// Launch an instance on `host` with a NIC-bandwidth lease. Placement
    /// is local-first via the pod-wide allocator; the instance is also
    /// pre-registered with the pod's backup NIC (§3.3.3).
    pub fn launch_instance(&mut self, host: usize, app: AppKind, lease_mbps: u32) -> usize {
        let idx = self.instances.len();
        let id = idx as u32;
        let ip = Ipv4Addr::instance(id + 1);
        let mut inst = Instance::new(id, ip, host, app);

        match &self.drivers[host] {
            HostDriver::Oasis(_) => {
                let nic = self
                    .allocator
                    .place_instance(host, ip, lease_mbps)
                    .expect("no NIC with spare capacity in the pod")
                    as usize;
                let backup = self
                    .allocator
                    .state
                    .backup_nic()
                    .map(|b| b as usize)
                    .filter(|&b| b != nic);
                let tx_region = self.ra.alloc(
                    &mut self.pool,
                    format!("inst{id}.tx_area"),
                    self.cfg.tx_area_per_instance,
                    TrafficClass::Payload,
                );
                self.inst_region.push(Some(tx_region.clone()));
                let area = BufferArea::new(tx_region, self.cfg.buf_size);
                let HostDriver::Oasis(fe) = &mut self.drivers[host] else {
                    unreachable!()
                };
                fe.attach_instance(idx, ip, area, nic, backup);
                // Register with the serving and backup backends (flow rules
                // + ip→frontend routing).
                for target in [Some(nic), backup].into_iter().flatten() {
                    if let Some(b) = self.backend_of_nic[target] {
                        self.backends[b].register_instance(&mut self.nics[target], ip, id, host);
                    }
                }
                inst.set_mac(self.now, self.nic_macs[nic], false);
            }
            HostDriver::Local(_) => {
                let HostDriver::Local(ld) = &mut self.drivers[host] else {
                    unreachable!()
                };
                let nic = ld.nic_id;
                ld.attach_instance(&mut self.nics[nic], idx, ip, id);
                inst.set_mac(self.now, self.nic_macs[nic], false);
                self.inst_region.push(None);
            }
        }
        self.instances.push(inst);
        idx
    }

    /// Attach a client endpoint to a new switch port. Returns its index.
    pub fn add_endpoint(&mut self, ep: Box<dyn Endpoint>) -> usize {
        let port = self.switch.add_port();
        self.port_owner
            .push(PortOwner::Endpoint(self.endpoints.len()));
        self.endpoint_port.push(port);
        self.endpoints.push(ep);
        self.endpoints.len() - 1
    }

    /// Schedule a NIC failure at `at` using the paper's §5.3 method:
    /// disable the NIC's switch port; carrier loss is detected
    /// `cfg.link_detect` later.
    pub fn schedule_nic_failure(&mut self, at: SimTime, nic: usize) {
        self.pending.push(at, PodEvent::DisableNicPort(nic));
    }

    /// Schedule a NIC repair.
    pub fn schedule_nic_repair(&mut self, at: SimTime, nic: usize) {
        self.pending.push(at, PodEvent::EnableNicPort(nic));
    }

    /// Schedule a graceful migration of instance `ip` to `nic` (§3.3.4).
    pub fn schedule_migration(&mut self, at: SimTime, ip: Ipv4Addr, nic: u32) {
        self.pending.push(at, PodEvent::Migrate(ip, nic));
    }

    /// Schedule a host crash at `at`: its frontend/backend cores stop
    /// polling, its private CPU caches are discarded (dirty lines and all —
    /// torn write-backs are real), and its devices go silent. The allocator
    /// detects this from missing heartbeats/telemetry (§3.5).
    pub fn schedule_host_failure(&mut self, at: SimTime, host: usize) {
        self.pending.push(at, PodEvent::FailHost(host));
    }

    /// Schedule a crashed host's restart at `at`: its cores resume from the
    /// restart time with cold caches, and its storage frontend resubmits
    /// every in-flight command (the backend deduplicates replays).
    pub fn schedule_host_restart(&mut self, at: SimTime, host: usize) {
        self.pending.push(at, PodEvent::RestartHost(host));
    }

    /// Install a [`FaultPlan`]: translate every scheduled fault into pod
    /// events. An empty plan is a strict no-op — nothing is scheduled, no
    /// RNG is forked, and the simulation is byte-identical to not calling
    /// this at all (the bench determinism guard asserts it).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        let mut inj = FaultInjector::new(plan);
        let mut tag = 0u64;
        while let Some(ev) = inj.pop_due(SimTime::MAX) {
            let at = ev.at;
            match ev.kind {
                FaultKind::HostCrash {
                    host,
                    restart_after,
                } => {
                    self.schedule_host_failure(at, host);
                    if let Some(d) = restart_after {
                        self.schedule_host_restart(at + d, host);
                    }
                }
                FaultKind::PortFlap { nic, down_for } => {
                    self.schedule_nic_failure(at, nic);
                    self.schedule_nic_repair(at + down_for, nic);
                }
                FaultKind::PacketFault {
                    nic,
                    drop_ppm,
                    corrupt_ppm,
                    duplicate_ppm,
                    duration,
                } => {
                    let state = PacketFaultState::new(
                        drop_ppm,
                        corrupt_ppm,
                        duplicate_ppm,
                        at + duration,
                        inj.fork_rng(tag),
                    );
                    self.pending.push(at, PodEvent::SetPacketFault(nic, state));
                }
                FaultKind::CxlSlow {
                    host,
                    extra_ns,
                    duration,
                } => {
                    self.pending
                        .push(at, PodEvent::CxlSlowStart(host, extra_ns));
                    self.pending
                        .push(at + duration, PodEvent::CxlSlowEnd(host, extra_ns));
                }
                FaultKind::CxlStall { host, stall } => {
                    self.pending.push(at, PodEvent::CxlStall(host, stall));
                }
                FaultKind::SsdFault {
                    ssd,
                    mode,
                    duration,
                } => {
                    let ev = match mode {
                        SsdFaultMode::Timeout => PodEvent::SsdTimeoutUntil(ssd, at + duration),
                        SsdFaultMode::ReadError => PodEvent::SsdReadErrorsUntil(ssd, at + duration),
                    };
                    self.pending.push(at, ev);
                }
            }
            tag += 1;
        }
    }

    /// Carve a block volume for an instance out of the pod's pooled SSD
    /// capacity (local-first, then most-free — the storage analog of §3.5
    /// placement).
    pub fn create_volume(&mut self, inst: usize, blocks: u64) -> Option<VolumeHandle> {
        let host = self.instances[inst].host;
        let ip = self.instances[inst].ip;
        let (ssd, base) = self.allocator.place_volume(host, ip, blocks as u32)?;
        Some(VolumeHandle {
            inst,
            ssd: ssd as usize,
            base_block: base as u64,
            blocks,
        })
    }

    /// Submit a write of whole blocks to a volume. Returns the command id.
    pub fn volume_write(&mut self, vol: VolumeHandle, lba: u64, data: &[u8]) -> Option<u16> {
        let nlb = data.len() as u64 / oasis_storage::BLOCK_SIZE;
        assert!(lba + nlb <= vol.blocks, "write escapes the volume");
        let host = self.instances[vol.inst].host;
        let fe = self.storage_frontends[host].as_mut()?;
        fe.submit_write(&mut self.pool, vol.ssd, vol.base_block + lba, data)
    }

    /// Submit a read of `nlb` blocks from a volume. Returns the command id.
    pub fn volume_read(&mut self, vol: VolumeHandle, lba: u64, nlb: u32) -> Option<u16> {
        assert!(lba + nlb as u64 <= vol.blocks, "read escapes the volume");
        let host = self.instances[vol.inst].host;
        let fe = self.storage_frontends[host].as_mut()?;
        fe.submit_read(&mut self.pool, vol.ssd, vol.base_block + lba, nlb)
    }

    /// Drain completed block I/Os for instances on `host`.
    pub fn take_storage_completions(
        &mut self,
        host: usize,
    ) -> Vec<crate::engine_storage::IoResult> {
        self.storage_frontends[host]
            .as_mut()
            .map(|fe| fe.take_completions())
            .unwrap_or_default()
    }

    /// Tear an instance down: release its NIC lease and volumes (local
    /// NVMe is ephemeral — §3.4), unregister it from every backend, and
    /// remove its flow rules. The instance object remains for post-mortem
    /// stats but receives no further traffic.
    pub fn terminate_instance(&mut self, inst: usize) {
        let ip = self.instances[inst].ip;
        self.allocator
            .propose(crate::allocator::AllocCommand::Unassign { ip });
        self.allocator
            .propose(crate::allocator::AllocCommand::ReleaseVolumes { ip });
        for nic in 0..self.nics.len() {
            if let Some(b) = self.backend_of_nic[nic] {
                self.backends[b].unregister_instance(&mut self.nics[nic], ip);
            }
        }
        self.instances[inst].set_mac(self.now, MacAddr::ZERO, false);
    }

    /// Mark a repaired NIC usable for new placements again (operator
    /// action after `schedule_nic_repair`'s link restoration).
    pub fn mark_nic_repaired(&mut self, nic: usize) {
        self.allocator
            .propose(crate::allocator::AllocCommand::MarkRepaired { nic: nic as u32 });
    }

    /// Fail (or repair) an SSD; in-flight and future I/O completes with an
    /// error status that propagates to the guest (§3.4).
    pub fn set_ssd_failed(&mut self, ssd: usize, failed: bool) {
        self.ssds[ssd].set_failed(failed);
    }

    /// Apply `f` to every polling core that lives on `host`. The allocator
    /// service core is the control plane's own machine and is never
    /// fault-targeted (chaos mixes exclude it).
    fn for_each_host_core(&mut self, host: usize, mut f: impl FnMut(&mut HostCtx)) {
        match &mut self.drivers[host] {
            HostDriver::Oasis(fe) => f(&mut fe.core),
            HostDriver::Local(ld) => f(&mut ld.core),
        }
        for be in &mut self.backends {
            if be.host == host {
                f(&mut be.core);
            }
        }
        if let Some(fe) = self.storage_frontends[host].as_mut() {
            f(&mut fe.core);
        }
        for be in &mut self.storage_backends {
            if be.host == host {
                f(&mut be.core);
            }
        }
    }

    /// Reclaim everything owned by hosts the allocator just declared
    /// failed: unregister their instances from every backend (flow rules
    /// gone), detach them from the dead frontend, and return their pool
    /// regions to the region allocator. The replicated state machine has
    /// already revoked the leases and volumes, so nothing is proposed here.
    fn reclaim_failed_hosts(&mut self) {
        let failed = self.allocator.take_failed_hosts();
        for &host in &failed {
            let host = host as usize;
            for inst in 0..self.instances.len() {
                if self.instances[inst].host != host {
                    continue;
                }
                let ip = self.instances[inst].ip;
                for nic in 0..self.nics.len() {
                    if let Some(b) = self.backend_of_nic[nic] {
                        self.backends[b].unregister_instance(&mut self.nics[nic], ip);
                    }
                }
                self.instances[inst].set_mac(self.now, MacAddr::ZERO, false);
                if let Some(region) = self.inst_region[inst].take() {
                    self.ra.free(&region);
                }
            }
            if let HostDriver::Oasis(fe) = &mut self.drivers[host] {
                fe.detach_all_instances();
            }
        }
    }

    /// Bytes of pool memory currently handed out by the region allocator
    /// (the chaos harness asserts failures do not leak regions).
    pub fn pool_outstanding(&self) -> u64 {
        self.ra.outstanding()
    }

    fn forward(&mut self, now: SimTime, in_port: usize, frame: Frame) {
        for (port, at, f) in self.switch.forward(now, in_port, frame) {
            match self.port_owner[port] {
                PortOwner::Nic(n) => self.nics[n].deliver(at, f),
                PortOwner::Endpoint(e) => self.endpoints[e].deliver(at, f),
            }
        }
    }

    fn apply_event(&mut self, at: SimTime, ev: PodEvent) {
        match ev {
            PodEvent::DisableNicPort(nic) => {
                self.switch.set_port_enabled(self.nic_port[nic], false);
                self.pending
                    .push(at + self.cfg.link_detect, PodEvent::LinkDown(nic));
            }
            PodEvent::LinkDown(nic) => self.nics[nic].set_link(false),
            PodEvent::EnableNicPort(nic) => {
                self.switch.set_port_enabled(self.nic_port[nic], true);
                self.pending
                    .push(at + self.cfg.link_detect, PodEvent::LinkUp(nic));
            }
            PodEvent::LinkUp(nic) => {
                self.nics[nic].set_link(true);
                if let Some(b) = self.backend_of_nic[nic] {
                    self.backends[b].clear_failure_latch();
                }
            }
            PodEvent::FailHost(host) => {
                self.dead_host[host] = true;
                // The crash discards every private CPU cache on the host,
                // dirty lines included: anything not yet written back to
                // the pool is lost (torn write-backs).
                self.for_each_host_core(host, |c| {
                    c.cache.drain();
                });
            }
            PodEvent::RestartHost(host) => {
                if !self.dead_host[host] {
                    return;
                }
                self.dead_host[host] = false;
                self.for_each_host_core(host, |c| {
                    c.cache.drain();
                    c.clock = c.clock.max(at);
                });
                if let Some(fe) = self.storage_frontends[host].as_mut() {
                    fe.replay_pending(&mut self.pool);
                }
            }
            PodEvent::SetPacketFault(nic, state) => {
                self.switch.set_packet_fault(self.nic_port[nic], state);
            }
            PodEvent::CxlSlowStart(host, extra_ns) => {
                self.for_each_host_core(host, |c| c.costs.cxl_load_ns += extra_ns);
            }
            PodEvent::CxlSlowEnd(host, extra_ns) => {
                self.for_each_host_core(host, |c| {
                    c.costs.cxl_load_ns = c.costs.cxl_load_ns.saturating_sub(extra_ns);
                });
            }
            PodEvent::CxlStall(host, stall) => {
                self.for_each_host_core(host, |c| c.clock += stall);
            }
            PodEvent::SsdTimeoutUntil(ssd, until) => {
                self.ssds[ssd].inject_timeout_until(until);
            }
            PodEvent::SsdReadErrorsUntil(ssd, until) => {
                self.ssds[ssd].inject_read_errors_until(until);
            }
            PodEvent::Migrate(ip, nic) => {
                // The frontend registers with the new NIC's backend over
                // its message channel (§3.3.4 ordering); the pod only
                // relays the operator's intent to the allocator.
                self.allocator.migrate_instance(&mut self.pool, ip, nic);
            }
        }
    }

    /// Run the co-simulation until every component's clock reaches `until`.
    pub fn run(&mut self, until: SimTime) {
        loop {
            // Find the earliest component. `best_t` starts at the horizon so
            // a single strict compare both enforces `t < until` and keeps
            // the first-considered component on ties, exactly as before.
            let mut best_t = until;
            let mut second_t = until;
            let mut best_who = usize::MAX;
            let mut found = false;
            let mut consider = |t: SimTime, who: usize| {
                if t < best_t {
                    second_t = best_t;
                    best_t = t;
                    best_who = who;
                    found = true;
                } else if t < second_t {
                    second_t = t;
                }
            };
            // Who encoding: 0..D drivers, D..D+B backends, D+B allocator,
            // then endpoints, then pending events.
            let d = self.drivers.len();
            let b = self.backends.len();
            for (i, drv) in self.drivers.iter().enumerate() {
                if self.dead_host[i] {
                    continue;
                }
                let clock = match drv {
                    HostDriver::Oasis(fe) => fe.core.clock,
                    HostDriver::Local(ld) => ld.core.clock,
                };
                consider(clock, i);
            }
            for (i, be) in self.backends.iter().enumerate() {
                if self.dead_host[be.host] {
                    continue;
                }
                consider(be.core.clock, d + i);
            }
            consider(self.allocator.core.clock, d + b);
            let e = self.endpoints.len();
            for (i, ep) in self.endpoints.iter().enumerate() {
                consider(ep.next_time(), d + b + 1 + i);
            }
            let sf_base = d + b + 1 + e;
            for (i, fe) in self.storage_frontends.iter().enumerate() {
                if self.dead_host[i] {
                    continue;
                }
                if let Some(fe) = fe {
                    consider(fe.core.clock, sf_base + i);
                }
            }
            let sb_base = sf_base + self.storage_frontends.len();
            for (i, be) in self.storage_backends.iter().enumerate() {
                if self.dead_host[be.host] {
                    continue;
                }
                consider(be.core.clock, sb_base + i);
            }
            if let Some(t) = self.pending.peek_time() {
                consider(t, usize::MAX);
            }

            if !found {
                break;
            }
            let (t, who) = (best_t, best_who);

            // Idle-skip: a baseline driver that provably has no work until
            // some future time would burn one selection per polling quantum
            // just advancing its clock. Batch every iteration that (a) ends
            // before its next real work and (b) keeps it strictly earliest
            // (ties fall through to the exact per-step path).
            if who < d {
                if let HostDriver::Local(ld) = &self.drivers[who] {
                    let quanta = ld.idle_quanta(&self.nics[ld.nic_id], &self.instances, second_t);
                    if quanta > 0 {
                        match &mut self.drivers[who] {
                            HostDriver::Local(ld) => ld.skip_idle(quanta),
                            HostDriver::Oasis(_) => unreachable!(),
                        }
                        continue;
                    }
                }
            }
            self.now = self.now.max(t);

            if who == usize::MAX {
                let (at, ev) = self.pending.pop().unwrap();
                self.apply_event(at, ev);
            } else if who < d {
                let mut local_out: Option<(usize, Vec<(SimTime, Frame)>)> = None;
                match &mut self.drivers[who] {
                    HostDriver::Oasis(fe) => {
                        fe.step(&mut self.pool, &mut self.instances, &self.nic_macs);
                    }
                    HostDriver::Local(ld) => {
                        let nic = ld.nic_id;
                        let egress =
                            ld.step(&mut self.pool, &mut self.nics[nic], &mut self.instances);
                        local_out = Some((self.nic_port[nic], egress));
                    }
                }
                if let Some((port, egress)) = local_out {
                    for (at, f) in egress {
                        self.forward(at, port, f);
                    }
                }
            } else if who < d + b {
                let bi = who - d;
                let nic = self.backends[bi].nic_id;
                let egress = {
                    let (be, nic_ref) = (&mut self.backends[bi], &mut self.nics[nic]);
                    be.step(&mut self.pool, nic_ref)
                };
                let port = self.nic_port[nic];
                for (at, f) in egress {
                    self.forward(at, port, f);
                }
            } else if who == d + b {
                self.allocator.step(&mut self.pool);
                if self.allocator.has_newly_failed_hosts() {
                    self.reclaim_failed_hosts();
                }
            } else if who < d + b + 1 + self.endpoints.len() {
                let ei = who - d - b - 1;
                let frames = self.endpoints[ei].poll(t);
                let port = self.endpoint_port[ei];
                for f in frames {
                    self.forward(t, port, f);
                }
            } else if who < d + b + 1 + self.endpoints.len() + self.storage_frontends.len() {
                let fi = who - d - b - 1 - self.endpoints.len();
                if let Some(fe) = self.storage_frontends[fi].as_mut() {
                    fe.step(&mut self.pool);
                }
            } else {
                let bi = who - d - b - 1 - self.endpoints.len() - self.storage_frontends.len();
                let ssd = self.storage_backends[bi].ssd_id;
                self.storage_backends[bi].step(&mut self.pool, &mut self.ssds[ssd]);
            }
        }
        self.now = self.now.max(until);
    }
}
