//! The pod runtime: one deterministic co-simulation of an entire Oasis pod.
//!
//! A [`Pod`] owns the CXL pool, the hosts' polling cores (frontend and
//! backend drivers, or the Junction baseline driver), the NICs, the ToR
//! switch, the instances, the pod-wide allocator, and any external client
//! endpoints. [`Pod::run`] registers every component as an actor on an
//! [`oasis_sim::sched::Scheduler`] and dispatches whichever actor has the
//! earliest wake time (ties break in registration order), exactly like the
//! co-simulated microbenchmarks — so cross-host latencies, failover
//! timelines, and CXL link traffic all emerge from the same component
//! models the unit tests exercise. Device engines are stepped uniformly
//! through [`crate::engine::DeviceEngine`]; the runtime has no per-engine
//! special cases, which is what lets a new device class (see
//! [`crate::engine_accel`]) plug in without touching the loop.
//!
//! Instance launch (placement + registration) is performed synchronously at
//! build time, as a cloud control plane would before a VM starts; the
//! *runtime* control paths that the paper measures — link-failure
//! detection, telemetry, failover rerouting, graceful migration — all flow
//! through message channels with simulated timing.

use oasis_accel::{AccelConfig, AccelDevice, AccelOp};
use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::region::Region;
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::nic::{Nic, NicConfig};
use oasis_net::packet::Frame;
use oasis_net::switch::Switch;
use oasis_sim::event::EventQueue;
use oasis_sim::fault::{
    AccelFaultMode, FaultInjector, FaultKind, FaultPlan, PacketFaultState, SsdFaultMode,
};
use oasis_sim::sched::{Scheduler, StepCtx, StepOutcome};
use oasis_sim::shard::{self, Envelope, Outgoing, ShardWorld, ShardedRunner};
use oasis_sim::time::{SimDuration, SimTime};

use oasis_storage::ssd::{Ssd, SsdConfig};

use crate::allocator::{AllocCommand, PodAllocator};
use crate::baseline::LocalDriver;
use crate::config::{BufferPlacement, OasisConfig};
use crate::datapath::{alloc_net_channel, BufferArea};
use crate::engine::{DeviceEngine, EngineFault, EngineWorld};
use crate::engine_accel::{alloc_accel_channel, AccelBackend, AccelFrontend, JobResult};
use crate::engine_net::{BackendDriver, FrontendDriver};
use crate::engine_storage::{alloc_storage_channel, StorageBackend, StorageFrontend};
use crate::error::PodError;
use crate::instance::{AppKind, Instance};
use crate::snapshot::{
    SnapshotError, SnapshotReader, SnapshotSection, SnapshotWriter, Snapshottable,
};

/// An external client attached directly to a switch port (load generators,
/// echo clients, trace replayers — implemented in `oasis-apps`).
pub trait Endpoint {
    /// When this endpoint next wants to act ([`SimTime::MAX`] when idle).
    fn next_time(&self) -> SimTime;
    /// Act at `now`; emitted frames enter the switch on this endpoint's
    /// port.
    fn poll(&mut self, now: SimTime) -> Vec<Frame>;
    /// A frame arrives from the switch at `at`.
    fn deliver(&mut self, at: SimTime, frame: Frame);
}

/// The driver serving a host's instances.
pub enum HostDriver {
    /// Oasis frontend (instances may be served by remote NICs).
    Oasis(FrontendDriver),
    /// Junction-style baseline: combined driver + local NIC.
    Local(LocalDriver),
}

enum PortOwner {
    Nic(usize),
    Endpoint(usize),
    /// Inter-pod uplink by index: frames egressing here leave the pod and
    /// are relayed by the fleet layer (`crate::fleet`).
    Uplink(usize),
}

enum PodEvent {
    /// Operator/failure injection: disable the switch port of a NIC
    /// (§5.3's failure method).
    DisableNicPort(usize),
    /// The NIC's PHY notices carrier loss (after `link_detect`).
    LinkDown(usize),
    /// Repair: re-enable the port.
    EnableNicPort(usize),
    /// Carrier restored.
    LinkUp(usize),
    /// Start a graceful migration of an instance to a NIC (§3.3.4).
    Migrate(Ipv4Addr, u32),
    /// Crash a host: all of its polling cores stop, and its devices go
    /// silent. The allocator infers the failure from missing telemetry
    /// (§3.5).
    FailHost(usize),
    /// A crashed host boots again: cores resume (cold caches) from the
    /// restart time and the storage frontend replays in-flight commands.
    RestartHost(usize),
    /// Install probabilistic drop/corrupt/duplicate on a NIC's switch port
    /// (the state self-expires).
    SetPacketFault(usize, PacketFaultState),
    /// Add extra CXL load-to-use latency on every core of a host.
    CxlSlowStart(usize, u64),
    /// Remove the extra latency again.
    CxlSlowEnd(usize, u64),
    /// Freeze every core of a host for the duration (link retraining).
    CxlStall(usize, SimDuration),
    /// Open an SSD command-swallowing window closing at the given time.
    SsdTimeoutUntil(usize, SimTime),
    /// Open an SSD read-media-error window closing at the given time.
    SsdReadErrorsUntil(usize, SimTime),
    /// Open an accelerator job-swallowing window closing at the given time.
    AccelTimeoutUntil(usize, SimTime),
    /// Open an accelerator compute-error window closing at the given time.
    AccelErrorsUntil(usize, SimTime),
    /// A frame arrives from another pod on the given uplink: it enters the
    /// local switch on the uplink's port, exactly as a wire delivery would.
    UplinkFrame(usize, Frame),
}

/// A handle to one device engine, resolved against the pod's engine tables
/// at dispatch time (actors cannot hold borrows across dispatches).
#[derive(Clone, Copy)]
enum EngineRef {
    /// Per-host driver (Oasis frontend or Junction baseline).
    Driver(usize),
    /// Net backend by index.
    NetBackend(usize),
    /// Storage frontend by host.
    StorageFe(usize),
    /// Storage backend by index.
    StorageBe(usize),
    /// Accel frontend by host.
    AccelFe(usize),
    /// Accel backend by index.
    AccelBe(usize),
}

/// What a scheduler actor id stands for.
#[derive(Clone, Copy)]
enum ActorKind {
    /// A device-engine polling core, stepped through [`DeviceEngine`].
    Engine(EngineRef),
    /// The pod-wide allocator service.
    Allocator,
    /// A client endpoint by index.
    Endpoint(usize),
    /// The pod's operator/fault event queue.
    Events,
}

/// Base offsets of each actor class in the scheduler's id space. Ids are
/// assigned in registration order, which is also the tie-break order: on
/// equal wake times the lowest id runs first, reproducing the legacy
/// earliest-clock scan's first-considered-wins rule.
struct ActorMap {
    driver_base: usize,
    net_backend_base: usize,
    endpoint_base: usize,
    storage_fe_base: usize,
    storage_be_base: usize,
    accel_fe_base: usize,
    accel_be_base: usize,
}

/// Visit every device engine on `host` as `&mut dyn DeviceEngine`, in
/// actor registration order. A free function over the split engine tables
/// so callers can destructure [`Pod`] and keep the pool borrowed alongside.
// One parameter per engine table is the point: the split borrows are what
// let the pool stay mutably borrowed next to them.
#[allow(clippy::too_many_arguments)]
fn each_host_engine(
    drivers: &mut [HostDriver],
    backends: &mut [BackendDriver],
    storage_frontends: &mut [Option<StorageFrontend>],
    storage_backends: &mut [StorageBackend],
    accel_frontends: &mut [Option<AccelFrontend>],
    accel_backends: &mut [AccelBackend],
    host: usize,
    mut f: impl FnMut(&mut dyn DeviceEngine),
) {
    match &mut drivers[host] {
        HostDriver::Oasis(fe) => f(fe),
        HostDriver::Local(ld) => f(ld),
    }
    for be in backends.iter_mut().filter(|b| b.host == host) {
        f(be);
    }
    if let Some(fe) = storage_frontends[host].as_mut() {
        f(fe);
    }
    for be in storage_backends.iter_mut().filter(|b| b.host == host) {
        f(be);
    }
    if let Some(fe) = accel_frontends[host].as_mut() {
        f(fe);
    }
    for be in accel_backends.iter_mut().filter(|b| b.host == host) {
        f(be);
    }
}

/// A block volume carved for an instance by the pod-wide allocator.
#[derive(Clone, Copy, Debug)]
pub struct VolumeHandle {
    /// Owning instance.
    pub inst: usize,
    /// SSD the volume lives on.
    pub ssd: usize,
    /// First device block.
    pub base_block: u64,
    /// Length in blocks.
    pub blocks: u64,
}

/// Ambient-telemetry accumulators for the pod runtime (empty with `obs`
/// off; the paired no-op methods keep every call site unconditional).
#[derive(Default)]
struct PodObs {
    /// Scheduler stats folded across [`Pod::run`] calls (each run builds a
    /// fresh [`Scheduler`]; actor registration order is fixed per pod
    /// shape, so per-actor tallies line up).
    #[cfg(feature = "obs")]
    sched: oasis_sim::sched::SchedStats,
    /// Idle-skip fast-forwards taken by the dispatch loop.
    #[cfg(feature = "obs")]
    idle_skips: u64,
    /// Sim nanoseconds saved per idle-skip.
    #[cfg(feature = "obs")]
    idle_skip_ns: oasis_obs::ObsHistogram,
}

impl PodObs {
    #[cfg(feature = "obs")]
    #[inline]
    fn note_idle_skip(&mut self, from: SimTime, to: SimTime) {
        self.idle_skips += 1;
        self.idle_skip_ns.record((to - from).as_nanos());
    }
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_idle_skip(&mut self, _from: SimTime, _to: SimTime) {}

    #[cfg(feature = "obs")]
    #[inline]
    fn fold_sched(&mut self, sched: &oasis_sim::sched::Scheduler) {
        self.sched.merge(sched.stats());
    }
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn fold_sched(&mut self, _sched: &oasis_sim::sched::Scheduler) {}

    /// Export the collected ambient stats (no-op with `obs` off: the
    /// corresponding snapshot entries simply do not exist).
    #[cfg(feature = "obs")]
    fn export(&self, sink: &mut oasis_obs::MetricSink) {
        use oasis_sim::metrics as sm;
        sink.set(sm::SCHED_DISPATCHES, 0, self.sched.dispatches);
        sink.set(sm::SCHED_STALE_SKIPS, 0, self.sched.stale_skips);
        for (actor, &polls) in self.sched.actor_polls.iter().enumerate() {
            if polls != 0 {
                sink.set(sm::SCHED_ACTOR_POLLS, actor as u32, polls);
            }
        }
        sink.merge_hist(
            sm::SCHED_WAKE_TO_POLL_NS,
            0,
            &oasis_obs::ObsHistogram::from_sim(&self.sched.wake_to_poll),
        );
        sink.set(sm::SCHED_IDLE_SKIPS, 0, self.idle_skips);
        sink.merge_hist(sm::SCHED_IDLE_SKIP_NS, 0, &self.idle_skip_ns);
    }
    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn export(&self, _sink: &mut oasis_obs::MetricSink) {}
}

/// The assembled pod.
pub struct Pod {
    /// Configuration.
    pub cfg: OasisConfig,
    /// The shared CXL pool.
    pub pool: CxlPool,
    /// The ToR switch.
    pub switch: Switch,
    /// NICs by id.
    pub nics: Vec<Nic>,
    /// Per-host drivers.
    pub drivers: Vec<HostDriver>,
    /// Backend drivers (Oasis NICs only).
    pub backends: Vec<BackendDriver>,
    /// Instances by index (instance id == index).
    pub instances: Vec<Instance>,
    /// The pod-wide allocator.
    pub allocator: PodAllocator,
    /// Client endpoints (`Send` so pods can migrate between shard workers).
    pub endpoints: Vec<Box<dyn Endpoint + Send>>,
    /// SSDs by id.
    pub ssds: Vec<Ssd>,
    /// Storage frontends, per host (Oasis hosts in pods with SSDs).
    pub storage_frontends: Vec<Option<StorageFrontend>>,
    /// Storage backends, per SSD.
    pub storage_backends: Vec<StorageBackend>,
    /// Compute-offload accelerators by id.
    pub accels: Vec<AccelDevice>,
    /// Accel frontends, per host (Oasis hosts in pods with accelerators).
    pub accel_frontends: Vec<Option<AccelFrontend>>,
    /// Accel backends, per accelerator.
    pub accel_backends: Vec<AccelBackend>,
    nic_macs: Vec<MacAddr>,
    nic_host: Vec<usize>,
    nic_port: Vec<usize>,
    backend_of_nic: Vec<Option<usize>>,
    endpoint_port: Vec<usize>,
    port_owner: Vec<PortOwner>,
    /// Site number (fleet-unique MAC/IP numbering base; see
    /// [`PodBuilder::site`]).
    site: u32,
    /// Switch port of each inter-pod uplink.
    uplink_port: Vec<usize>,
    /// Frames that egressed on an uplink this window, awaiting relay by the
    /// fleet layer: `(egress_time, uplink, frame)`.
    pub(crate) uplink_out: Vec<(SimTime, usize, Frame)>,
    /// Persistent sharded-execution driver for [`Pod::run`] (single shard);
    /// carries the window cursor and pooled buffers across calls.
    shard_runner: Option<ShardedRunner<UplinkMsg>>,
    pending: EventQueue<PodEvent>,
    ra: RegionAllocator,
    /// Per-instance TX-area region, kept so a host-failure reclaim can
    /// return it to the allocator (`None` for baseline instances).
    inst_region: Vec<Option<Region>>,
    /// Hosts that have crashed (their cores are no longer stepped).
    dead_host: Vec<bool>,
    now: SimTime,
    /// Ambient-telemetry accumulators (empty with `obs` off).
    obs: PodObs,
}

// Pods migrate between shard worker threads (`oasis_sim::shard`); keep any
// non-`Send` regression a compile error rather than a runtime surprise.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Pod>();
};

/// Builds a [`Pod`]. Hosts and NICs are declared first; instances and
/// endpoints are added to the built pod.
pub struct PodBuilder {
    cfg: OasisConfig,
    pool_bytes: u64,
    site: u32,
    /// (has_nic, baseline placement or None for Oasis).
    hosts: Vec<(bool, Option<BufferPlacement>)>,
    backup_nic_host: Option<usize>,
    /// (host, config) per SSD.
    ssds: Vec<(usize, SsdConfig)>,
    /// (host, config) per accelerator.
    accels: Vec<(usize, AccelConfig)>,
}

impl PodBuilder {
    /// Start building with a configuration.
    pub fn new(cfg: OasisConfig) -> Self {
        PodBuilder {
            cfg,
            pool_bytes: 64 << 20,
            site: 0,
            hosts: Vec::new(),
            backup_nic_host: None,
            ssds: Vec::new(),
            accels: Vec::new(),
        }
    }

    /// Override the pool size (default 64 MiB of simulated CXL memory).
    pub fn pool_bytes(mut self, bytes: u64) -> Self {
        self.pool_bytes = bytes;
        self
    }

    /// Site number for multi-pod fleets ([`crate::fleet::Fleet`]). NIC MACs
    /// and instance IPs are numbered within the site, so pods that share an
    /// L2 domain over uplinks must use distinct sites (up to 255 instances
    /// per site); a standalone pod can leave the default 0.
    pub fn site(mut self, site: u32) -> Self {
        self.site = site;
        self
    }

    /// Add an Oasis host without a local NIC. Returns the host index.
    pub fn add_host(&mut self) -> usize {
        self.hosts.push((false, None));
        self.hosts.len() - 1
    }

    /// Add an Oasis host with a local NIC (and backend driver).
    pub fn add_nic_host(&mut self) -> usize {
        self.hosts.push((true, None));
        self.hosts.len() - 1
    }

    /// Add a baseline (Junction) host with a local NIC and the given buffer
    /// placement.
    pub fn add_baseline_host(&mut self, placement: BufferPlacement) -> usize {
        self.hosts.push((true, Some(placement)));
        self.hosts.len() - 1
    }

    /// Attach an SSD to `host` (drives the storage engine, §3.4). Returns
    /// the SSD id.
    pub fn add_ssd(&mut self, host: usize, cfg: SsdConfig) -> usize {
        assert!(host < self.hosts.len(), "add hosts before their SSDs");
        self.ssds.push((host, cfg));
        self.ssds.len() - 1
    }

    /// Attach a compute-offload accelerator to `host` (drives the accel
    /// engine — the third device class, proving the [`crate::engine`]
    /// abstraction generalizes). Returns the accelerator id.
    pub fn add_accel(&mut self, host: usize, cfg: AccelConfig) -> usize {
        assert!(
            host < self.hosts.len(),
            "add hosts before their accelerators"
        );
        self.accels.push((host, cfg));
        self.accels.len() - 1
    }

    /// Reserve the NIC of `host` as the pod's failover backup (§3.3.3).
    pub fn backup_nic_on(mut self, host: usize) -> Self {
        self.backup_nic_host = Some(host);
        self
    }

    /// Assemble the pod.
    pub fn build(self) -> Pod {
        let n_hosts = self.hosts.len();
        let mut pool = CxlPool::new(self.pool_bytes, n_hosts);
        let mut ra = RegionAllocator::new(&pool);
        let mut switch = Switch::new(0);
        let mut nics = Vec::new();
        let mut nic_macs = Vec::new();
        let mut nic_host = Vec::new();
        let mut nic_port = Vec::new();
        let mut backend_of_nic: Vec<Option<usize>> = Vec::new();
        let mut backends: Vec<BackendDriver> = Vec::new();
        let mut port_owner = Vec::new();

        // Allocator service core (control plane; port 0's host).
        let alloc_core = HostCtx::new(PortId(0), 0);
        let mut allocator = PodAllocator::new(alloc_core, self.cfg.clone());

        // Create NICs and backend drivers.
        let mut oasis_nic_ids = Vec::new();
        for (host, &(has_nic, baseline)) in self.hosts.iter().enumerate() {
            if !has_nic {
                continue;
            }
            let nic_id = nics.len();
            let mac = MacAddr::nic(((self.site as u64) << 16) | nic_id as u64);
            let nic = Nic::new(mac, NicConfig::default());
            let port = switch.add_port();
            port_owner.push(PortOwner::Nic(nic_id));
            let backup = self.backup_nic_host == Some(host);
            allocator.propose(AllocCommand::RegisterNic {
                nic: nic_id as u32,
                host: host as u32,
                capacity_mbps: (nic.bandwidth_gbps() * 1000.0) as u32,
                backup,
            });
            if baseline.is_none() {
                // Oasis backend: RX area + allocator channel.
                let rx_region = ra.alloc(
                    &mut pool,
                    format!("nic{nic_id}.rx_area"),
                    self.cfg.rx_area_per_nic,
                    TrafficClass::Payload,
                );
                let pair =
                    alloc_net_channel(&mut pool, &mut ra, &format!("be{nic_id}->alloc"), 256);
                allocator.add_backend(nic_id as u32, pair.receiver);
                let be_to_alloc = pair.sender;
                let be_core = HostCtx::new(PortId(host), 1 << 20);
                // Backends do not receive from the allocator in this
                // implementation; give them an inert receiver on a tiny
                // private channel.
                let inert =
                    alloc_net_channel(&mut pool, &mut ra, &format!("alloc->be{nic_id}"), 16);
                let backend = BackendDriver::new(
                    nic_id,
                    host,
                    be_core,
                    self.cfg.clone(),
                    BufferArea::new(rx_region, self.cfg.buf_size),
                    be_to_alloc,
                    inert.receiver,
                );
                backend_of_nic.push(Some(backends.len()));
                backends.push(backend);
                oasis_nic_ids.push(nic_id);
            } else {
                backend_of_nic.push(None);
            }
            nic_macs.push(mac);
            nic_host.push(host);
            nic_port.push(port);
            nics.push(nic);
        }

        // Create host drivers.
        let mut drivers = Vec::new();
        for (host, &(has_nic, baseline)) in self.hosts.iter().enumerate() {
            match baseline {
                Some(placement) => {
                    // oasis-check: allow(no-panic) pod construction, not a runtime path: a
                    // baseline placement without a NIC is a config error caught at build.
                    let nic_id = nic_host
                        .iter()
                        .position(|&h| h == host)
                        .expect("baseline host has a NIC");
                    let core = HostCtx::new(PortId(host), 8 << 20);
                    let ld = LocalDriver::new(
                        host,
                        nic_id,
                        core,
                        self.cfg.clone(),
                        placement,
                        &mut pool,
                        &mut ra,
                    );
                    drivers.push(HostDriver::Local(ld));
                }
                None => {
                    let _ = has_nic;
                    let fe_core = HostCtx::new(PortId(host), 8 << 20);
                    let fe_alloc_tx =
                        alloc_net_channel(&mut pool, &mut ra, &format!("fe{host}->alloc"), 256);
                    let alloc_fe =
                        alloc_net_channel(&mut pool, &mut ra, &format!("alloc->fe{host}"), 256);
                    allocator.add_frontend(host, alloc_fe.sender, fe_alloc_tx.receiver);
                    let mut fe = FrontendDriver::new(
                        host,
                        fe_core,
                        self.cfg.clone(),
                        fe_alloc_tx.sender,
                        alloc_fe.receiver,
                    );
                    // Channel pairs to every Oasis backend.
                    for &nic_id in &oasis_nic_ids {
                        let fe_be = alloc_net_channel(
                            &mut pool,
                            &mut ra,
                            &format!("fe{host}->be{nic_id}"),
                            self.cfg.channel_slots,
                        );
                        let be_fe = alloc_net_channel(
                            &mut pool,
                            &mut ra,
                            &format!("be{nic_id}->fe{host}"),
                            self.cfg.channel_slots,
                        );
                        fe.add_backend_link(nic_id, fe_be.sender, be_fe.receiver);
                        // oasis-check: allow(no-panic) pod construction: every Oasis NIC id
                        // was assigned a backend in the loop above.
                        let be_idx = backend_of_nic[nic_id].unwrap();
                        backends[be_idx].add_frontend_link(host, be_fe.sender, fe_be.receiver);
                    }
                    drivers.push(HostDriver::Oasis(fe));
                }
            }
        }

        // Storage engine: one backend per SSD, one frontend per Oasis host
        // (only when the pod has SSDs), fully meshed with 64 B channels.
        let mut ssds = Vec::new();
        let mut storage_backends: Vec<StorageBackend> = Vec::new();
        let mut storage_frontends: Vec<Option<StorageFrontend>> = Vec::new();
        for (ssd_id, (host, ssd_cfg)) in self.ssds.iter().enumerate() {
            allocator.propose(AllocCommand::RegisterSsd {
                ssd: ssd_id as u32,
                host: *host as u32,
                capacity_blocks: ssd_cfg.blocks_per_ns as u32 * ssd_cfg.namespaces,
            });
            let be_core = HostCtx::new(PortId(*host), 0);
            storage_backends.push(StorageBackend::new(
                ssd_id,
                *host,
                be_core,
                self.cfg.clone(),
            ));
            ssds.push(Ssd::new(ssd_cfg.clone()));
        }
        for (host, &(_, baseline)) in self.hosts.iter().enumerate() {
            if self.ssds.is_empty() || baseline.is_some() {
                storage_frontends.push(None);
                continue;
            }
            let data_region = ra.alloc(
                &mut pool,
                format!("host{host}.storage_data"),
                self.cfg.storage_area_per_host,
                TrafficClass::Payload,
            );
            let fe_core = HostCtx::new(PortId(host), 0);
            let mut fe = StorageFrontend::new(
                host,
                fe_core,
                self.cfg.clone(),
                BufferArea::new(data_region, self.cfg.storage_buf_size),
            );
            for (ssd_id, be) in storage_backends.iter_mut().enumerate() {
                let cmd = alloc_storage_channel(
                    &mut pool,
                    &mut ra,
                    &format!("sfe{host}->sbe{ssd_id}"),
                    1024,
                );
                let cpl = alloc_storage_channel(
                    &mut pool,
                    &mut ra,
                    &format!("sbe{ssd_id}->sfe{host}"),
                    1024,
                );
                fe.add_ssd_link(ssd_id, cmd.sender, cpl.receiver);
                be.add_frontend_link(host, cpl.sender, cmd.receiver);
            }
            storage_frontends.push(Some(fe));
        }

        // Accel engine: one backend per accelerator, one frontend per Oasis
        // host (only when the pod has accelerators), fully meshed with 64 B
        // job-descriptor channels — structurally identical to storage, which
        // is the point of the engine abstraction.
        let mut accels = Vec::new();
        let mut accel_backends: Vec<AccelBackend> = Vec::new();
        let mut accel_frontends: Vec<Option<AccelFrontend>> = Vec::new();
        for (dev_id, (host, accel_cfg)) in self.accels.iter().enumerate() {
            allocator.propose(AllocCommand::RegisterAccel {
                accel: dev_id as u32,
                host: *host as u32,
            });
            let be_core = HostCtx::new(PortId(*host), 0);
            accel_backends.push(AccelBackend::new(dev_id, *host, be_core, self.cfg.clone()));
            accels.push(AccelDevice::new(accel_cfg.clone()));
        }
        for (host, &(_, baseline)) in self.hosts.iter().enumerate() {
            if self.accels.is_empty() || baseline.is_some() {
                accel_frontends.push(None);
                continue;
            }
            let data_region = ra.alloc(
                &mut pool,
                format!("host{host}.accel_data"),
                self.cfg.accel_area_per_host,
                TrafficClass::Payload,
            );
            let fe_core = HostCtx::new(PortId(host), 0);
            let mut fe = AccelFrontend::new(
                host,
                fe_core,
                self.cfg.clone(),
                BufferArea::new(data_region, self.cfg.accel_buf_size),
            );
            for (dev_id, be) in accel_backends.iter_mut().enumerate() {
                let cmd = alloc_accel_channel(
                    &mut pool,
                    &mut ra,
                    &format!("afe{host}->abe{dev_id}"),
                    1024,
                );
                let cpl = alloc_accel_channel(
                    &mut pool,
                    &mut ra,
                    &format!("abe{dev_id}->afe{host}"),
                    1024,
                );
                fe.add_accel_link(dev_id, cmd.sender, cpl.receiver);
                be.add_frontend_link(host, cpl.sender, cmd.receiver);
            }
            accel_frontends.push(Some(fe));
        }

        Pod {
            cfg: self.cfg,
            pool,
            switch,
            nics,
            drivers,
            backends,
            instances: Vec::new(),
            allocator,
            endpoints: Vec::new(),
            ssds,
            storage_frontends,
            storage_backends,
            accels,
            accel_frontends,
            accel_backends,
            nic_macs,
            nic_host,
            nic_port,
            backend_of_nic,
            endpoint_port: Vec::new(),
            port_owner,
            site: self.site,
            uplink_port: Vec::new(),
            uplink_out: Vec::new(),
            shard_runner: None,
            pending: EventQueue::new(),
            ra,
            inst_region: Vec::new(),
            dead_host: vec![false; n_hosts],
            now: SimTime::ZERO,
            obs: PodObs::default(),
        }
    }
}

impl Pod {
    /// Current simulated time (max of all dispatched clocks).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The pod's site number (fleet-unique MAC/IP numbering base).
    pub fn site(&self) -> u32 {
        self.site
    }

    /// Number of hosts in the pod.
    pub fn hosts(&self) -> usize {
        self.drivers.len()
    }

    /// Export every component's telemetry as one canonical snapshot: each
    /// engine's [`DeviceEngine::on_metrics`] hook (host order, registration
    /// order within a host), the allocator's control-plane tallies, the
    /// pool's link meters and per-host cache stats, and — with `obs` on —
    /// the ambient scheduler/idle-skip stats. Pure observer: calling this
    /// never changes pod state or timing, so the simulated timeline is
    /// identical whether or not snapshots are taken.
    pub fn metrics_snapshot(&self) -> oasis_obs::MetricsSnapshot {
        let mut sink = oasis_obs::MetricSink::new();
        for host in 0..self.drivers.len() {
            match &self.drivers[host] {
                HostDriver::Oasis(fe) => fe.on_metrics(&mut sink),
                HostDriver::Local(ld) => ld.on_metrics(&mut sink),
            }
            for be in self.backends.iter().filter(|b| b.host == host) {
                be.on_metrics(&mut sink);
            }
            if let Some(fe) = self.storage_frontends[host].as_ref() {
                fe.on_metrics(&mut sink);
            }
            for be in self.storage_backends.iter().filter(|b| b.host == host) {
                be.on_metrics(&mut sink);
            }
            if let Some(fe) = self.accel_frontends[host].as_ref() {
                fe.on_metrics(&mut sink);
            }
            for be in self.accel_backends.iter().filter(|b| b.host == host) {
                be.on_metrics(&mut sink);
            }
        }
        sink.set(
            crate::metrics::ALLOC_REROUTES_SENT,
            0,
            self.allocator.reroutes_sent,
        );
        sink.set(crate::metrics::ALLOC_FAILOVERS, 0, self.allocator.failovers);
        oasis_cxl::obs::export_host_metrics(&self.allocator.core, &mut sink);
        oasis_cxl::obs::export_pool_metrics(&self.pool, &mut sink);
        self.obs.export(&mut sink);
        sink.snapshot()
    }

    /// The MAC of a NIC.
    pub fn nic_mac(&self, nic: usize) -> MacAddr {
        self.nic_macs[nic]
    }

    /// The host a NIC is attached to.
    pub fn nic_host(&self, nic: usize) -> usize {
        self.nic_host[nic]
    }

    /// The IP assigned to an instance.
    pub fn instance_ip(&self, inst: usize) -> Ipv4Addr {
        self.instances[inst].ip
    }

    /// The MAC an instance currently answers on (its serving NIC's MAC).
    pub fn instance_mac(&self, inst: usize) -> MacAddr {
        self.instances[inst].mac()
    }

    /// Launch an instance on `host` with a NIC-bandwidth lease. Placement
    /// is local-first via the pod-wide allocator; the instance is also
    /// pre-registered with the pod's backup NIC (§3.3.3).
    ///
    /// Panics when placement fails — experiment harnesses that want to
    /// handle a full pod use [`Pod::try_launch_instance`].
    pub fn launch_instance(&mut self, host: usize, app: AppKind, lease_mbps: u32) -> usize {
        match self.try_launch_instance(host, app, lease_mbps) {
            Ok(idx) => idx,
            // oasis-check: allow(no-panic) documented panicking convenience wrapper;
            // runtime callers use try_launch_instance.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible instance launch: placement failure surfaces as a
    /// [`PodError`] instead of a panic.
    pub fn try_launch_instance(
        &mut self,
        host: usize,
        app: AppKind,
        lease_mbps: u32,
    ) -> Result<usize, PodError> {
        if host >= self.drivers.len() {
            return Err(PodError::NoSuchHost(host));
        }
        let idx = self.instances.len();
        let id = idx as u32;
        let ip = Ipv4Addr::instance((self.site << 8) | (id + 1));
        let mut inst = Instance::new(id, ip, host, app);

        match &self.drivers[host] {
            HostDriver::Oasis(_) => {
                let nic = self
                    .allocator
                    .place_instance(host, ip, lease_mbps)
                    .ok_or(PodError::NoNicCapacity)? as usize;
                let backup = self
                    .allocator
                    .state
                    .backup_nic()
                    .map(|b| b as usize)
                    .filter(|&b| b != nic);
                let tx_region = self.ra.alloc(
                    &mut self.pool,
                    format!("inst{id}.tx_area"),
                    self.cfg.tx_area_per_instance,
                    TrafficClass::Payload,
                );
                self.inst_region.push(Some(tx_region.clone()));
                let area = BufferArea::new(tx_region, self.cfg.buf_size);
                let HostDriver::Oasis(fe) = &mut self.drivers[host] else {
                    return Err(PodError::EngineMissing {
                        host,
                        engine: "net",
                    });
                };
                fe.attach_instance(idx, ip, area, nic, backup);
                // Register with the serving and backup backends (flow rules
                // + ip→frontend routing).
                for target in [Some(nic), backup].into_iter().flatten() {
                    if let Some(b) = self.backend_of_nic[target] {
                        self.backends[b].register_instance(&mut self.nics[target], ip, id, host);
                    }
                }
                inst.set_mac(self.now, self.nic_macs[nic], false);
            }
            HostDriver::Local(_) => {
                let HostDriver::Local(ld) = &mut self.drivers[host] else {
                    return Err(PodError::EngineMissing {
                        host,
                        engine: "net",
                    });
                };
                let nic = ld.nic_id;
                ld.attach_instance(&mut self.nics[nic], idx, ip, id);
                inst.set_mac(self.now, self.nic_macs[nic], false);
                self.inst_region.push(None);
            }
        }
        self.instances.push(inst);
        Ok(idx)
    }

    /// Attach a client endpoint to a new switch port. Returns its index.
    pub fn add_endpoint(&mut self, ep: Box<dyn Endpoint + Send>) -> usize {
        let port = self.switch.add_port();
        self.port_owner
            .push(PortOwner::Endpoint(self.endpoints.len()));
        self.endpoint_port.push(port);
        self.endpoints.push(ep);
        self.endpoints.len() - 1
    }

    /// Attach an inter-pod uplink to a new switch port. Returns the uplink
    /// index. Frames the switch egresses here accumulate in the pod's
    /// uplink-out buffer; the fleet layer (`crate::fleet`) relays them to
    /// the peer pod with the uplink's latency. Standard L2 learning makes
    /// routing work unmodified: remote MACs are learned from uplink ingress
    /// traffic, unknown destinations flood to the uplink like any port.
    pub fn add_uplink(&mut self) -> usize {
        let port = self.switch.add_port();
        self.port_owner
            .push(PortOwner::Uplink(self.uplink_port.len()));
        self.uplink_port.push(port);
        self.uplink_port.len() - 1
    }

    /// Number of attached inter-pod uplinks.
    pub fn uplinks(&self) -> usize {
        self.uplink_port.len()
    }

    /// A frame from a peer pod arrives on `uplink` at `at` (simulated
    /// time). It is queued on the pod's event timeline and enters the
    /// switch when the clock reaches `at`.
    pub fn inject_uplink_frame(&mut self, at: SimTime, uplink: usize, frame: Frame) {
        self.pending.push(at, PodEvent::UplinkFrame(uplink, frame));
    }

    /// Schedule a NIC failure at `at` using the paper's §5.3 method:
    /// disable the NIC's switch port; carrier loss is detected
    /// `cfg.link_detect` later.
    pub fn schedule_nic_failure(&mut self, at: SimTime, nic: usize) {
        self.pending.push(at, PodEvent::DisableNicPort(nic));
    }

    /// Schedule a NIC repair.
    pub fn schedule_nic_repair(&mut self, at: SimTime, nic: usize) {
        self.pending.push(at, PodEvent::EnableNicPort(nic));
    }

    /// Schedule a graceful migration of instance `ip` to `nic` (§3.3.4).
    pub fn schedule_migration(&mut self, at: SimTime, ip: Ipv4Addr, nic: u32) {
        self.pending.push(at, PodEvent::Migrate(ip, nic));
    }

    /// Schedule a host crash at `at`: its frontend/backend cores stop
    /// polling, its private CPU caches are discarded (dirty lines and all —
    /// torn write-backs are real), and its devices go silent. The allocator
    /// detects this from missing heartbeats/telemetry (§3.5).
    pub fn schedule_host_failure(&mut self, at: SimTime, host: usize) {
        self.pending.push(at, PodEvent::FailHost(host));
    }

    /// Schedule a crashed host's restart at `at`: its cores resume from the
    /// restart time with cold caches, and its storage frontend resubmits
    /// every in-flight command (the backend deduplicates replays).
    pub fn schedule_host_restart(&mut self, at: SimTime, host: usize) {
        self.pending.push(at, PodEvent::RestartHost(host));
    }

    /// Install a [`FaultPlan`]: translate every scheduled fault into pod
    /// events. An empty plan is a strict no-op — nothing is scheduled, no
    /// RNG is forked, and the simulation is byte-identical to not calling
    /// this at all (the bench determinism guard asserts it).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        let mut inj = FaultInjector::new(plan);
        let mut tag = 0u64;
        while let Some(ev) = inj.pop_due(SimTime::MAX) {
            let at = ev.at;
            match ev.kind {
                FaultKind::HostCrash {
                    host,
                    restart_after,
                } => {
                    self.schedule_host_failure(at, host);
                    if let Some(d) = restart_after {
                        self.schedule_host_restart(at + d, host);
                    }
                }
                FaultKind::PortFlap { nic, down_for } => {
                    self.schedule_nic_failure(at, nic);
                    self.schedule_nic_repair(at + down_for, nic);
                }
                FaultKind::PacketFault {
                    nic,
                    drop_ppm,
                    corrupt_ppm,
                    duplicate_ppm,
                    duration,
                } => {
                    let state = PacketFaultState::new(
                        drop_ppm,
                        corrupt_ppm,
                        duplicate_ppm,
                        at + duration,
                        inj.fork_rng(tag),
                    );
                    self.pending.push(at, PodEvent::SetPacketFault(nic, state));
                }
                FaultKind::CxlSlow {
                    host,
                    extra_ns,
                    duration,
                } => {
                    self.pending
                        .push(at, PodEvent::CxlSlowStart(host, extra_ns));
                    self.pending
                        .push(at + duration, PodEvent::CxlSlowEnd(host, extra_ns));
                }
                FaultKind::CxlStall { host, stall } => {
                    self.pending.push(at, PodEvent::CxlStall(host, stall));
                }
                FaultKind::SsdFault {
                    ssd,
                    mode,
                    duration,
                } => {
                    let ev = match mode {
                        SsdFaultMode::Timeout => PodEvent::SsdTimeoutUntil(ssd, at + duration),
                        SsdFaultMode::ReadError => PodEvent::SsdReadErrorsUntil(ssd, at + duration),
                    };
                    self.pending.push(at, ev);
                }
                FaultKind::AccelFault {
                    accel,
                    mode,
                    duration,
                } => {
                    let ev = match mode {
                        AccelFaultMode::Timeout => {
                            PodEvent::AccelTimeoutUntil(accel, at + duration)
                        }
                        AccelFaultMode::ComputeError => {
                            PodEvent::AccelErrorsUntil(accel, at + duration)
                        }
                    };
                    self.pending.push(at, ev);
                }
            }
            tag += 1;
        }
    }

    /// Carve a block volume for an instance out of the pod's pooled SSD
    /// capacity (local-first, then most-free — the storage analog of §3.5
    /// placement).
    pub fn create_volume(&mut self, inst: usize, blocks: u64) -> Option<VolumeHandle> {
        let host = self.instances[inst].host;
        let ip = self.instances[inst].ip;
        let (ssd, base) = self.allocator.place_volume(host, ip, blocks as u32)?;
        Some(VolumeHandle {
            inst,
            ssd: ssd as usize,
            base_block: base as u64,
            blocks,
        })
    }

    /// Submit a write of whole blocks to a volume. Returns the command id.
    pub fn volume_write(&mut self, vol: VolumeHandle, lba: u64, data: &[u8]) -> Option<u16> {
        let nlb = data.len() as u64 / oasis_storage::BLOCK_SIZE;
        assert!(lba + nlb <= vol.blocks, "write escapes the volume");
        let host = self.instances[vol.inst].host;
        let fe = self.storage_frontends[host].as_mut()?;
        fe.submit_write(&mut self.pool, vol.ssd, vol.base_block + lba, data)
    }

    /// Submit a read of `nlb` blocks from a volume. Returns the command id.
    pub fn volume_read(&mut self, vol: VolumeHandle, lba: u64, nlb: u32) -> Option<u16> {
        assert!(lba + nlb as u64 <= vol.blocks, "read escapes the volume");
        let host = self.instances[vol.inst].host;
        let fe = self.storage_frontends[host].as_mut()?;
        fe.submit_read(&mut self.pool, vol.ssd, vol.base_block + lba, nlb)
    }

    /// Drain completed block I/Os for instances on `host`.
    pub fn take_storage_completions(
        &mut self,
        host: usize,
    ) -> Vec<crate::engine_storage::IoResult> {
        self.storage_frontends[host]
            .as_mut()
            .map(|fe| fe.take_completions())
            .unwrap_or_default()
    }

    /// Tear an instance down: release its NIC lease and volumes (local
    /// NVMe is ephemeral — §3.4), unregister it from every backend, and
    /// remove its flow rules. The instance object remains for post-mortem
    /// stats but receives no further traffic.
    pub fn terminate_instance(&mut self, inst: usize) {
        let ip = self.instances[inst].ip;
        self.allocator
            .propose(crate::allocator::AllocCommand::Unassign { ip });
        self.allocator
            .propose(crate::allocator::AllocCommand::ReleaseVolumes { ip });
        for nic in 0..self.nics.len() {
            if let Some(b) = self.backend_of_nic[nic] {
                self.backends[b].unregister_instance(&mut self.nics[nic], ip);
            }
        }
        self.instances[inst].set_mac(self.now, MacAddr::ZERO, false);
    }

    /// Mark a repaired NIC usable for new placements again (operator
    /// action after `schedule_nic_repair`'s link restoration).
    pub fn mark_nic_repaired(&mut self, nic: usize) {
        self.allocator
            .propose(crate::allocator::AllocCommand::MarkRepaired { nic: nic as u32 });
    }

    /// Fail (or repair) an SSD; in-flight and future I/O completes with an
    /// error status that propagates to the guest (§3.4).
    pub fn set_ssd_failed(&mut self, ssd: usize, failed: bool) {
        self.ssds[ssd].set_failed(failed);
    }

    /// Submit a compute-offload job from `host`. The accelerator is picked
    /// local-first through the pod-wide allocator (the compute analog of
    /// §3.5 placement). Returns the command id, or `Ok(None)` when
    /// backpressured (no free job buffers / full channel) — the caller
    /// retries on a later tick.
    pub fn submit_accel_job(
        &mut self,
        host: usize,
        op: AccelOp,
        arg: u32,
        input: &[u8],
    ) -> Result<Option<u16>, PodError> {
        if host >= self.drivers.len() {
            return Err(PodError::NoSuchHost(host));
        }
        let dev = self
            .allocator
            .state
            .pick_accel(host as u32)
            .ok_or(PodError::NoSuchDevice {
                class: "accel",
                index: 0,
            })? as usize;
        let fe = self.accel_frontends[host]
            .as_mut()
            .ok_or(PodError::EngineMissing {
                host,
                engine: "accel",
            })?;
        Ok(fe.submit_job(&mut self.pool, dev, op, arg, input))
    }

    /// Drain completed offload jobs for `host`.
    pub fn take_accel_completions(&mut self, host: usize) -> Vec<JobResult> {
        self.accel_frontends
            .get_mut(host)
            .and_then(|fe| fe.as_mut())
            .map(|fe| fe.take_completions())
            .unwrap_or_default()
    }

    /// Offload jobs still in flight from `host`.
    pub fn accel_jobs_in_flight(&self, host: usize) -> usize {
        self.accel_frontends
            .get(host)
            .and_then(|fe| fe.as_ref())
            .map(|fe| fe.in_flight())
            .unwrap_or(0)
    }

    /// Fail (or repair) an accelerator; in-flight and future jobs complete
    /// with an error status that propagates to the guest (§3.4 — no
    /// transparent failover for stateful devices).
    pub fn set_accel_failed(&mut self, accel: usize, failed: bool) {
        self.accels[accel].set_failed(failed);
    }

    /// Apply `f` to every polling core that lives on `host`. The allocator
    /// service core is the control plane's own machine and is never
    /// fault-targeted (chaos mixes exclude it).
    fn for_each_host_core(&mut self, host: usize, mut f: impl FnMut(&mut HostCtx)) {
        let Pod {
            drivers,
            backends,
            storage_frontends,
            storage_backends,
            accel_frontends,
            accel_backends,
            ..
        } = self;
        each_host_engine(
            drivers,
            backends,
            storage_frontends,
            storage_backends,
            accel_frontends,
            accel_backends,
            host,
            |e| f(e.core_mut()),
        );
    }

    /// Deliver a host-level fault to every engine core on `host`: drop the
    /// private cache (dirty lines included — torn write-backs are real), on
    /// restart bump the clock to the restart time, then give the engine its
    /// [`DeviceEngine::on_fault`] hook for recovery work (command replay).
    fn apply_engine_fault(&mut self, host: usize, fault: EngineFault, at: SimTime) {
        let Pod {
            drivers,
            backends,
            storage_frontends,
            storage_backends,
            accel_frontends,
            accel_backends,
            pool,
            ..
        } = self;
        each_host_engine(
            drivers,
            backends,
            storage_frontends,
            storage_backends,
            accel_frontends,
            accel_backends,
            host,
            |e| {
                e.core_mut().cache.drain();
                // The host lost its private cache: any shadow-state the
                // coherence sanitizer tracked for this port is void.
                pool.san_host_reset(e.core().port);
                if fault == EngineFault::HostRestart {
                    let c = e.core_mut();
                    c.clock = c.clock.max(at);
                }
                e.on_fault(fault, pool);
            },
        );
    }

    /// Re-arm the scheduler entries of every engine on `host` at its
    /// current clock (used after a restart revives actors that went idle
    /// while the host was dead).
    fn wake_host_engines(&self, host: usize, map: &ActorMap, ctx: &mut StepCtx) {
        let clock = match &self.drivers[host] {
            HostDriver::Oasis(fe) => fe.core.clock,
            HostDriver::Local(ld) => ld.core.clock,
        };
        ctx.wake(map.driver_base + host, clock);
        for (i, be) in self.backends.iter().enumerate() {
            if be.host == host {
                ctx.wake(map.net_backend_base + i, be.core.clock);
            }
        }
        if let Some(fe) = self.storage_frontends[host].as_ref() {
            ctx.wake(map.storage_fe_base + host, fe.core.clock);
        }
        for (i, be) in self.storage_backends.iter().enumerate() {
            if be.host == host {
                ctx.wake(map.storage_be_base + i, be.core.clock);
            }
        }
        if let Some(fe) = self.accel_frontends[host].as_ref() {
            ctx.wake(map.accel_fe_base + host, fe.core.clock);
        }
        for (i, be) in self.accel_backends.iter().enumerate() {
            if be.host == host {
                ctx.wake(map.accel_be_base + i, be.core.clock);
            }
        }
    }

    /// Re-arm every endpoint actor at its next activation time. Called
    /// after any dispatch that forwarded frames: a delivery can only move
    /// an endpoint's `next_time` earlier (or wake an idle one), and
    /// [`StepCtx::wake`] is earlier-wins, so redundant wakes are no-ops.
    fn wake_endpoints(&self, map: &ActorMap, ctx: &mut StepCtx) {
        for (i, ep) in self.endpoints.iter().enumerate() {
            let nt = ep.next_time();
            if nt != SimTime::MAX {
                ctx.wake(map.endpoint_base + i, nt);
            }
        }
    }

    /// Reclaim everything owned by hosts the allocator just declared
    /// failed: unregister their instances from every backend (flow rules
    /// gone), detach them from the dead frontend, and return their pool
    /// regions to the region allocator. The replicated state machine has
    /// already revoked the leases and volumes, so nothing is proposed here.
    fn reclaim_failed_hosts(&mut self) {
        let failed = self.allocator.take_failed_hosts();
        for &host in &failed {
            let host = host as usize;
            for inst in 0..self.instances.len() {
                if self.instances[inst].host != host {
                    continue;
                }
                let ip = self.instances[inst].ip;
                for nic in 0..self.nics.len() {
                    if let Some(b) = self.backend_of_nic[nic] {
                        self.backends[b].unregister_instance(&mut self.nics[nic], ip);
                    }
                }
                self.instances[inst].set_mac(self.now, MacAddr::ZERO, false);
                if let Some(region) = self.inst_region[inst].take() {
                    self.ra.free(&region);
                }
            }
            if let HostDriver::Oasis(fe) = &mut self.drivers[host] {
                fe.detach_all_instances();
            }
        }
    }

    /// Bytes of pool memory currently handed out by the region allocator
    /// (the chaos harness asserts failures do not leak regions).
    pub fn pool_outstanding(&self) -> u64 {
        self.ra.outstanding()
    }

    fn forward(&mut self, now: SimTime, in_port: usize, frame: Frame) {
        for (port, at, f) in self.switch.forward(now, in_port, frame) {
            match self.port_owner[port] {
                PortOwner::Nic(n) => self.nics[n].deliver(at, f),
                PortOwner::Endpoint(e) => self.endpoints[e].deliver(at, f),
                PortOwner::Uplink(u) => self.uplink_out.push((at, u, f)),
            }
        }
    }

    fn apply_event(&mut self, at: SimTime, ev: PodEvent, map: &ActorMap, ctx: &mut StepCtx) {
        match ev {
            PodEvent::DisableNicPort(nic) => {
                self.switch.set_port_enabled(self.nic_port[nic], false);
                self.pending
                    .push(at + self.cfg.link_detect, PodEvent::LinkDown(nic));
            }
            PodEvent::LinkDown(nic) => self.nics[nic].set_link(false),
            PodEvent::EnableNicPort(nic) => {
                self.switch.set_port_enabled(self.nic_port[nic], true);
                self.pending
                    .push(at + self.cfg.link_detect, PodEvent::LinkUp(nic));
            }
            PodEvent::LinkUp(nic) => {
                self.nics[nic].set_link(true);
                if let Some(b) = self.backend_of_nic[nic] {
                    self.backends[b].clear_failure_latch();
                }
            }
            PodEvent::FailHost(host) => {
                self.dead_host[host] = true;
                // The crash discards every private CPU cache on the host,
                // dirty lines included: anything not yet written back to
                // the pool is lost (torn write-backs).
                self.apply_engine_fault(host, EngineFault::HostCrash, at);
            }
            PodEvent::RestartHost(host) => {
                if !self.dead_host[host] {
                    return;
                }
                self.dead_host[host] = false;
                // Cold caches, clocks bumped to the restart time; engines
                // with in-flight state replay it through their fault hook.
                self.apply_engine_fault(host, EngineFault::HostRestart, at);
                self.wake_host_engines(host, map, ctx);
            }
            PodEvent::SetPacketFault(nic, state) => {
                self.switch.set_packet_fault(self.nic_port[nic], state);
            }
            PodEvent::CxlSlowStart(host, extra_ns) => {
                self.for_each_host_core(host, |c| c.costs.cxl_load_ns += extra_ns);
            }
            PodEvent::CxlSlowEnd(host, extra_ns) => {
                self.for_each_host_core(host, |c| {
                    c.costs.cxl_load_ns = c.costs.cxl_load_ns.saturating_sub(extra_ns);
                });
            }
            PodEvent::CxlStall(host, stall) => {
                self.for_each_host_core(host, |c| c.clock += stall);
            }
            PodEvent::SsdTimeoutUntil(ssd, until) => {
                self.ssds[ssd].inject_timeout_until(until);
            }
            PodEvent::SsdReadErrorsUntil(ssd, until) => {
                self.ssds[ssd].inject_read_errors_until(until);
            }
            PodEvent::AccelTimeoutUntil(accel, until) => {
                self.accels[accel].inject_timeout_until(until);
            }
            PodEvent::AccelErrorsUntil(accel, until) => {
                self.accels[accel].inject_compute_errors_until(until);
            }
            PodEvent::Migrate(ip, nic) => {
                // The frontend registers with the new NIC's backend over
                // its message channel (§3.3.4 ordering); the pod only
                // relays the operator's intent to the allocator.
                self.allocator.migrate_instance(&mut self.pool, ip, nic);
            }
            PodEvent::UplinkFrame(u, frame) => {
                let port = self.uplink_port[u];
                self.forward(at, port, frame);
                self.wake_endpoints(map, ctx);
            }
        }
    }

    /// Run the co-simulation until every component's clock reaches `until`.
    ///
    /// The pod is driven through the sharded runner (`oasis_sim::shard`) as
    /// a single shard: one window spans the whole horizon and falls through
    /// to [`Pod::run_local`], so the simulated timeline is byte-identical
    /// at any `OASIS_SHARD_THREADS` setting. Multi-pod simulations shard at
    /// pod granularity via [`crate::fleet::Fleet`], which shares this exact
    /// window machinery.
    pub fn run(&mut self, until: SimTime) {
        let mut runner = self
            .shard_runner
            .take()
            .unwrap_or_else(|| ShardedRunner::new(1, SimDuration::ZERO, shard_threads()));
        // A single shard cannot produce `ZeroLookahead` (it needs > 1).
        let _ = runner.run_seq(std::slice::from_mut(self), until);
        self.shard_runner = Some(runner);
        self.now = self.now.max(until);
    }

    /// Override the shard worker-thread count for this pod, replacing the
    /// process-wide `OASIS_SHARD_THREADS` setting. The env read is cached
    /// once per process, so tests comparing thread counts in-process use
    /// this instead. Must be called before the first [`Pod::run`].
    pub fn set_shard_threads(&mut self, threads: usize) {
        assert!(
            self.shard_runner.is_none(),
            "set_shard_threads before the first run"
        );
        self.shard_runner = Some(ShardedRunner::new(1, SimDuration::ZERO, threads));
    }

    /// Bump the pod clock to the end of a horizon driven externally (by
    /// [`crate::fleet::Fleet`]): a pod whose windows were all skipped as
    /// idle still observed the full horizon.
    pub(crate) fn finish_horizon(&mut self, until: SimTime) {
        self.now = self.now.max(until);
    }

    /// Earliest simulated time any component wants to act: the minimum over
    /// live engine clocks, the allocator, endpoints, and the event queue.
    /// The sharded runner probes this to open windows at the next busy
    /// instant (and to skip horizons with no work at all).
    pub fn next_activity(&self) -> SimTime {
        let mut t = self.pending.peek_time().unwrap_or(SimTime::MAX);
        for (host, drv) in self.drivers.iter().enumerate() {
            if self.dead_host[host] {
                continue;
            }
            t = t.min(match drv {
                HostDriver::Oasis(fe) => fe.core.clock,
                HostDriver::Local(ld) => ld.core.clock,
            });
        }
        for be in &self.backends {
            if !self.dead_host[be.host] {
                t = t.min(be.core.clock);
            }
        }
        t = t.min(self.allocator.core.clock);
        for ep in &self.endpoints {
            t = t.min(ep.next_time());
        }
        for (host, fe) in self.storage_frontends.iter().enumerate() {
            if let Some(fe) = fe {
                if !self.dead_host[host] {
                    t = t.min(fe.core.clock);
                }
            }
        }
        for be in &self.storage_backends {
            if !self.dead_host[be.host] {
                t = t.min(be.core.clock);
            }
        }
        for (host, fe) in self.accel_frontends.iter().enumerate() {
            if let Some(fe) = fe {
                if !self.dead_host[host] {
                    t = t.min(fe.core.clock);
                }
            }
        }
        for be in &self.accel_backends {
            if !self.dead_host[be.host] {
                t = t.min(be.core.clock);
            }
        }
        t
    }

    /// One window of the co-simulation on this pod's own scheduler.
    ///
    /// Every component — device engines, the allocator, endpoints, the
    /// fault event queue — is registered as an actor on a fresh
    /// [`Scheduler`]; the scheduler dispatches whichever actor has the
    /// earliest wake time, breaking ties by registration order (the same
    /// order the legacy earliest-clock scan considered components in, so
    /// the timeline is byte-identical). Components with clocks at or past
    /// `until` simply re-arm without running, which a fresh registration
    /// per call makes uniform. Returns the number of actor dispatches.
    pub(crate) fn run_local(&mut self, until: SimTime) -> u64 {
        // The legacy scan stepped components with clocks strictly below
        // `until`; the scheduler deadline is inclusive, so it sits 1 ns
        // earlier.
        let Some(deadline) = until.as_nanos().checked_sub(1).map(SimTime::from_nanos) else {
            return 0;
        };
        let mut sched = Scheduler::new();
        let mut kinds: Vec<ActorKind> = Vec::new();

        let driver_base = sched.actor_count();
        for (host, drv) in self.drivers.iter().enumerate() {
            if self.dead_host[host] {
                sched.add_idle_actor();
            } else {
                let clock = match drv {
                    HostDriver::Oasis(fe) => fe.core.clock,
                    HostDriver::Local(ld) => ld.core.clock,
                };
                sched.add_actor(clock);
            }
            kinds.push(ActorKind::Engine(EngineRef::Driver(host)));
        }
        let net_backend_base = sched.actor_count();
        for (i, be) in self.backends.iter().enumerate() {
            if self.dead_host[be.host] {
                sched.add_idle_actor();
            } else {
                sched.add_actor(be.core.clock);
            }
            kinds.push(ActorKind::Engine(EngineRef::NetBackend(i)));
        }
        sched.add_actor(self.allocator.core.clock);
        kinds.push(ActorKind::Allocator);
        let endpoint_base = sched.actor_count();
        for (i, ep) in self.endpoints.iter().enumerate() {
            sched.add_actor(ep.next_time());
            kinds.push(ActorKind::Endpoint(i));
        }
        let storage_fe_base = sched.actor_count();
        for (host, fe) in self.storage_frontends.iter().enumerate() {
            match fe {
                Some(fe) if !self.dead_host[host] => {
                    sched.add_actor(fe.core.clock);
                }
                _ => {
                    sched.add_idle_actor();
                }
            }
            kinds.push(ActorKind::Engine(EngineRef::StorageFe(host)));
        }
        let storage_be_base = sched.actor_count();
        for (i, be) in self.storage_backends.iter().enumerate() {
            if self.dead_host[be.host] {
                sched.add_idle_actor();
            } else {
                sched.add_actor(be.core.clock);
            }
            kinds.push(ActorKind::Engine(EngineRef::StorageBe(i)));
        }
        let accel_fe_base = sched.actor_count();
        for (host, fe) in self.accel_frontends.iter().enumerate() {
            match fe {
                Some(fe) if !self.dead_host[host] => {
                    sched.add_actor(fe.core.clock);
                }
                _ => {
                    sched.add_idle_actor();
                }
            }
            kinds.push(ActorKind::Engine(EngineRef::AccelFe(host)));
        }
        let accel_be_base = sched.actor_count();
        for (i, be) in self.accel_backends.iter().enumerate() {
            if self.dead_host[be.host] {
                sched.add_idle_actor();
            } else {
                sched.add_actor(be.core.clock);
            }
            kinds.push(ActorKind::Engine(EngineRef::AccelBe(i)));
        }
        // The event queue goes last so on wake-time ties every component
        // runs before the event fires, matching the legacy scan's
        // events-considered-last rule.
        match self.pending.peek_time() {
            Some(t) => {
                sched.add_actor(t);
            }
            None => {
                sched.add_idle_actor();
            }
        }
        kinds.push(ActorKind::Events);

        let map = ActorMap {
            driver_base,
            net_backend_base,
            endpoint_base,
            storage_fe_base,
            storage_be_base,
            accel_fe_base,
            accel_be_base,
        };

        let mut dispatches: u64 = 0;
        sched.run_until_with(self, deadline, |pod, actor, at, ctx| {
            dispatches += 1;
            pod.dispatch(&kinds, &map, actor, at, until, ctx)
        });
        self.obs.fold_sched(&sched);
        self.now = self.now.max(until);
        dispatches
    }

    /// Dispatch one actor at its wake time.
    fn dispatch(
        &mut self,
        kinds: &[ActorKind],
        map: &ActorMap,
        actor: usize,
        at: SimTime,
        until: SimTime,
        ctx: &mut StepCtx,
    ) -> StepOutcome {
        match kinds[actor] {
            ActorKind::Engine(eref) => self.dispatch_engine(eref, map, at, until, ctx),
            ActorKind::Allocator => {
                let clock = self.allocator.core.clock;
                if at < clock {
                    // Stale entry: something (e.g. a migration command sent
                    // on the allocator's core) advanced the clock since this
                    // wake was queued.
                    return StepOutcome::WakeAt(clock);
                }
                self.now = self.now.max(at);
                self.allocator.step(&mut self.pool);
                if self.allocator.has_newly_failed_hosts() {
                    self.reclaim_failed_hosts();
                }
                StepOutcome::WakeAt(self.allocator.core.clock)
            }
            ActorKind::Endpoint(ei) => {
                let nt = self.endpoints[ei].next_time();
                if at < nt {
                    // A delivery since this wake was queued pushed the
                    // activation later, or the endpoint went idle.
                    return if nt == SimTime::MAX {
                        StepOutcome::Idle
                    } else {
                        StepOutcome::WakeAt(nt)
                    };
                }
                self.now = self.now.max(at);
                let frames = self.endpoints[ei].poll(at);
                let port = self.endpoint_port[ei];
                for f in frames {
                    self.forward(at, port, f);
                }
                self.wake_endpoints(map, ctx);
                let nt = self.endpoints[ei].next_time();
                if nt == SimTime::MAX {
                    StepOutcome::Idle
                } else {
                    StepOutcome::WakeAt(nt)
                }
            }
            ActorKind::Events => {
                if let Some(t) = self.pending.peek_time() {
                    if at < t {
                        return StepOutcome::WakeAt(t);
                    }
                    self.now = self.now.max(at);
                    if let Some((eat, ev)) = self.pending.pop() {
                        self.apply_event(eat, ev, map, ctx);
                    }
                }
                // Re-peek after applying: the event may have chained a
                // follow-up (LinkDown after DisableNicPort).
                match self.pending.peek_time() {
                    Some(t) => StepOutcome::WakeAt(t),
                    None => StepOutcome::Idle,
                }
            }
        }
    }

    /// Dispatch one device-engine actor: the single uniform stepping path
    /// for every engine type.
    fn dispatch_engine(
        &mut self,
        eref: EngineRef,
        map: &ActorMap,
        at: SimTime,
        until: SimTime,
        ctx: &mut StepCtx,
    ) -> StepOutcome {
        let (egress, egress_nic, next) = {
            let Pod {
                drivers,
                backends,
                storage_frontends,
                storage_backends,
                accel_frontends,
                accel_backends,
                pool,
                instances,
                nics,
                ssds,
                accels,
                nic_macs,
                dead_host,
                now,
                obs,
                ..
            } = self;
            let engine: &mut dyn DeviceEngine = match eref {
                EngineRef::Driver(i) => match &mut drivers[i] {
                    HostDriver::Oasis(fe) => fe,
                    HostDriver::Local(ld) => ld,
                },
                EngineRef::NetBackend(i) => &mut backends[i],
                EngineRef::StorageFe(h) => match storage_frontends[h].as_mut() {
                    Some(fe) => fe,
                    None => return StepOutcome::Idle,
                },
                EngineRef::StorageBe(i) => &mut storage_backends[i],
                EngineRef::AccelFe(h) => match accel_frontends[h].as_mut() {
                    Some(fe) => fe,
                    None => return StepOutcome::Idle,
                },
                EngineRef::AccelBe(i) => &mut accel_backends[i],
            };
            if dead_host[engine.host()] {
                // The host crashed after this wake was queued; park the
                // actor (a restart re-arms it via `wake_host_engines`).
                return StepOutcome::Idle;
            }
            let nt = engine.next_time();
            if at < nt {
                // Stale entry: a fault (CXL stall, restart) jumped the
                // clock since this wake was queued.
                return StepOutcome::WakeAt(nt);
            }
            // Fast-forward through provable idleness: anything the engine
            // can show matters next happens no earlier than the next other
            // actor's wake (the legacy scan's `second_t`).
            let limit = ctx.next_other().min(until);
            if engine.try_idle_skip(nics, instances, limit) {
                let skipped_to = engine.next_time();
                obs.note_idle_skip(nt, skipped_to);
                return StepOutcome::WakeAt(skipped_to);
            }
            *now = (*now).max(at);
            let mut world = EngineWorld {
                pool,
                instances,
                nic_macs: nic_macs.as_slice(),
                nics: nics.as_mut_slice(),
                ssds: ssds.as_mut_slice(),
                accels: accels.as_mut_slice(),
            };
            let egress = engine.poll(&mut world);
            (egress, engine.egress_nic(), engine.next_time())
        };
        if let Some(nic) = egress_nic {
            let port = self.nic_port[nic];
            for (fat, f) in egress {
                self.forward(fat, port, f);
            }
        }
        self.wake_endpoints(map, ctx);
        StepOutcome::WakeAt(next)
    }
}

impl Pod {
    /// Every snapshot-bearing component in canonical order: the allocator,
    /// then per-host drivers, net backends, storage frontends, storage
    /// backends, accel frontends, accel backends. [`Pod::snapshot`] and
    /// [`Pod::restore`] both walk this order, so the two stay in lockstep
    /// by construction.
    fn snapshot_parts(&self) -> Vec<&dyn Snapshottable> {
        let mut v: Vec<&dyn Snapshottable> = vec![&self.allocator];
        for d in &self.drivers {
            match d {
                HostDriver::Oasis(fe) => v.push(fe),
                HostDriver::Local(ld) => v.push(ld),
            }
        }
        for be in &self.backends {
            v.push(be);
        }
        for fe in self.storage_frontends.iter().flatten() {
            v.push(fe);
        }
        for be in &self.storage_backends {
            v.push(be);
        }
        for fe in self.accel_frontends.iter().flatten() {
            v.push(fe);
        }
        for be in &self.accel_backends {
            v.push(be);
        }
        v
    }

    /// Mutable view of the same components, in the same order.
    fn snapshot_parts_mut(&mut self) -> Vec<&mut dyn Snapshottable> {
        let mut v: Vec<&mut dyn Snapshottable> = vec![&mut self.allocator];
        for d in &mut self.drivers {
            match d {
                HostDriver::Oasis(fe) => v.push(fe),
                HostDriver::Local(ld) => v.push(ld),
            }
        }
        for be in &mut self.backends {
            v.push(be);
        }
        for fe in self.storage_frontends.iter_mut().flatten() {
            v.push(fe);
        }
        for be in &mut self.storage_backends {
            v.push(be);
        }
        for fe in self.accel_frontends.iter_mut().flatten() {
            v.push(fe);
        }
        for be in &mut self.accel_backends {
            v.push(be);
        }
        v
    }

    /// Serialize the pod's logical state into a schema-versioned snapshot:
    /// a `Meta` section (sim-time, crashed-host set, component count)
    /// followed by one `Engine` section per [`Snapshottable`] component in
    /// canonical order (allocator first, then every device engine).
    ///
    /// Channel ring contents, NIC/SSD/accel device queues, and endpoint
    /// state are *topology*, not snapshot state: checkpoints are taken at
    /// quiesce points (between [`Pod::run`] windows, after in-flight
    /// traffic drains) and restored into a pod built from the same
    /// configuration, exactly like `fleet_replay --checkpoint/--resume`.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(SnapshotSection::Meta);
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.dead_host.len() as u64);
        for &dead in &self.dead_host {
            w.put_bool(dead);
        }
        let parts = self.snapshot_parts();
        w.put_u64(parts.len() as u64);
        w.end_section();
        for part in parts {
            w.begin_section(SnapshotSection::Engine);
            part.snapshot_state(&mut w);
            w.end_section();
        }
        w.finish()
    }

    /// Restore a snapshot produced by [`Pod::snapshot`] on an identically
    /// built pod. On any error the pod is left partially restored and must
    /// be discarded; the snapshot bytes themselves are never modified.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        let mut meta = r.section(SnapshotSection::Meta)?;
        let now = SimTime(meta.u64("pod sim-time")?);
        let hosts = meta.u64("pod host count")?;
        if hosts != self.dead_host.len() as u64 {
            return Err(SnapshotError::Corrupt("pod host count"));
        }
        let mut dead_host = Vec::with_capacity(hosts as usize);
        for _ in 0..hosts {
            dead_host.push(meta.bool("pod dead-host flag")?);
        }
        let parts_expected = meta.u64("pod component count")?;
        self.now = now;
        self.dead_host = dead_host;
        let mut restored = 0u64;
        for part in self.snapshot_parts_mut() {
            let mut er = r.section(SnapshotSection::Engine)?;
            part.restore_state(&mut er)?;
            restored += 1;
        }
        if restored != parts_expected {
            return Err(SnapshotError::Corrupt("pod component count"));
        }
        Ok(())
    }
}

/// Payload relayed between pods over an uplink: `(destination uplink index,
/// frame)`. The destination index is resolved by the fleet layer's routing
/// table before the message is enqueued.
pub type UplinkMsg = (usize, Frame);

/// The process-wide `OASIS_SHARD_THREADS` setting, read once. Figure
/// binaries and CI set the variable before launch, so a cached read keeps
/// the per-`run` overhead at one atomic load.
fn shard_threads() -> usize {
    // oasis-check: allow(thread-discipline) write-once env cache, never mutated after init
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(shard::threads_from_env)
}

impl ShardWorld for Pod {
    type Msg = UplinkMsg;

    fn next_time(&self) -> SimTime {
        self.next_activity()
    }

    /// One conservative window: absorb uplink arrivals onto the event
    /// timeline, then run the pod's own scheduler to the window end. A bare
    /// pod has no routing table, so uplink egress stays buffered in
    /// `uplink_out`; the fleet layer's shard wrapper drains it into
    /// `outbox` with per-link latencies.
    fn run_window(
        &mut self,
        until: SimTime,
        inbox: &mut Vec<Envelope<UplinkMsg>>,
        _outbox: &mut Vec<Outgoing<UplinkMsg>>,
    ) -> u64 {
        for env in inbox.drain(..) {
            let (uplink, frame) = env.msg;
            self.inject_uplink_frame(env.at, uplink, frame);
        }
        self.run_local(until)
    }
}
