//! The allocator service: state machine + control-plane actor.

use oasis_channel::{Receiver, Sender};
use oasis_cxl::{CxlPool, HostCtx};
use oasis_net::addr::Ipv4Addr;
use oasis_raft::{RaftConfig, RaftNode};
use oasis_sim::time::{SimDuration, SimTime};

use crate::config::OasisConfig;
use crate::msg::{NetMsg, NetOp};

use super::command::AllocCommand;

/// A NIC known to the allocator.
#[derive(Clone, Debug)]
pub struct NicInfo {
    /// Host the NIC is attached to.
    pub host: u32,
    /// Allocatable bandwidth, Mbit/s.
    pub capacity_mbps: u32,
    /// Currently leased bandwidth, Mbit/s.
    pub allocated_mbps: u32,
    /// Reserved as the pod's failover backup.
    pub backup: bool,
    /// Marked failed.
    pub failed: bool,
    /// Last telemetry receipt (allocator clock).
    pub last_telemetry: SimTime,
    /// Bytes moved in the last telemetry window (load signal).
    pub recent_load_bytes: u64,
}

/// An instance known to the allocator.
#[derive(Clone, Debug)]
pub struct InstanceInfo {
    /// Instance IP.
    pub ip: Ipv4Addr,
    /// Instance host.
    pub host: u32,
    /// Serving NIC.
    pub nic: u32,
    /// Leased bandwidth, Mbit/s.
    pub lease_mbps: u32,
    /// Lease expiry (renewed by the serving NIC's telemetry).
    pub lease_expiry: SimTime,
}

/// An SSD known to the allocator.
#[derive(Clone, Debug)]
pub struct SsdInfo {
    /// Host the SSD is attached to.
    pub host: u32,
    /// Allocatable capacity in blocks.
    pub capacity_blocks: u32,
    /// Next unallocated block (volumes are carved bump-style; released
    /// capacity is reclaimed only when the SSD drains, like real
    /// ephemeral-store slabs).
    pub next_block: u32,
    /// Blocks currently leased.
    pub allocated_blocks: u32,
}

/// A compute-offload accelerator known to the allocator.
#[derive(Clone, Debug)]
pub struct AccelInfo {
    /// Host the accelerator is attached to.
    pub host: u32,
}

/// A block volume carved for an instance (§3.4: local NVMe is ephemeral).
#[derive(Clone, Debug)]
pub struct VolumeInfo {
    /// Owning instance IP.
    pub ip: Ipv4Addr,
    /// SSD the volume lives on.
    pub ssd: u32,
    /// First block.
    pub base_block: u32,
    /// Length in blocks.
    pub blocks: u32,
}

/// The replicated allocator state (the Raft state machine).
#[derive(Clone, Debug, Default)]
pub struct AllocState {
    /// NICs by id.
    pub nics: Vec<Option<NicInfo>>,
    /// Instances.
    pub instances: Vec<InstanceInfo>,
    /// SSDs by id.
    pub ssds: Vec<Option<SsdInfo>>,
    /// Accelerators by id.
    pub accels: Vec<Option<AccelInfo>>,
    /// Volumes.
    pub volumes: Vec<VolumeInfo>,
    /// Hosts currently declared dead (ISSUE 2), sorted ascending.
    pub failed_hosts: Vec<u32>,
}

impl AllocState {
    /// Apply a committed command.
    pub fn apply(&mut self, now: SimTime, lease_ttl: SimDuration, cmd: &AllocCommand) {
        match *cmd {
            AllocCommand::RegisterNic {
                nic,
                host,
                capacity_mbps,
                backup,
            } => {
                let idx = nic as usize;
                if self.nics.len() <= idx {
                    self.nics.resize_with(idx + 1, || None);
                }
                self.nics[idx] = Some(NicInfo {
                    host,
                    capacity_mbps,
                    allocated_mbps: 0,
                    backup,
                    failed: false,
                    last_telemetry: now,
                    recent_load_bytes: 0,
                });
            }
            AllocCommand::Assign {
                ip,
                host,
                nic,
                lease_mbps,
            } => {
                // Release any previous assignment first.
                self.release(ip);
                if let Some(Some(n)) = self.nics.get_mut(nic as usize) {
                    n.allocated_mbps = n.allocated_mbps.saturating_add(lease_mbps);
                }
                self.instances.push(InstanceInfo {
                    ip,
                    host,
                    nic,
                    lease_mbps,
                    // oasis-check: allow(unchecked-epoch-arithmetic) SimTime + SimDuration saturates by construction
                    lease_expiry: now + lease_ttl,
                });
            }
            AllocCommand::Unassign { ip } => {
                self.release(ip);
            }
            AllocCommand::MarkFailed { nic } => {
                if let Some(Some(n)) = self.nics.get_mut(nic as usize) {
                    n.failed = true;
                }
            }
            AllocCommand::MarkRepaired { nic } => {
                if let Some(Some(n)) = self.nics.get_mut(nic as usize) {
                    n.failed = false;
                }
            }
            AllocCommand::RegisterSsd {
                ssd,
                host,
                capacity_blocks,
            } => {
                let idx = ssd as usize;
                if self.ssds.len() <= idx {
                    self.ssds.resize_with(idx + 1, || None);
                }
                self.ssds[idx] = Some(SsdInfo {
                    host,
                    capacity_blocks,
                    next_block: 0,
                    allocated_blocks: 0,
                });
            }
            AllocCommand::AssignVolume {
                ip,
                ssd,
                base_block,
                blocks,
            } => {
                if let Some(Some(s)) = self.ssds.get_mut(ssd as usize) {
                    s.next_block = s.next_block.max(base_block + blocks);
                    s.allocated_blocks += blocks;
                }
                self.volumes.push(VolumeInfo {
                    ip,
                    ssd,
                    base_block,
                    blocks,
                });
            }
            AllocCommand::ReleaseVolumes { ip } => {
                self.release_volumes(ip);
            }
            AllocCommand::MarkHostFailed { host } => {
                if let Err(at) = self.failed_hosts.binary_search(&host) {
                    self.failed_hosts.insert(at, host);
                }
                // Everything the dead host's instances held goes back to
                // the pool of allocatable resources: NIC leases and
                // volumes. Nothing may leak while the host is down.
                let dead: Vec<Ipv4Addr> = self
                    .instances
                    .iter()
                    .filter(|i| i.host == host)
                    .map(|i| i.ip)
                    .collect();
                for ip in dead {
                    self.release(ip);
                    self.release_volumes(ip);
                }
            }
            AllocCommand::MarkHostRestarted { host } => {
                if let Ok(at) = self.failed_hosts.binary_search(&host) {
                    self.failed_hosts.remove(at);
                }
            }
            AllocCommand::RegisterAccel { accel, host } => {
                let idx = accel as usize;
                if self.accels.len() <= idx {
                    self.accels.resize_with(idx + 1, || None);
                }
                self.accels[idx] = Some(AccelInfo { host });
            }
        }
    }

    fn release_volumes(&mut self, ip: Ipv4Addr) {
        let mut freed: Vec<(u32, u32)> = Vec::new();
        self.volumes.retain(|v| {
            if v.ip == ip {
                freed.push((v.ssd, v.blocks));
                false
            } else {
                true
            }
        });
        for (ssd, blocks) in freed {
            if let Some(Some(s)) = self.ssds.get_mut(ssd as usize) {
                s.allocated_blocks = s.allocated_blocks.saturating_sub(blocks);
                if s.allocated_blocks == 0 {
                    s.next_block = 0;
                }
            }
        }
    }

    fn release(&mut self, ip: Ipv4Addr) {
        if let Some(pos) = self.instances.iter().position(|i| i.ip == ip) {
            let inst = self.instances.remove(pos);
            if let Some(Some(n)) = self.nics.get_mut(inst.nic as usize) {
                n.allocated_mbps = n.allocated_mbps.saturating_sub(inst.lease_mbps);
            }
        }
    }

    /// Local-first, then least-loaded placement (§3.5). Backup NICs are
    /// kept underutilized: only instances local to the backup's host use it
    /// (§3.3.3).
    pub fn pick_nic(&self, host: u32, lease_mbps: u32) -> Option<u32> {
        let usable = |id: usize, n: &NicInfo, local: bool| {
            !n.failed
                && n.allocated_mbps.saturating_add(lease_mbps) <= n.capacity_mbps
                && (!n.backup || (local && n.host == host))
                && id < u32::MAX as usize
        };
        // Local first.
        if let Some((id, _)) = self
            .nics
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
            .find(|&(i, n)| n.host == host && usable(i, n, true))
        {
            return Some(id as u32);
        }
        // Otherwise least allocated.
        self.nics
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
            .filter(|&(i, n)| usable(i, n, false))
            .min_by_key(|&(_, n)| n.allocated_mbps)
            .map(|(i, _)| i as u32)
    }

    /// The designated backup NIC, if registered and healthy.
    pub fn backup_nic(&self) -> Option<u32> {
        self.nics
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
            .find(|(_, n)| n.backup && !n.failed)
            .map(|(i, _)| i as u32)
    }

    /// Pick an SSD for a volume: local-first, then the SSD with the most
    /// free contiguous space (§3.5's local-first policy applied to the
    /// storage dimension; pooling makes remote capacity usable, which is
    /// the Fig. 2 benefit).
    pub fn pick_ssd(&self, host: u32, blocks: u32) -> Option<u32> {
        let fits = |s: &SsdInfo| s.next_block + blocks <= s.capacity_blocks;
        if let Some((id, _)) = self
            .ssds
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .find(|(_, s)| s.host == host && fits(s))
        {
            return Some(id as u32);
        }
        self.ssds
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .filter(|(_, s)| fits(s))
            .max_by_key(|(_, s)| s.capacity_blocks - s.next_block)
            .map(|(i, _)| i as u32)
    }

    /// Pick an accelerator for a host's jobs: local-first, then the
    /// lowest-numbered remote device (§3.5's local-first policy applied to
    /// the compute dimension; pooling makes remote accelerators usable at
    /// all).
    pub fn pick_accel(&self, host: u32) -> Option<u32> {
        if let Some((id, _)) = self
            .accels
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (i, a)))
            .find(|(_, a)| a.host == host)
        {
            return Some(id as u32);
        }
        self.accels
            .iter()
            .position(|a| a.is_some())
            .map(|i| i as u32)
    }

    /// Volumes owned by an instance.
    pub fn volumes_of(&self, ip: Ipv4Addr) -> Vec<VolumeInfo> {
        self.volumes
            .iter()
            .filter(|v| v.ip == ip)
            .cloned()
            .collect()
    }

    /// Instances currently served by `nic`.
    pub fn instances_on(&self, nic: u32) -> Vec<InstanceInfo> {
        self.instances
            .iter()
            .filter(|i| i.nic == nic)
            .cloned()
            .collect()
    }

    /// The pod-local capacity summary the fleet layer places against:
    /// `(nic_mbps, ssd_blocks)` of allocatable capacity. The backup NIC is
    /// excluded — it is reserved for failover (§3.3.3), not for leases —
    /// and failed devices don't count.
    pub fn capacity_summary(&self) -> (u64, u64) {
        let nic_mbps = self
            .nics
            .iter()
            .flatten()
            .filter(|n| !n.backup && !n.failed)
            .map(|n| n.capacity_mbps as u64)
            .sum();
        let ssd_blocks = self
            .ssds
            .iter()
            .flatten()
            .map(|s| s.capacity_blocks as u64)
            .sum();
        (nic_mbps, ssd_blocks)
    }
}

/// Control-plane actor: owns the state machine (behind a Raft node), the
/// channels to every frontend and backend, and the failure/telemetry
/// logic.
pub struct PodAllocator {
    /// The core the allocator service runs on.
    pub core: HostCtx,
    /// The replicated state (readable for tests and reports).
    pub state: AllocState,
    cfg: OasisConfig,
    raft: RaftNode,
    /// (host, sender) per frontend.
    to_frontends: Vec<(usize, Sender)>,
    from_frontends: Vec<(usize, Receiver)>,
    /// (nic, receiver/sender) per backend.
    from_backends: Vec<(u32, Receiver)>,
    /// Reroute commands issued (stat).
    pub reroutes_sent: u64,
    /// Failovers executed (stat).
    pub failovers: u64,
    /// Load-rebalancing policy (§6), if enabled.
    rebalance: Option<RebalancePolicy>,
    /// Graceful migrations initiated by the rebalancer (stat).
    pub rebalance_migrations: u64,
    /// Last heartbeat receipt per frontend host, tracked lazily: a host
    /// enters the table on its first heartbeat, so deployments that never
    /// send heartbeats are never subject to detection.
    last_heartbeat: Vec<(u32, SimTime)>,
    /// Hosts declared failed since the embedding last asked
    /// ([`PodAllocator::take_failed_hosts`]).
    newly_failed_hosts: Vec<u32>,
    /// Hosts that heartbeated again after a failure, since last asked.
    newly_restarted_hosts: Vec<u32>,
    /// `(host, silent_since, detected_at)` per host-failure declaration
    /// (detection-latency distribution for the chaos report).
    pub host_failure_detections: Vec<(u32, SimTime, SimTime)>,
}

/// The §6 load-balancing policy: when one NIC's telemetry load exceeds the
/// least-loaded NIC's by `ratio`, gracefully migrate one of its instances
/// there. A cooldown bounds the migration rate so bursty traffic cannot
/// cause flapping.
#[derive(Clone, Debug)]
pub struct RebalancePolicy {
    /// Hot/cold load ratio that triggers a migration.
    // oasis-check: allow(float-determinism) local trigger knob compared against telemetry; never enters replicated state
    pub ratio: f64,
    /// Minimum hot-NIC load (bytes per telemetry window) before the policy
    /// acts at all.
    pub min_load_bytes: u64,
    /// Minimum time between migrations.
    pub cooldown: SimDuration,
    last_migration: SimTime,
}

impl RebalancePolicy {
    /// Policy with the given trigger ratio and cooldown.
    // oasis-check: allow(float-determinism) constructor for the local trigger knob above
    pub fn new(ratio: f64, min_load_bytes: u64, cooldown: SimDuration) -> Self {
        RebalancePolicy {
            ratio,
            min_load_bytes,
            cooldown,
            last_migration: SimTime::ZERO,
        }
    }
}

impl PodAllocator {
    /// Create the allocator with a single-replica Raft group (commands
    /// commit immediately; see [`super::replicated`] for the multi-node
    /// state-machine tests).
    pub fn new(core: HostCtx, cfg: OasisConfig) -> Self {
        let mut raft = RaftNode::new(0, vec![], RaftConfig::default(), 0xA110C);
        // A single-node group elects itself on the first tick.
        raft.tick(SimTime::from_millis(25));
        assert!(raft.is_leader());
        PodAllocator {
            core,
            state: AllocState::default(),
            cfg,
            raft,
            to_frontends: Vec::new(),
            from_frontends: Vec::new(),
            from_backends: Vec::new(),
            reroutes_sent: 0,
            failovers: 0,
            rebalance: None,
            rebalance_migrations: 0,
            last_heartbeat: Vec::new(),
            newly_failed_hosts: Vec::new(),
            newly_restarted_hosts: Vec::new(),
            host_failure_detections: Vec::new(),
        }
    }

    /// Enable the §6 telemetry-driven load-balancing policy.
    pub fn enable_rebalancing(&mut self, policy: RebalancePolicy) {
        self.rebalance = Some(policy);
    }

    /// Wire the channel pair for a frontend on `host`.
    pub fn add_frontend(&mut self, host: usize, to: Sender, from: Receiver) {
        self.to_frontends.push((host, to));
        self.from_frontends.push((host, from));
    }

    /// Wire the receive channel from a backend for `nic`.
    pub fn add_backend(&mut self, nic: u32, from: Receiver) {
        self.from_backends.push((nic, from));
    }

    /// Propose a command through Raft and apply everything committed.
    pub fn propose(&mut self, cmd: AllocCommand) {
        let now = self.core.clock;
        // oasis-check: allow(no-panic) single-node Raft group: propose can
        // only fail on a non-leader, which cannot exist here.
        self.raft
            .propose(now, cmd.encode())
            .expect("single-node allocator group is always leader");
        self.drain_applied();
    }

    fn drain_applied(&mut self) {
        let now = self.core.clock;
        let ttl = self.cfg.telemetry_period * 3;
        for (_, bytes) in self.raft.take_applied() {
            if let Some(cmd) = AllocCommand::decode(&bytes) {
                self.state.apply(now, ttl, &cmd);
            }
        }
    }

    /// Synchronous volume placement: carve `blocks` out of an SSD
    /// (local-first, then most-free) and record it through the Raft log.
    /// Returns `(ssd, base_block)`.
    pub fn place_volume(&mut self, host: usize, ip: Ipv4Addr, blocks: u32) -> Option<(u32, u32)> {
        let ssd = self.state.pick_ssd(host as u32, blocks)?;
        let base = self.state.ssds.get(ssd as usize)?.as_ref()?.next_block;
        self.propose(AllocCommand::AssignVolume {
            ip,
            ssd,
            base_block: base,
            blocks,
        });
        Some((ssd, base))
    }

    /// Synchronous placement at instance launch: pick a NIC (local-first)
    /// and record the lease. Returns the chosen NIC.
    pub fn place_instance(&mut self, host: usize, ip: Ipv4Addr, lease_mbps: u32) -> Option<u32> {
        let nic = self.state.pick_nic(host as u32, lease_mbps)?;
        self.propose(AllocCommand::Assign {
            ip,
            host: host as u32,
            nic,
            lease_mbps,
        });
        Some(nic)
    }

    fn fail_nic_internal(&mut self, pool: &mut CxlPool, nic: u32) {
        let already_failed = self
            .state
            .nics
            .get(nic as usize)
            .and_then(|n| n.as_ref())
            .map(|n| n.failed)
            .unwrap_or(true);
        if already_failed {
            return;
        }
        self.failovers += 1;
        self.propose(AllocCommand::MarkFailed { nic });
        let Some(backup) = self.state.backup_nic() else {
            return;
        };
        // Revoke leases on the failed device and reroute every affected
        // instance to the backup (§3.5 failure management).
        for inst in self.state.instances_on(nic) {
            self.propose(AllocCommand::Assign {
                ip: inst.ip,
                host: inst.host,
                nic: backup,
                lease_mbps: inst.lease_mbps,
            });
            let msg = NetMsg {
                ptr: backup as u64,
                size: 0,
                op: NetOp::Reroute,
                ip: inst.ip,
            };
            if let Some((_, tx)) = self
                .to_frontends
                .iter_mut()
                .find(|(h, _)| *h == inst.host as usize)
            {
                if tx
                    .try_send(&mut self.core, pool, &msg.encode())
                    .unwrap_or(false)
                {
                    tx.flush(&mut self.core, pool);
                    self.reroutes_sent += 1;
                }
            }
        }
    }

    /// Record a heartbeat from `host`. A heartbeat from a host previously
    /// declared failed means it restarted: the declaration is reverted
    /// through the log and the embedding is told so it can re-admit the
    /// host's engines.
    fn note_heartbeat(&mut self, host: u32) {
        let now = self.core.clock;
        match self.last_heartbeat.iter_mut().find(|(h, _)| *h == host) {
            Some(entry) => entry.1 = now,
            None => self.last_heartbeat.push((host, now)),
        }
        if self.state.failed_hosts.contains(&host) {
            self.propose(AllocCommand::MarkHostRestarted { host });
            self.newly_restarted_hosts.push(host);
        }
    }

    /// Declare hosts dead after three silent heartbeat periods (plus a
    /// polling-slack margin). Reclaim goes through the Raft log so every
    /// replica agrees on what was released.
    fn detect_dead_hosts(&mut self) {
        let deadline = self.cfg.heartbeat_period * 3 + self.cfg.allocator_poll * 2;
        let now = self.core.clock;
        let dead: Vec<(u32, SimTime)> = self
            .last_heartbeat
            .iter()
            // oasis-check: allow(unchecked-epoch-arithmetic) SimTime + SimDuration saturates by construction
            .filter(|&&(h, last)| now > last + deadline && !self.state.failed_hosts.contains(&h))
            .map(|&(h, last)| (h, last))
            .collect();
        for (host, last) in dead {
            self.propose(AllocCommand::MarkHostFailed { host });
            self.host_failure_detections.push((host, last, now));
            self.newly_failed_hosts.push(host);
        }
    }

    /// Are there failure declarations the embedding has not taken yet?
    pub fn has_newly_failed_hosts(&self) -> bool {
        !self.newly_failed_hosts.is_empty()
    }

    /// Hosts declared failed since the last call (for the embedding to
    /// reclaim pool regions and stop the dead host's engines).
    pub fn take_failed_hosts(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.newly_failed_hosts)
    }

    /// Hosts that heartbeated again after a failure, since the last call.
    pub fn take_restarted_hosts(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.newly_restarted_hosts)
    }

    /// Replay the committed prefix of the Raft log through a fresh state
    /// machine and compare with the live state on every log-derived field
    /// (times like lease expiries are volatile and excluded). This is the
    /// chaos harness's "allocator state is consistent with the log"
    /// invariant.
    pub fn consistent_with_log(&self) -> bool {
        let mut replayed = AllocState::default();
        let commit = self.raft.commit_index();
        for entry in self.raft.log_entries().iter().take(commit as usize) {
            if entry.command.is_empty() {
                continue; // election no-op barrier
            }
            if let Some(cmd) = AllocCommand::decode(&entry.command) {
                replayed.apply(SimTime::ZERO, SimDuration::ZERO, &cmd);
            }
        }
        Self::log_view(&replayed) == Self::log_view(&self.state)
    }

    /// The log-derived projection of an [`AllocState`] (excludes telemetry
    /// timestamps and lease expiries, which are allocator-local).
    // The tuple type is written out once, here, as documentation of exactly
    // which fields the log determines; a named struct would hide that.
    #[allow(clippy::type_complexity)]
    fn log_view(
        s: &AllocState,
    ) -> (
        Vec<Option<(u32, u32, u32, bool, bool)>>,
        Vec<(Ipv4Addr, u32, u32, u32)>,
        Vec<Option<(u32, u32, u32, u32)>>,
        Vec<Option<u32>>,
        Vec<(Ipv4Addr, u32, u32, u32)>,
        Vec<u32>,
    ) {
        (
            s.nics
                .iter()
                .map(|n| {
                    n.as_ref().map(|n| {
                        (
                            n.host,
                            n.capacity_mbps,
                            n.allocated_mbps,
                            n.backup,
                            n.failed,
                        )
                    })
                })
                .collect(),
            s.instances
                .iter()
                .map(|i| (i.ip, i.host, i.nic, i.lease_mbps))
                .collect(),
            s.ssds
                .iter()
                .map(|s| {
                    s.as_ref()
                        .map(|s| (s.host, s.capacity_blocks, s.next_block, s.allocated_blocks))
                })
                .collect(),
            s.accels
                .iter()
                .map(|a| a.as_ref().map(|a| a.host))
                .collect(),
            s.volumes
                .iter()
                .map(|v| (v.ip, v.ssd, v.base_block, v.blocks))
                .collect(),
            s.failed_hosts.clone(),
        )
    }

    /// Command a graceful migration of `ip` to `nic` (§3.3.4), e.g. for
    /// load balancing.
    pub fn migrate_instance(&mut self, pool: &mut CxlPool, ip: Ipv4Addr, nic: u32) {
        let Some(inst) = self.state.instances.iter().find(|i| i.ip == ip).cloned() else {
            return;
        };
        self.propose(AllocCommand::Assign {
            ip,
            host: inst.host,
            nic,
            lease_mbps: inst.lease_mbps,
        });
        let msg = NetMsg {
            ptr: nic as u64,
            size: 0,
            op: NetOp::Migrate,
            ip,
        };
        if let Some((_, tx)) = self
            .to_frontends
            .iter_mut()
            .find(|(h, _)| *h == inst.host as usize)
        {
            if tx
                .try_send(&mut self.core, pool, &msg.encode())
                .unwrap_or(false)
            {
                tx.flush(&mut self.core, pool);
            }
        }
    }

    /// One control-plane polling round. Advances the clock by the
    /// allocator's polling period (it is not a busy-polling data-path
    /// core).
    pub fn step(&mut self, pool: &mut CxlPool) {
        self.core.advance(self.cfg.allocator_poll.as_nanos());
        let mut buf = [0u8; 16];

        // Backend reports: telemetry and failures.
        let mut failed_nics = Vec::new();
        for bi in 0..self.from_backends.len() {
            loop {
                let (nic, rx) = &mut self.from_backends[bi];
                if !rx.try_recv(&mut self.core, pool, &mut buf) {
                    break;
                }
                let nic = *nic;
                let Some(msg) = NetMsg::decode(&buf) else {
                    continue;
                };
                match msg.op {
                    NetOp::LinkFailed => failed_nics.push(msg.ptr as u32),
                    NetOp::Telemetry => {
                        let now = self.core.clock;
                        let ttl = self.cfg.telemetry_period * 3;
                        if let Some(Some(n)) = self.state.nics.get_mut(nic as usize) {
                            n.last_telemetry = now;
                            n.recent_load_bytes = msg.ptr;
                        }
                        // Telemetry renews the leases of instances served
                        // by this device (§3.5).
                        for inst in self.state.instances.iter_mut().filter(|i| i.nic == nic) {
                            // oasis-check: allow(unchecked-epoch-arithmetic) SimTime + SimDuration saturates by construction
                            inst.lease_expiry = now + ttl;
                        }
                    }
                    _ => {}
                }
            }
        }
        for nic in failed_nics {
            self.fail_nic_internal(pool, nic);
        }

        // Host failures are inferred from missing telemetry (§3.5).
        let deadline = self.cfg.telemetry_period * 3 + self.cfg.allocator_poll * 2;
        let stale: Vec<u32> = self
            .state
            .nics
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i as u32, n)))
            .filter(|(_, n)| !n.failed && self.core.clock > n.last_telemetry + deadline)
            .map(|(i, _)| i)
            .collect();
        for nic in stale {
            self.fail_nic_internal(pool, nic);
        }

        // §6 load balancing: migrate an instance off the hottest NIC when
        // its telemetry load dwarfs the coldest usable NIC's.
        if let Some(mut policy) = self.rebalance.take() {
            if self.core.clock >= policy.last_migration + policy.cooldown {
                let usable: Vec<(u32, u64)> = self
                    .state
                    .nics
                    .iter()
                    .enumerate()
                    .filter_map(|(i, n)| n.as_ref().map(|n| (i as u32, n)))
                    .filter(|(_, n)| !n.failed && !n.backup)
                    .map(|(i, n)| (i, n.recent_load_bytes))
                    .collect();
                if let (Some(&(hot, hot_load)), Some(&(cold, cold_load))) = (
                    usable.iter().max_by_key(|&&(_, l)| l),
                    usable.iter().min_by_key(|&&(_, l)| l),
                ) {
                    // oasis-check: allow(float-determinism) trigger compare on local telemetry; migration itself goes through the log
                    if hot != cold
                        && hot_load >= policy.min_load_bytes
                        && hot_load as f64 > policy.ratio * (cold_load.max(1)) as f64
                    {
                        // Move the instance with the largest lease first
                        // (it most likely carries the load).
                        if let Some(inst) = self
                            .state
                            .instances_on(hot)
                            .into_iter()
                            .max_by_key(|i| i.lease_mbps)
                        {
                            let cold_ok = self
                                .state
                                .nics
                                .get(cold as usize)
                                .and_then(|n| n.as_ref())
                                .map(|n| {
                                    n.allocated_mbps.saturating_add(inst.lease_mbps)
                                        <= n.capacity_mbps
                                })
                                .unwrap_or(false);
                            if cold_ok {
                                self.migrate_instance(pool, inst.ip, cold);
                                self.rebalance_migrations += 1;
                                policy.last_migration = self.core.clock;
                            }
                        }
                    }
                }
            }
            self.rebalance = Some(policy);
        }

        // Frontend requests (AllocRequest over channels).
        let mut responses = Vec::new();
        for fi in 0..self.from_frontends.len() {
            loop {
                let (host, rx) = &mut self.from_frontends[fi];
                if !rx.try_recv(&mut self.core, pool, &mut buf) {
                    break;
                }
                let host = *host;
                let Some(msg) = NetMsg::decode(&buf) else {
                    continue;
                };
                match msg.op {
                    NetOp::AllocRequest => responses.push((host, msg.ip, msg.size as u32)),
                    NetOp::Heartbeat => self.note_heartbeat(msg.ptr as u32),
                    _ => {}
                }
            }
        }
        self.detect_dead_hosts();
        for (host, ip, lease) in responses {
            let nic = self.place_instance(host, ip, lease.max(1));
            let msg = NetMsg {
                ptr: nic.map(|n| n as u64).unwrap_or(u64::MAX),
                size: 0,
                op: NetOp::AllocResponse,
                ip,
            };
            if let Some((_, tx)) = self.to_frontends.iter_mut().find(|(h, _)| *h == host) {
                let _ = tx.try_send(&mut self.core, pool, &msg.encode());
                tx.flush(&mut self.core, pool);
            }
        }

        // Publish consumed counters so producers can reuse slots.
        for (_, rx) in &mut self.from_backends {
            rx.publish_consumed(&mut self.core, pool);
        }
        for (_, rx) in &mut self.from_frontends {
            rx.publish_consumed(&mut self.core, pool);
        }
    }
}

impl crate::snapshot::Snapshottable for PodAllocator {
    /// Serializes the full lease ledger ([`AllocState`]) plus the failure
    /// detector's working set. The Raft node itself is *not* serialized:
    /// the pod runtime runs a single-replica group where every command
    /// commits immediately, so the applied state machine is authoritative
    /// and the restored node starts from an empty (already-compacted) log.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        let s = &self.state;
        w.put_u64(s.nics.len() as u64);
        for slot in &s.nics {
            w.put_bool(slot.is_some());
            if let Some(n) = slot {
                w.put_u32(n.host);
                w.put_u32(n.capacity_mbps);
                w.put_u32(n.allocated_mbps);
                w.put_bool(n.backup);
                w.put_bool(n.failed);
                w.put_u64(n.last_telemetry.as_nanos());
                w.put_u64(n.recent_load_bytes);
            }
        }
        w.put_u64(s.instances.len() as u64);
        for i in &s.instances {
            w.put_u32(u32::from_le_bytes(i.ip.0));
            w.put_u32(i.host);
            w.put_u32(i.nic);
            w.put_u32(i.lease_mbps);
            w.put_u64(i.lease_expiry.as_nanos());
        }
        w.put_u64(s.ssds.len() as u64);
        for slot in &s.ssds {
            w.put_bool(slot.is_some());
            if let Some(d) = slot {
                w.put_u32(d.host);
                w.put_u32(d.capacity_blocks);
                w.put_u32(d.next_block);
                w.put_u32(d.allocated_blocks);
            }
        }
        w.put_u64(s.accels.len() as u64);
        for slot in &s.accels {
            w.put_bool(slot.is_some());
            if let Some(a) = slot {
                w.put_u32(a.host);
            }
        }
        w.put_u64(s.volumes.len() as u64);
        for v in &s.volumes {
            w.put_u32(u32::from_le_bytes(v.ip.0));
            w.put_u32(v.ssd);
            w.put_u32(v.base_block);
            w.put_u32(v.blocks);
        }
        w.put_u64(s.failed_hosts.len() as u64);
        for &h in &s.failed_hosts {
            w.put_u32(h);
        }
        w.put_u64(self.reroutes_sent);
        w.put_u64(self.failovers);
        w.put_u64(self.rebalance_migrations);
        w.put_u64(self.last_heartbeat.len() as u64);
        for &(host, at) in &self.last_heartbeat {
            w.put_u32(host);
            w.put_u64(at.as_nanos());
        }
        w.put_u64(self.newly_failed_hosts.len() as u64);
        for &h in &self.newly_failed_hosts {
            w.put_u32(h);
        }
        w.put_u64(self.newly_restarted_hosts.len() as u64);
        for &h in &self.newly_restarted_hosts {
            w.put_u32(h);
        }
        w.put_u64(self.host_failure_detections.len() as u64);
        for &(host, since, at) in &self.host_failure_detections {
            w.put_u32(host);
            w.put_u64(since.as_nanos());
            w.put_u64(at.as_nanos());
        }
        // Rebalance policy: knobs are construction-time config; only the
        // cooldown cursor mutates.
        w.put_bool(self.rebalance.is_some());
        if let Some(p) = &self.rebalance {
            w.put_u64(p.last_migration.as_nanos());
        }
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("alloc clock")?);
        let n = r.count("alloc nic count")?;
        let mut nics = Vec::with_capacity(n);
        for _ in 0..n {
            nics.push(if r.bool("alloc nic present")? {
                Some(NicInfo {
                    host: r.u32("alloc nic host")?,
                    capacity_mbps: r.u32("alloc nic capacity")?,
                    allocated_mbps: r.u32("alloc nic allocated")?,
                    backup: r.bool("alloc nic backup")?,
                    failed: r.bool("alloc nic failed")?,
                    last_telemetry: SimTime(r.u64("alloc nic telemetry")?),
                    recent_load_bytes: r.u64("alloc nic load")?,
                })
            } else {
                None
            });
        }
        self.state.nics = nics;
        let n = r.count("alloc instance count")?;
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            instances.push(InstanceInfo {
                ip: Ipv4Addr(r.u32("alloc instance ip")?.to_le_bytes()),
                host: r.u32("alloc instance host")?,
                nic: r.u32("alloc instance nic")?,
                lease_mbps: r.u32("alloc instance lease")?,
                lease_expiry: SimTime(r.u64("alloc instance expiry")?),
            });
        }
        self.state.instances = instances;
        let n = r.count("alloc ssd count")?;
        let mut ssds = Vec::with_capacity(n);
        for _ in 0..n {
            ssds.push(if r.bool("alloc ssd present")? {
                Some(SsdInfo {
                    host: r.u32("alloc ssd host")?,
                    capacity_blocks: r.u32("alloc ssd capacity")?,
                    next_block: r.u32("alloc ssd next")?,
                    allocated_blocks: r.u32("alloc ssd allocated")?,
                })
            } else {
                None
            });
        }
        self.state.ssds = ssds;
        let n = r.count("alloc accel count")?;
        let mut accels = Vec::with_capacity(n);
        for _ in 0..n {
            accels.push(if r.bool("alloc accel present")? {
                Some(AccelInfo {
                    host: r.u32("alloc accel host")?,
                })
            } else {
                None
            });
        }
        self.state.accels = accels;
        let n = r.count("alloc volume count")?;
        let mut volumes = Vec::with_capacity(n);
        for _ in 0..n {
            volumes.push(VolumeInfo {
                ip: Ipv4Addr(r.u32("alloc volume ip")?.to_le_bytes()),
                ssd: r.u32("alloc volume ssd")?,
                base_block: r.u32("alloc volume base")?,
                blocks: r.u32("alloc volume blocks")?,
            });
        }
        self.state.volumes = volumes;
        let n = r.count("alloc failed-host count")?;
        let mut failed_hosts = Vec::with_capacity(n);
        for _ in 0..n {
            failed_hosts.push(r.u32("alloc failed host")?);
        }
        self.state.failed_hosts = failed_hosts;
        self.reroutes_sent = r.u64("alloc reroutes")?;
        self.failovers = r.u64("alloc failovers")?;
        self.rebalance_migrations = r.u64("alloc rebalance migrations")?;
        let n = r.count("alloc heartbeat count")?;
        let mut last_heartbeat = Vec::with_capacity(n);
        for _ in 0..n {
            let host = r.u32("alloc heartbeat host")?;
            let at = SimTime(r.u64("alloc heartbeat time")?);
            last_heartbeat.push((host, at));
        }
        self.last_heartbeat = last_heartbeat;
        let n = r.count("alloc newly-failed count")?;
        let mut newly_failed = Vec::with_capacity(n);
        for _ in 0..n {
            newly_failed.push(r.u32("alloc newly-failed host")?);
        }
        self.newly_failed_hosts = newly_failed;
        let n = r.count("alloc newly-restarted count")?;
        let mut newly_restarted = Vec::with_capacity(n);
        for _ in 0..n {
            newly_restarted.push(r.u32("alloc newly-restarted host")?);
        }
        self.newly_restarted_hosts = newly_restarted;
        let n = r.count("alloc detection count")?;
        let mut detections = Vec::with_capacity(n);
        for _ in 0..n {
            let host = r.u32("alloc detection host")?;
            let since = SimTime(r.u64("alloc detection since")?);
            let at = SimTime(r.u64("alloc detection at")?);
            detections.push((host, since, at));
        }
        self.host_failure_detections = detections;
        let has_policy = r.bool("alloc rebalance present")?;
        if has_policy != self.rebalance.is_some() {
            return Err(SnapshotError::Corrupt("alloc rebalance presence"));
        }
        if let Some(p) = &mut self.rebalance {
            p.last_migration = SimTime(r.u64("alloc rebalance cursor")?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_cxl::pool::PortId;

    fn state_with_nics() -> AllocState {
        let mut s = AllocState::default();
        let ttl = SimDuration::from_millis(300);
        for (nic, host, backup) in [(0u32, 0u32, false), (1, 1, false), (2, 2, true)] {
            s.apply(
                SimTime::ZERO,
                ttl,
                &AllocCommand::RegisterNic {
                    nic,
                    host,
                    capacity_mbps: 100_000,
                    backup,
                },
            );
        }
        s
    }

    #[test]
    fn local_first_placement() {
        let s = state_with_nics();
        assert_eq!(s.pick_nic(0, 10_000), Some(0));
        assert_eq!(s.pick_nic(1, 10_000), Some(1));
    }

    #[test]
    fn remote_least_loaded_when_no_local() {
        let mut s = state_with_nics();
        // Host 3 has no NIC; nic 0 is loaded, nic 1 free.
        s.apply(
            SimTime::ZERO,
            SimDuration::from_millis(300),
            &AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 0,
                lease_mbps: 50_000,
            },
        );
        assert_eq!(s.pick_nic(3, 10_000), Some(1));
    }

    #[test]
    fn backup_excluded_from_remote_placement() {
        let mut s = state_with_nics();
        // Fill both non-backup NICs.
        for (i, nic) in [(1u32, 0u32), (2, 1)] {
            s.apply(
                SimTime::ZERO,
                SimDuration::from_millis(300),
                &AllocCommand::Assign {
                    ip: Ipv4Addr::instance(i),
                    host: 0,
                    nic,
                    lease_mbps: 100_000,
                },
            );
        }
        // Remote host cannot land on the backup.
        assert_eq!(s.pick_nic(3, 10_000), None);
        // But the backup's own host can use it node-locally (§3.3.3).
        assert_eq!(s.pick_nic(2, 10_000), Some(2));
    }

    #[test]
    fn capacity_respected() {
        let mut s = state_with_nics();
        s.apply(
            SimTime::ZERO,
            SimDuration::from_millis(300),
            &AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 0,
                lease_mbps: 95_000,
            },
        );
        // nic0 can't take 10G more; falls to nic1 even for host 0.
        assert_eq!(s.pick_nic(0, 10_000), Some(1));
    }

    #[test]
    fn failed_nic_skipped_and_leases_revoked() {
        let mut s = state_with_nics();
        let ttl = SimDuration::from_millis(300);
        s.apply(
            SimTime::ZERO,
            ttl,
            &AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 0,
                lease_mbps: 10_000,
            },
        );
        s.apply(SimTime::ZERO, ttl, &AllocCommand::MarkFailed { nic: 0 });
        assert_ne!(s.pick_nic(0, 10_000), Some(0));
        // Reassign revokes the old lease.
        s.apply(
            SimTime::ZERO,
            ttl,
            &AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 1,
                lease_mbps: 10_000,
            },
        );
        assert_eq!(s.nics[0].as_ref().unwrap().allocated_mbps, 0);
        assert_eq!(s.nics[1].as_ref().unwrap().allocated_mbps, 10_000);
        assert_eq!(s.instances_on(1).len(), 1);
    }

    #[test]
    fn allocator_places_via_raft_log() {
        let core = HostCtx::new(PortId(0), 0);
        let mut alloc = PodAllocator::new(core, OasisConfig::default());
        alloc.propose(AllocCommand::RegisterNic {
            nic: 0,
            host: 0,
            capacity_mbps: 100_000,
            backup: false,
        });
        let nic = alloc.place_instance(0, Ipv4Addr::instance(1), 5_000);
        assert_eq!(nic, Some(0));
        assert_eq!(alloc.state.instances.len(), 1);
        assert_eq!(alloc.state.nics[0].as_ref().unwrap().allocated_mbps, 5_000);
    }
}
