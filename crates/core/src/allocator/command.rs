//! Allocator state-machine commands (the Raft log payload).

use oasis_net::addr::Ipv4Addr;

/// A command applied to the replicated allocator state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocCommand {
    /// Register a NIC attached to `host` with `capacity_mbps` of
    /// allocatable bandwidth.
    RegisterNic {
        /// NIC id.
        nic: u32,
        /// Host the NIC is attached to.
        host: u32,
        /// Allocatable bandwidth in Mbit/s.
        capacity_mbps: u32,
        /// Reserved as the pod's failover backup (§3.3.3).
        backup: bool,
    },
    /// Assign an instance to a NIC with a bandwidth lease.
    Assign {
        /// Instance IP.
        ip: Ipv4Addr,
        /// Instance host.
        host: u32,
        /// Serving NIC.
        nic: u32,
        /// Leased bandwidth in Mbit/s.
        lease_mbps: u32,
    },
    /// Remove an instance's assignment.
    Unassign {
        /// Instance IP.
        ip: Ipv4Addr,
    },
    /// Mark a NIC failed; its leases are revoked by the state machine.
    MarkFailed {
        /// NIC id.
        nic: u32,
    },
    /// Mark a NIC healthy again after repair.
    MarkRepaired {
        /// NIC id.
        nic: u32,
    },
    /// Register an SSD attached to `host` with allocatable capacity.
    RegisterSsd {
        /// SSD id.
        ssd: u32,
        /// Host the SSD is attached to.
        host: u32,
        /// Allocatable capacity in whole blocks.
        capacity_blocks: u32,
    },
    /// Carve a volume for an instance out of an SSD.
    AssignVolume {
        /// Owning instance IP.
        ip: Ipv4Addr,
        /// SSD the volume lives on.
        ssd: u32,
        /// First block of the volume.
        base_block: u32,
        /// Volume length in blocks.
        blocks: u32,
    },
    /// Release an instance's volumes (instance teardown; local NVMe is
    /// ephemeral, as §3.4 notes).
    ReleaseVolumes {
        /// Owning instance IP.
        ip: Ipv4Addr,
    },
    /// Declare a frontend host dead (ISSUE 2 heartbeat detection). The
    /// state machine revokes every lease and volume owned by instances on
    /// that host so nothing leaks while it is down.
    MarkHostFailed {
        /// Host id.
        host: u32,
    },
    /// A failed host heartbeated again after restarting.
    MarkHostRestarted {
        /// Host id.
        host: u32,
    },
    /// Register a compute-offload accelerator attached to `host`.
    RegisterAccel {
        /// Accelerator id.
        accel: u32,
        /// Host the accelerator is attached to.
        host: u32,
    },
}

impl AllocCommand {
    /// Serialize for the Raft log.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        match self {
            AllocCommand::RegisterNic {
                nic,
                host,
                capacity_mbps,
                backup,
            } => {
                b.push(1);
                b.extend_from_slice(&nic.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&capacity_mbps.to_le_bytes());
                b.push(*backup as u8);
            }
            AllocCommand::Assign {
                ip,
                host,
                nic,
                lease_mbps,
            } => {
                b.push(2);
                b.extend_from_slice(&ip.0);
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&nic.to_le_bytes());
                b.extend_from_slice(&lease_mbps.to_le_bytes());
            }
            AllocCommand::Unassign { ip } => {
                b.push(3);
                b.extend_from_slice(&ip.0);
            }
            AllocCommand::MarkFailed { nic } => {
                b.push(4);
                b.extend_from_slice(&nic.to_le_bytes());
            }
            AllocCommand::MarkRepaired { nic } => {
                b.push(5);
                b.extend_from_slice(&nic.to_le_bytes());
            }
            AllocCommand::RegisterSsd {
                ssd,
                host,
                capacity_blocks,
            } => {
                b.push(6);
                b.extend_from_slice(&ssd.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&capacity_blocks.to_le_bytes());
            }
            AllocCommand::AssignVolume {
                ip,
                ssd,
                base_block,
                blocks,
            } => {
                b.push(7);
                b.extend_from_slice(&ip.0);
                b.extend_from_slice(&ssd.to_le_bytes());
                b.extend_from_slice(&base_block.to_le_bytes());
                b.extend_from_slice(&blocks.to_le_bytes());
            }
            AllocCommand::ReleaseVolumes { ip } => {
                b.push(8);
                b.extend_from_slice(&ip.0);
            }
            AllocCommand::MarkHostFailed { host } => {
                b.push(9);
                b.extend_from_slice(&host.to_le_bytes());
            }
            AllocCommand::MarkHostRestarted { host } => {
                b.push(10);
                b.extend_from_slice(&host.to_le_bytes());
            }
            AllocCommand::RegisterAccel { accel, host } => {
                b.push(11);
                b.extend_from_slice(&accel.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
            }
        }
        b
    }

    /// Deserialize from the Raft log. `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<AllocCommand> {
        let u32_at = |o: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(o..o + 4)?.try_into().ok()?))
        };
        match *b.first()? {
            1 => Some(AllocCommand::RegisterNic {
                nic: u32_at(1)?,
                host: u32_at(5)?,
                capacity_mbps: u32_at(9)?,
                backup: *b.get(13)? != 0,
            }),
            2 => Some(AllocCommand::Assign {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
                host: u32_at(5)?,
                nic: u32_at(9)?,
                lease_mbps: u32_at(13)?,
            }),
            3 => Some(AllocCommand::Unassign {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
            }),
            4 => Some(AllocCommand::MarkFailed { nic: u32_at(1)? }),
            5 => Some(AllocCommand::MarkRepaired { nic: u32_at(1)? }),
            6 => Some(AllocCommand::RegisterSsd {
                ssd: u32_at(1)?,
                host: u32_at(5)?,
                capacity_blocks: u32_at(9)?,
            }),
            7 => Some(AllocCommand::AssignVolume {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
                ssd: u32_at(5)?,
                base_block: u32_at(9)?,
                blocks: u32_at(13)?,
            }),
            8 => Some(AllocCommand::ReleaseVolumes {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
            }),
            9 => Some(AllocCommand::MarkHostFailed { host: u32_at(1)? }),
            10 => Some(AllocCommand::MarkHostRestarted { host: u32_at(1)? }),
            11 => Some(AllocCommand::RegisterAccel {
                accel: u32_at(1)?,
                host: u32_at(5)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_commands() {
        let cmds = vec![
            AllocCommand::RegisterNic {
                nic: 3,
                host: 1,
                capacity_mbps: 100_000,
                backup: true,
            },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(9),
                host: 2,
                nic: 0,
                lease_mbps: 10_000,
            },
            AllocCommand::Unassign {
                ip: Ipv4Addr::instance(9),
            },
            AllocCommand::MarkFailed { nic: 7 },
            AllocCommand::MarkRepaired { nic: 7 },
            AllocCommand::RegisterSsd {
                ssd: 2,
                host: 1,
                capacity_blocks: 4096,
            },
            AllocCommand::AssignVolume {
                ip: Ipv4Addr::instance(9),
                ssd: 2,
                base_block: 128,
                blocks: 256,
            },
            AllocCommand::ReleaseVolumes {
                ip: Ipv4Addr::instance(9),
            },
            AllocCommand::MarkHostFailed { host: 4 },
            AllocCommand::MarkHostRestarted { host: 4 },
            AllocCommand::RegisterAccel { accel: 1, host: 3 },
        ];
        for c in cmds {
            assert_eq!(AllocCommand::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(AllocCommand::decode(&[]).is_none());
        assert!(AllocCommand::decode(&[99]).is_none());
        assert!(AllocCommand::decode(&[1, 0]).is_none());
    }
}
