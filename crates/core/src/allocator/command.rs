//! Allocator state-machine commands (the Raft log payload).

use oasis_net::addr::Ipv4Addr;

/// Wire-schema version of [`AllocCommand`]. Variant order assigns the
/// discriminant bytes, so appending, reordering, or renaming a variant is
/// a schema change: bump this, update the golden registry in
/// `crates/check/src/policy.rs`, and re-pin the golden-bytes test.
pub const ALLOC_SCHEMA_VERSION: u32 = 1;

/// Wire-schema version of [`FleetCommand`]; same contract as
/// [`ALLOC_SCHEMA_VERSION`]. v2 appended `MigrateInstance` and
/// `FinishMigration` (ISSUE 10 live migration).
pub const FLEET_SCHEMA_VERSION: u32 = 2;

/// How a live migration moves instance state to the target pod.
///
/// Variant order assigns the wire bytes inside [`FleetCommand`], so this
/// enum is golden-pinned alongside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferPath {
    /// Pre-copy through the shared CXL pool: the source writes dirty state
    /// into pooled memory the target maps directly (§3.2's fabric reused
    /// as a migration channel).
    Cxl,
    /// Pre-copy over the NIC datapath, TCP-style, consuming the source
    /// instance's leased bandwidth.
    Nic,
}

impl TransferPath {
    /// Wire byte (also the `oasis-obs` tag the migration metrics carry).
    pub fn to_byte(self) -> u8 {
        match self {
            TransferPath::Cxl => 0,
            TransferPath::Nic => 1,
        }
    }

    /// Inverse of [`to_byte`](Self::to_byte). `None` on unknown bytes —
    /// a migration command with an unknown path must be rejected, never
    /// guessed.
    pub fn from_byte(b: u8) -> Option<TransferPath> {
        match b {
            0 => Some(TransferPath::Cxl),
            1 => Some(TransferPath::Nic),
            _ => None,
        }
    }
}

/// A command applied to the replicated allocator state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocCommand {
    /// Register a NIC attached to `host` with `capacity_mbps` of
    /// allocatable bandwidth.
    RegisterNic {
        /// NIC id.
        nic: u32,
        /// Host the NIC is attached to.
        host: u32,
        /// Allocatable bandwidth in Mbit/s.
        capacity_mbps: u32,
        /// Reserved as the pod's failover backup (§3.3.3).
        backup: bool,
    },
    /// Assign an instance to a NIC with a bandwidth lease.
    Assign {
        /// Instance IP.
        ip: Ipv4Addr,
        /// Instance host.
        host: u32,
        /// Serving NIC.
        nic: u32,
        /// Leased bandwidth in Mbit/s.
        lease_mbps: u32,
    },
    /// Remove an instance's assignment.
    Unassign {
        /// Instance IP.
        ip: Ipv4Addr,
    },
    /// Mark a NIC failed; its leases are revoked by the state machine.
    MarkFailed {
        /// NIC id.
        nic: u32,
    },
    /// Mark a NIC healthy again after repair.
    MarkRepaired {
        /// NIC id.
        nic: u32,
    },
    /// Register an SSD attached to `host` with allocatable capacity.
    RegisterSsd {
        /// SSD id.
        ssd: u32,
        /// Host the SSD is attached to.
        host: u32,
        /// Allocatable capacity in whole blocks.
        capacity_blocks: u32,
    },
    /// Carve a volume for an instance out of an SSD.
    AssignVolume {
        /// Owning instance IP.
        ip: Ipv4Addr,
        /// SSD the volume lives on.
        ssd: u32,
        /// First block of the volume.
        base_block: u32,
        /// Volume length in blocks.
        blocks: u32,
    },
    /// Release an instance's volumes (instance teardown; local NVMe is
    /// ephemeral, as §3.4 notes).
    ReleaseVolumes {
        /// Owning instance IP.
        ip: Ipv4Addr,
    },
    /// Declare a frontend host dead (ISSUE 2 heartbeat detection). The
    /// state machine revokes every lease and volume owned by instances on
    /// that host so nothing leaks while it is down.
    MarkHostFailed {
        /// Host id.
        host: u32,
    },
    /// A failed host heartbeated again after restarting.
    MarkHostRestarted {
        /// Host id.
        host: u32,
    },
    /// Register a compute-offload accelerator attached to `host`.
    RegisterAccel {
        /// Accelerator id.
        accel: u32,
        /// Host the accelerator is attached to.
        host: u32,
    },
}

impl AllocCommand {
    /// Serialize for the Raft log.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        match self {
            AllocCommand::RegisterNic {
                nic,
                host,
                capacity_mbps,
                backup,
            } => {
                b.push(1);
                b.extend_from_slice(&nic.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&capacity_mbps.to_le_bytes());
                b.push(*backup as u8);
            }
            AllocCommand::Assign {
                ip,
                host,
                nic,
                lease_mbps,
            } => {
                b.push(2);
                b.extend_from_slice(&ip.0);
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&nic.to_le_bytes());
                b.extend_from_slice(&lease_mbps.to_le_bytes());
            }
            AllocCommand::Unassign { ip } => {
                b.push(3);
                b.extend_from_slice(&ip.0);
            }
            AllocCommand::MarkFailed { nic } => {
                b.push(4);
                b.extend_from_slice(&nic.to_le_bytes());
            }
            AllocCommand::MarkRepaired { nic } => {
                b.push(5);
                b.extend_from_slice(&nic.to_le_bytes());
            }
            AllocCommand::RegisterSsd {
                ssd,
                host,
                capacity_blocks,
            } => {
                b.push(6);
                b.extend_from_slice(&ssd.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
                b.extend_from_slice(&capacity_blocks.to_le_bytes());
            }
            AllocCommand::AssignVolume {
                ip,
                ssd,
                base_block,
                blocks,
            } => {
                b.push(7);
                b.extend_from_slice(&ip.0);
                b.extend_from_slice(&ssd.to_le_bytes());
                b.extend_from_slice(&base_block.to_le_bytes());
                b.extend_from_slice(&blocks.to_le_bytes());
            }
            AllocCommand::ReleaseVolumes { ip } => {
                b.push(8);
                b.extend_from_slice(&ip.0);
            }
            AllocCommand::MarkHostFailed { host } => {
                b.push(9);
                b.extend_from_slice(&host.to_le_bytes());
            }
            AllocCommand::MarkHostRestarted { host } => {
                b.push(10);
                b.extend_from_slice(&host.to_le_bytes());
            }
            AllocCommand::RegisterAccel { accel, host } => {
                b.push(11);
                b.extend_from_slice(&accel.to_le_bytes());
                b.extend_from_slice(&host.to_le_bytes());
            }
        }
        b
    }

    /// Deserialize from the Raft log. `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<AllocCommand> {
        let u32_at = |o: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(o..o + 4)?.try_into().ok()?))
        };
        match *b.first()? {
            1 => Some(AllocCommand::RegisterNic {
                nic: u32_at(1)?,
                host: u32_at(5)?,
                capacity_mbps: u32_at(9)?,
                backup: *b.get(13)? != 0,
            }),
            2 => Some(AllocCommand::Assign {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
                host: u32_at(5)?,
                nic: u32_at(9)?,
                lease_mbps: u32_at(13)?,
            }),
            3 => Some(AllocCommand::Unassign {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
            }),
            4 => Some(AllocCommand::MarkFailed { nic: u32_at(1)? }),
            5 => Some(AllocCommand::MarkRepaired { nic: u32_at(1)? }),
            6 => Some(AllocCommand::RegisterSsd {
                ssd: u32_at(1)?,
                host: u32_at(5)?,
                capacity_blocks: u32_at(9)?,
            }),
            7 => Some(AllocCommand::AssignVolume {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
                ssd: u32_at(5)?,
                base_block: u32_at(9)?,
                blocks: u32_at(13)?,
            }),
            8 => Some(AllocCommand::ReleaseVolumes {
                ip: Ipv4Addr(b.get(1..5)?.try_into().ok()?),
            }),
            9 => Some(AllocCommand::MarkHostFailed { host: u32_at(1)? }),
            10 => Some(AllocCommand::MarkHostRestarted { host: u32_at(1)? }),
            11 => Some(AllocCommand::RegisterAccel {
                accel: u32_at(1)?,
                host: u32_at(5)?,
            }),
            _ => None,
        }
    }
}

/// Home-pod value meaning "place anywhere in the fleet".
pub const ANY_POD: u32 = u32::MAX;

/// A command applied to the replicated *fleet* allocator state.
///
/// This is the typed control-plane API: experiment harnesses and the
/// trace replayer drive the fleet exclusively through these commands, and
/// every state-changing command is appended to the fleet allocator's Raft
/// log before it is applied. Timestamps are embedded in the commands (not
/// taken from the applying replica) so replicas replaying the same log
/// compute byte-identical spill-traffic accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetCommand {
    /// Register pod `pod` (must arrive in index order) with its local
    /// capacity summary.
    RegisterPod {
        /// Pod index (sequential).
        pod: u32,
        /// Hosts in the pod.
        hosts: u32,
        /// vCPUs per host.
        vcpus_per_host: u32,
        /// Memory per host in GB.
        mem_gb_per_host: u32,
        /// Pod-wide allocatable NIC bandwidth in Mbit/s (backup excluded).
        nic_mbps: u64,
        /// Pod-wide allocatable SSD capacity (GB in the synthetic
        /// replay; a live pod registers whatever unit its SSDs lease in).
        ssd_cap: u64,
    },
    /// Register a cross-pod uplink; spill order is recomputed from the
    /// link set after every `AddLink`.
    AddLink {
        /// One endpoint pod.
        a: u32,
        /// Other endpoint pod.
        b: u32,
        /// One-way uplink latency in nanoseconds.
        latency_ns: u64,
    },
    /// Place a new instance; its id is the number of `CreateInstance`
    /// commands applied before it.
    CreateInstance {
        /// Simulation time of the request in nanoseconds.
        at: u64,
        /// vCPUs requested.
        vcpus: u32,
        /// Memory requested in GB.
        mem_gb: u32,
        /// SSD capacity requested (same unit the pods registered).
        ssd: u32,
        /// NIC bandwidth lease requested in Mbit/s.
        nic_mbps: u32,
        /// Pod whose hosts may run the instance, or [`ANY_POD`].
        home_pod: u32,
    },
    /// Change a live instance's device leases (its host does not move).
    ResizeInstance {
        /// Simulation time of the request in nanoseconds.
        at: u64,
        /// Fleet instance id.
        id: u64,
        /// New NIC bandwidth lease in Mbit/s.
        nic_mbps: u32,
        /// New SSD capacity (same unit the pods registered).
        ssd: u32,
    },
    /// Tear an instance down, releasing its host and device capacity and
    /// closing its spill-traffic accounting.
    KillInstance {
        /// Simulation time of the teardown in nanoseconds.
        at: u64,
        /// Fleet instance id.
        id: u64,
    },
    /// Read back the fleet-wide utilization report. Read-only: executed
    /// against the current state without an entry in the Raft log.
    QueryFleetState,
    /// Begin a live migration: reserve capacity for `id` on `dst_pod` and
    /// open a migration ticket. The instance keeps running on its source
    /// host while pre-copy rounds drain dirty state over `path`; the
    /// migration ends with a [`FinishMigration`](Self::FinishMigration).
    MigrateInstance {
        /// Simulation time of the request in nanoseconds.
        at: u64,
        /// Fleet instance id.
        id: u64,
        /// Target pod.
        dst_pod: u32,
        /// Transfer path for the pre-copy stream.
        path: TransferPath,
    },
    /// Close a migration ticket. `commit = true` lands the instance on the
    /// target (source capacity released); `commit = false` rolls back,
    /// releasing the target reservation while the instance keeps running
    /// on the source — the compensating half of exactly-once migration.
    FinishMigration {
        /// Simulation time of the decision in nanoseconds.
        at: u64,
        /// Fleet instance id.
        id: u64,
        /// Commit (land on target) vs abort (stay on source).
        commit: bool,
    },
}

impl FleetCommand {
    /// Serialize for the Raft log.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            FleetCommand::RegisterPod {
                pod,
                hosts,
                vcpus_per_host,
                mem_gb_per_host,
                nic_mbps,
                ssd_cap,
            } => {
                b.push(1);
                b.extend_from_slice(&pod.to_le_bytes());
                b.extend_from_slice(&hosts.to_le_bytes());
                b.extend_from_slice(&vcpus_per_host.to_le_bytes());
                b.extend_from_slice(&mem_gb_per_host.to_le_bytes());
                b.extend_from_slice(&nic_mbps.to_le_bytes());
                b.extend_from_slice(&ssd_cap.to_le_bytes());
            }
            FleetCommand::AddLink {
                a,
                b: pb,
                latency_ns,
            } => {
                b.push(2);
                b.extend_from_slice(&a.to_le_bytes());
                b.extend_from_slice(&pb.to_le_bytes());
                b.extend_from_slice(&latency_ns.to_le_bytes());
            }
            FleetCommand::CreateInstance {
                at,
                vcpus,
                mem_gb,
                ssd,
                nic_mbps,
                home_pod,
            } => {
                b.push(3);
                b.extend_from_slice(&at.to_le_bytes());
                b.extend_from_slice(&vcpus.to_le_bytes());
                b.extend_from_slice(&mem_gb.to_le_bytes());
                b.extend_from_slice(&ssd.to_le_bytes());
                b.extend_from_slice(&nic_mbps.to_le_bytes());
                b.extend_from_slice(&home_pod.to_le_bytes());
            }
            FleetCommand::ResizeInstance {
                at,
                id,
                nic_mbps,
                ssd,
            } => {
                b.push(4);
                b.extend_from_slice(&at.to_le_bytes());
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&nic_mbps.to_le_bytes());
                b.extend_from_slice(&ssd.to_le_bytes());
            }
            FleetCommand::KillInstance { at, id } => {
                b.push(5);
                b.extend_from_slice(&at.to_le_bytes());
                b.extend_from_slice(&id.to_le_bytes());
            }
            FleetCommand::QueryFleetState => b.push(6),
            FleetCommand::MigrateInstance {
                at,
                id,
                dst_pod,
                path,
            } => {
                b.push(7);
                b.extend_from_slice(&at.to_le_bytes());
                b.extend_from_slice(&id.to_le_bytes());
                b.extend_from_slice(&dst_pod.to_le_bytes());
                b.push(path.to_byte());
            }
            FleetCommand::FinishMigration { at, id, commit } => {
                b.push(8);
                b.extend_from_slice(&at.to_le_bytes());
                b.extend_from_slice(&id.to_le_bytes());
                b.push(*commit as u8);
            }
        }
        b
    }

    /// Deserialize from the Raft log. `None` on malformed input.
    pub fn decode(b: &[u8]) -> Option<FleetCommand> {
        let u32_at = |o: usize| -> Option<u32> {
            Some(u32::from_le_bytes(b.get(o..o + 4)?.try_into().ok()?))
        };
        let u64_at = |o: usize| -> Option<u64> {
            Some(u64::from_le_bytes(b.get(o..o + 8)?.try_into().ok()?))
        };
        match *b.first()? {
            1 => Some(FleetCommand::RegisterPod {
                pod: u32_at(1)?,
                hosts: u32_at(5)?,
                vcpus_per_host: u32_at(9)?,
                mem_gb_per_host: u32_at(13)?,
                nic_mbps: u64_at(17)?,
                ssd_cap: u64_at(25)?,
            }),
            2 => Some(FleetCommand::AddLink {
                a: u32_at(1)?,
                b: u32_at(5)?,
                latency_ns: u64_at(9)?,
            }),
            3 => Some(FleetCommand::CreateInstance {
                at: u64_at(1)?,
                vcpus: u32_at(9)?,
                mem_gb: u32_at(13)?,
                ssd: u32_at(17)?,
                nic_mbps: u32_at(21)?,
                home_pod: u32_at(25)?,
            }),
            4 => Some(FleetCommand::ResizeInstance {
                at: u64_at(1)?,
                id: u64_at(9)?,
                nic_mbps: u32_at(17)?,
                ssd: u32_at(21)?,
            }),
            5 => Some(FleetCommand::KillInstance {
                at: u64_at(1)?,
                id: u64_at(9)?,
            }),
            6 => Some(FleetCommand::QueryFleetState),
            7 => Some(FleetCommand::MigrateInstance {
                at: u64_at(1)?,
                id: u64_at(9)?,
                dst_pod: u32_at(17)?,
                path: TransferPath::from_byte(*b.get(21)?)?,
            }),
            8 => Some(FleetCommand::FinishMigration {
                at: u64_at(1)?,
                id: u64_at(9)?,
                commit: *b.get(17)? != 0,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_commands() {
        let cmds = vec![
            AllocCommand::RegisterNic {
                nic: 3,
                host: 1,
                capacity_mbps: 100_000,
                backup: true,
            },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(9),
                host: 2,
                nic: 0,
                lease_mbps: 10_000,
            },
            AllocCommand::Unassign {
                ip: Ipv4Addr::instance(9),
            },
            AllocCommand::MarkFailed { nic: 7 },
            AllocCommand::MarkRepaired { nic: 7 },
            AllocCommand::RegisterSsd {
                ssd: 2,
                host: 1,
                capacity_blocks: 4096,
            },
            AllocCommand::AssignVolume {
                ip: Ipv4Addr::instance(9),
                ssd: 2,
                base_block: 128,
                blocks: 256,
            },
            AllocCommand::ReleaseVolumes {
                ip: Ipv4Addr::instance(9),
            },
            AllocCommand::MarkHostFailed { host: 4 },
            AllocCommand::MarkHostRestarted { host: 4 },
            AllocCommand::RegisterAccel { accel: 1, host: 3 },
        ];
        for c in cmds {
            assert_eq!(AllocCommand::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(AllocCommand::decode(&[]).is_none());
        assert!(AllocCommand::decode(&[99]).is_none());
        assert!(AllocCommand::decode(&[1, 0]).is_none());
    }

    #[test]
    fn roundtrip_all_fleet_commands() {
        let cmds = vec![
            FleetCommand::RegisterPod {
                pod: 63,
                hosts: 8,
                vcpus_per_host: 96,
                mem_gb_per_host: 512,
                nic_mbps: 700_000,
                ssd_cap: 98_304,
            },
            FleetCommand::AddLink {
                a: 0,
                b: 63,
                latency_ns: 2_000,
            },
            FleetCommand::CreateInstance {
                at: u64::MAX / 3,
                vcpus: 16,
                mem_gb: 64,
                ssd: 512,
                nic_mbps: 10_000,
                home_pod: ANY_POD,
            },
            FleetCommand::ResizeInstance {
                at: 7,
                id: 100_001,
                nic_mbps: 45_000,
                ssd: 2_048,
            },
            FleetCommand::KillInstance { at: 9, id: 100_001 },
            FleetCommand::QueryFleetState,
            FleetCommand::MigrateInstance {
                at: 11,
                id: 42,
                dst_pod: 63,
                path: TransferPath::Cxl,
            },
            FleetCommand::MigrateInstance {
                at: 12,
                id: 43,
                dst_pod: 0,
                path: TransferPath::Nic,
            },
            FleetCommand::FinishMigration {
                at: 13,
                id: 42,
                commit: true,
            },
            FleetCommand::FinishMigration {
                at: 14,
                id: 43,
                commit: false,
            },
        ];
        for c in cmds {
            assert_eq!(FleetCommand::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn unknown_transfer_path_rejected() {
        let mut bytes = FleetCommand::MigrateInstance {
            at: 1,
            id: 2,
            dst_pod: 3,
            path: TransferPath::Nic,
        }
        .encode();
        *bytes.last_mut().unwrap() = 9;
        assert!(FleetCommand::decode(&bytes).is_none());
        assert!(TransferPath::from_byte(2).is_none());
    }

    #[test]
    fn malformed_fleet_rejected() {
        assert!(FleetCommand::decode(&[]).is_none());
        assert!(FleetCommand::decode(&[77]).is_none());
        assert!(FleetCommand::decode(&[3, 1, 2]).is_none());
        // Truncated RegisterPod: header plus only one u32.
        let mut short = FleetCommand::RegisterPod {
            pod: 0,
            hosts: 1,
            vcpus_per_host: 96,
            mem_gb_per_host: 512,
            nic_mbps: 1,
            ssd_cap: 1,
        }
        .encode();
        short.truncate(5);
        assert!(FleetCommand::decode(&short).is_none());
    }
}
