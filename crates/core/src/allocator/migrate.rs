//! Integer pre-copy model for live migration (ISSUE 10).
//!
//! The fleet command layer ([`super::fleet`]) decides *whether* an
//! instance migrates; this module models *how long* the transfer takes
//! over the two available paths:
//!
//! * **CXL** — the source writes dirty state into pooled memory the
//!   target maps directly. The path is short (no NIC serialization, no
//!   switch hop) and its bandwidth is the pool fabric's, far above any
//!   single NIC lease.
//! * **NIC** — classic TCP-style pre-copy over the datapath. The stream
//!   shares the source NIC's line rate with the instance's own traffic,
//!   so the usable bandwidth is the line rate minus the lease.
//!
//! Both paths run the same iterative pre-copy loop: round 1 moves the
//! full instance state, each later round moves what was dirtied while the
//! previous round was copying, and the loop exits into stop-and-copy when
//! the remainder fits under the pause threshold (or the round budget is
//! exhausted — a dirty rate above the path bandwidth never converges).
//!
//! Everything is integer arithmetic on `u128` intermediates: the model
//! runs inside the replicated command layer, so every replica — and every
//! re-run of `migrate_bench` — must compute byte-identical outcomes.

use super::command::TransferPath;

/// Result of one modeled migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// Transfer path used.
    pub path: TransferPath,
    /// Pre-copy rounds run (1 = the initial full copy, no iteration).
    pub rounds: u32,
    /// Bytes moved across all rounds plus stop-and-copy.
    pub bytes_moved: u64,
    /// Stop-and-copy pause (instance frozen), sim-time nanoseconds.
    pub pause_ns: u64,
    /// End-to-end transfer time including the pause, nanoseconds.
    pub total_ns: u64,
}

/// The pre-copy timing model. All rates are Mbit/s so they compose with
/// the lease units the allocator already uses; 1 Mbit/s moves exactly
/// 1/8000 byte per nanosecond, which keeps every conversion integral.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrecopyModel {
    /// CXL-path bandwidth, Mbit/s (the pool fabric; §2.1's ~64 GB/s).
    pub cxl_mbps: u64,
    /// NIC line rate, Mbit/s (the stream gets line rate minus lease).
    pub nic_line_mbps: u64,
    /// State dirtied per vCPU while the instance runs, Mbit/s.
    pub dirty_mbps_per_vcpu: u64,
    /// Remainder below which the loop stops and copies, bytes.
    pub stop_copy_threshold_bytes: u64,
    /// Pre-copy round budget; the loop force-exits into stop-and-copy
    /// when a high dirty rate would otherwise iterate forever.
    pub max_rounds: u32,
}

impl Default for PrecopyModel {
    fn default() -> Self {
        PrecopyModel {
            cxl_mbps: 512_000,
            nic_line_mbps: 100_000,
            dirty_mbps_per_vcpu: 2_000,
            stop_copy_threshold_bytes: 64 << 20,
            max_rounds: 8,
        }
    }
}

/// Nanoseconds to move `bytes` at `mbps` (1 Mbit/s = 1/8000 B/ns).
fn transfer_ns(bytes: u64, mbps: u64) -> u64 {
    let scaled = (bytes as u128).saturating_mul(8000);
    (scaled / (mbps.max(1) as u128)) as u64
}

/// Bytes dirtied while a copy lasting `ns` runs at `dirty_mbps`.
fn dirtied_bytes(ns: u64, dirty_mbps: u64) -> u64 {
    let scaled = (ns as u128).saturating_mul(dirty_mbps as u128);
    (scaled / 8000) as u64
}

impl PrecopyModel {
    /// Usable stream bandwidth for `path`, given the migrating instance's
    /// NIC lease (its own traffic keeps flowing during pre-copy).
    pub fn bandwidth_mbps(&self, path: TransferPath, lease_mbps: u32) -> u64 {
        match path {
            TransferPath::Cxl => self.cxl_mbps,
            TransferPath::Nic => self
                .nic_line_mbps
                .saturating_sub(lease_mbps as u64)
                .max(1_000),
        }
    }

    /// Model one migration of an instance with `vcpus`, `mem_gb` of
    /// state, and a `lease_mbps` NIC lease over `path`.
    pub fn run(
        &self,
        path: TransferPath,
        vcpus: u32,
        mem_gb: u32,
        lease_mbps: u32,
    ) -> MigrationOutcome {
        let bw_mbps = self.bandwidth_mbps(path, lease_mbps);
        let dirty_mbps = (vcpus as u64).saturating_mul(self.dirty_mbps_per_vcpu);
        let state_bytes = (mem_gb as u64).saturating_mul(1 << 30);
        let mut remaining = state_bytes.max(1);
        let mut rounds = 0u32;
        let mut bytes_moved = 0u64;
        let mut total_ns = 0u64;
        while rounds < self.max_rounds {
            rounds = rounds.saturating_add(1);
            let round_ns = transfer_ns(remaining, bw_mbps);
            bytes_moved = bytes_moved.saturating_add(remaining);
            total_ns = total_ns.saturating_add(round_ns);
            remaining = dirtied_bytes(round_ns, dirty_mbps);
            if remaining <= self.stop_copy_threshold_bytes {
                break;
            }
        }
        // Stop-and-copy: freeze the instance and move the remainder.
        let pause_ns = transfer_ns(remaining, bw_mbps);
        bytes_moved = bytes_moved.saturating_add(remaining);
        total_ns = total_ns.saturating_add(pause_ns);
        MigrationOutcome {
            path,
            rounds,
            bytes_moved,
            pause_ns,
            total_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_converges_faster_than_nic() {
        let m = PrecopyModel::default();
        let cxl = m.run(TransferPath::Cxl, 16, 64, 25_000);
        let nic = m.run(TransferPath::Nic, 16, 64, 25_000);
        assert!(cxl.total_ns < nic.total_ns, "{cxl:?} vs {nic:?}");
        assert!(cxl.pause_ns < nic.pause_ns);
        assert!(cxl.rounds <= nic.rounds);
        assert!(cxl.bytes_moved >= 64 << 30, "moves at least the state");
    }

    #[test]
    fn hot_instance_hits_the_round_budget() {
        let m = PrecopyModel::default();
        // 96 vCPUs dirty 192 Gbit/s — above the NIC path's ~90 Gbit/s —
        // so the loop cannot converge and must force stop-and-copy at
        // the round cap, while the CXL path still converges early.
        let out = m.run(TransferPath::Nic, 96, 32, 10_000);
        assert_eq!(out.rounds, m.max_rounds);
        assert!(out.pause_ns > 0);
        let cxl = m.run(TransferPath::Cxl, 96, 32, 10_000);
        assert!(cxl.rounds < m.max_rounds);
    }

    #[test]
    fn idle_instance_migrates_in_one_round() {
        let m = PrecopyModel::default();
        let out = m.run(TransferPath::Cxl, 0, 8, 1_000);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.pause_ns, 0, "nothing dirtied, nothing to freeze for");
        assert_eq!(out.bytes_moved, 8 << 30);
    }

    #[test]
    fn nic_path_never_divides_by_zero() {
        let m = PrecopyModel::default();
        // Lease above line rate clamps to the 1 Gbit/s floor.
        let out = m.run(TransferPath::Nic, 4, 1, u32::MAX);
        assert!(out.total_ns > 0);
        assert_eq!(m.bandwidth_mbps(TransferPath::Nic, u32::MAX), 1_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let m = PrecopyModel::default();
        let a = m.run(TransferPath::Nic, 8, 16, 20_000);
        let b = m.run(TransferPath::Nic, 8, 16, 20_000);
        assert_eq!(a, b);
    }
}
