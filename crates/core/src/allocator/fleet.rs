//! Fleet-scope allocation: topology-aware placement over many pods.
//!
//! The pod allocator ([`super::service`]) answers "which NIC / which SSD
//! inside this pod"; this module answers the question above it: *which pod
//! and host get the instance at all*, with device backends allowed to land
//! on a different, reachable pod when the home pod's devices strand.
//!
//! The split mirrors the paper's §2.3 fleet argument. Each pod contributes
//! a [`PodCapacity`] — the pod-local capacity layer, summarizing what the
//! pod allocator could serve — and the [`FleetAllocator`] places against
//! those summaries, consulting [`FleetTopology::spill_order`] (hop count,
//! then uplink latency, then pod index — deterministically tie-broken) to
//! pick the nearest neighbor pod whenever an instance's CPU/memory fit
//! locally but its chunky device request does not.
//!
//! Every state-changing [`FleetCommand`] flows through a replicated Raft
//! log, exactly like the pod allocator's [`super::command::AllocCommand`]
//! stream: the state machine ([`FleetState::apply`]) is a pure function of
//! the log, so replicas converge and [`FleetAllocator::consistent_with_log`]
//! can re-derive the live state from the committed prefix. Command
//! timestamps travel *in* the commands, never from the applying replica's
//! clock, so cross-pod spill-traffic accounting is identical on every
//! replica.

use oasis_cxl::topology::{CrossPodLink, FleetTopology, PodTopology, SpillHop};
use oasis_obs::MetricSink;
use oasis_raft::{RaftConfig, RaftNode};
use oasis_sim::time::{SimDuration, SimTime};

use super::command::{FleetCommand, TransferPath, ANY_POD};
use crate::error::FleetError;
use crate::metrics;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, Snapshottable};

/// The pod-local capacity layer: what one pod can still serve, as seen by
/// the fleet. CPU and memory are per-host (instances run on exactly one
/// host); NIC bandwidth and SSD capacity are pod-wide, because inside a
/// pod every device is reachable over CXL (§2.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PodCapacity {
    /// vCPUs per host.
    pub vcpus_per_host: u32,
    /// Memory per host, GB.
    pub mem_gb_per_host: u32,
    /// vCPUs in use, per host.
    pub host_vcpus_used: Vec<u32>,
    /// Memory in use, per host (GB).
    pub host_mem_used: Vec<u32>,
    /// Pod-wide allocatable NIC bandwidth, Mbit/s (backup NICs excluded).
    pub nic_mbps_cap: u64,
    /// NIC bandwidth currently leased, Mbit/s.
    pub nic_mbps_used: u64,
    /// Pod-wide allocatable SSD capacity.
    pub ssd_cap: u64,
    /// SSD capacity currently leased.
    pub ssd_used: u64,
}

impl PodCapacity {
    /// Number of hosts in the pod.
    pub fn hosts(&self) -> usize {
        self.host_vcpus_used.len()
    }

    /// Can this pod's pooled devices absorb another `(nic_mbps, ssd)`
    /// lease?
    pub fn devices_fit(&self, nic_mbps: u64, ssd: u64) -> bool {
        self.nic_mbps_used.saturating_add(nic_mbps) <= self.nic_mbps_cap
            && self.ssd_used.saturating_add(ssd) <= self.ssd_cap
    }

    /// Post-placement CPU/memory slack of `host` if it took the request,
    /// or `None` if the request does not fit. The slack pair is the
    /// best-fit key: smaller slack packs tighter.
    fn host_slack(&self, host: usize, vcpus: u32, mem_gb: u32) -> Option<(u32, u32)> {
        let vs = self
            .vcpus_per_host
            .checked_sub(self.host_vcpus_used[host].checked_add(vcpus)?)?;
        let ms = self
            .mem_gb_per_host
            .checked_sub(self.host_mem_used[host].checked_add(mem_gb)?)?;
        Some((vs, ms))
    }
}

/// One live instance in the fleet state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetInstance {
    /// vCPUs held.
    pub vcpus: u32,
    /// Memory held, GB.
    pub mem_gb: u32,
    /// SSD capacity held.
    pub ssd: u32,
    /// NIC bandwidth held, Mbit/s.
    pub nic_mbps: u32,
    /// Pod whose host runs the instance.
    pub pod: u32,
    /// Host index within `pod`.
    pub host: u32,
    /// Pod serving the device backends (== `pod` unless spilled).
    pub device_pod: u32,
    /// When the current lease epoch started (command time, ns). Reset on
    /// resize so spill traffic is integrated rate-by-rate.
    pub placed_at: u64,
}

/// An open migration ticket: the target-side reservation made by
/// `MigrateInstance` and released by exactly one `FinishMigration` (or a
/// `KillInstance` racing the migration). While the ticket is open the
/// instance's resources are held on *both* pods, which is what makes
/// commit and rollback both safe: neither side's capacity can be given
/// away mid-copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationTicket {
    /// Target pod.
    pub dst_pod: u32,
    /// Reserved host index within the target pod.
    pub dst_host: u32,
    /// Transfer path of the pre-copy stream.
    pub path: TransferPath,
    /// When the ticket opened (command time, ns).
    pub opened_at: u64,
}

/// Per-pod utilization line in a [`FleetStateReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PodUtilization {
    /// Pod index.
    pub pod: usize,
    /// Hosts in the pod.
    pub hosts: usize,
    /// vCPUs in use across the pod.
    pub vcpus_used: u64,
    /// vCPU capacity across the pod.
    pub vcpus_cap: u64,
    /// NIC bandwidth leased, Mbit/s.
    pub nic_mbps_used: u64,
    /// NIC bandwidth capacity, Mbit/s.
    pub nic_mbps_cap: u64,
    /// SSD capacity leased.
    pub ssd_used: u64,
    /// SSD capacity.
    pub ssd_cap: u64,
    /// Instances whose device backends this pod serves.
    pub placements: u64,
}

/// Answer to [`FleetCommand::QueryFleetState`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStateReport {
    /// Per-pod utilization.
    pub pods: Vec<PodUtilization>,
    /// Instances currently live.
    pub live: u64,
    /// `CreateInstance` commands that placed.
    pub placed: u64,
    /// `CreateInstance` commands that found no capacity.
    pub rejected: u64,
    /// Instances killed.
    pub killed: u64,
    /// Placements whose devices spilled to a neighbor pod.
    pub spill_placements: u64,
    /// Closed-out cross-pod spill traffic, bytes.
    pub spill_bytes: u64,
}

/// Outcome of one applied (or read-only) fleet command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetResponse {
    /// The pod was registered.
    PodRegistered {
        /// Its index.
        pod: usize,
    },
    /// The link was registered and spill orders recomputed.
    LinkAdded,
    /// The instance was placed.
    Created {
        /// Fleet instance id.
        id: u64,
        /// Pod whose host runs it.
        pod: usize,
        /// Host index within that pod.
        host: usize,
        /// Pod serving its devices (== `pod` unless spilled).
        device_pod: usize,
    },
    /// No host in the home scope could take the instance.
    Rejected,
    /// The instance's device leases were changed in place.
    Resized {
        /// Fleet instance id.
        id: u64,
    },
    /// The device pod could not absorb the new leases; nothing changed.
    ResizeRejected {
        /// Fleet instance id.
        id: u64,
    },
    /// The instance was torn down.
    Killed {
        /// Fleet instance id.
        id: u64,
    },
    /// A migration ticket was opened; the instance's resources are now
    /// reserved on the target pod while it keeps running on the source.
    MigrationStarted {
        /// Fleet instance id.
        id: u64,
        /// Target pod.
        dst_pod: usize,
        /// Reserved host within the target pod.
        dst_host: usize,
    },
    /// The migration ticket closed: `committed` tells whether the
    /// instance landed on the target or rolled back to the source.
    MigrationFinished {
        /// Fleet instance id.
        id: u64,
        /// Committed (target) vs aborted (source).
        committed: bool,
    },
    /// The utilization report.
    State(FleetStateReport),
}

/// Bytes a `nic_mbps` lease moves across an uplink over `[from, to]` ns.
/// 1 Mbit/s × 1 ns = 1e6 / 1e9 bits = 1/8000 bytes; integer arithmetic so
/// every replica computes the same value.
fn cross_pod_bytes(nic_mbps: u32, from_ns: u64, to_ns: u64) -> u64 {
    ((nic_mbps as u128) * (to_ns.saturating_sub(from_ns) as u128) / 8000) as u64
}

/// The replicated fleet state machine: a pure function of the
/// [`FleetCommand`] log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetState {
    /// Pod-local capacity layers, by pod index.
    pub pods: Vec<PodCapacity>,
    /// Registered links as `(a, b, latency_ns)`.
    links: Vec<(u32, u32, u64)>,
    /// `spill[p]` = neighbor pods of `p` in spill preference order,
    /// recomputed from the link set (via [`FleetTopology::spill_order`])
    /// after every `AddLink`.
    spill: Vec<Vec<SpillHop>>,
    /// Instance slots by fleet id (`None` = rejected or killed).
    pub instances: Vec<Option<FleetInstance>>,
    /// Placements that succeeded.
    pub placed: u64,
    /// Placements that found no capacity.
    pub rejected: u64,
    /// Instances killed.
    pub killed: u64,
    /// Resizes that succeeded.
    pub resizes: u64,
    /// Resizes refused for lack of device capacity.
    pub resize_rejections: u64,
    /// Per *home* pod: placements whose devices spilled to a neighbor.
    pub spill_placements: Vec<u64>,
    /// Per *home* pod: closed-out cross-pod traffic, bytes.
    pub spill_bytes: Vec<u64>,
    /// Per *device* pod: placements it serves devices for.
    pub pod_placements: Vec<u64>,
    /// Open migration tickets, sorted by instance id (a sorted `Vec`
    /// keeps `Eq` and iteration deterministic).
    pub migrations: Vec<(u64, MigrationTicket)>,
    /// Migration tickets opened.
    pub migrations_started: u64,
    /// Migrations committed onto their target pod.
    pub migrations_committed: u64,
    /// Migrations rolled back onto their source pod.
    pub migrations_aborted: u64,
}

/// A pass-2 spill candidate: the `(hops, vcpu slack, mem slack)` ranking
/// key and the `(pod, host, device_pod)` placement it ranks.
type SpillCandidate = ((u32, u32, u32), (usize, usize, usize));

impl FleetState {
    /// The topology this state implies — pods plus registered uplinks —
    /// which placement consults for spill ordering.
    pub fn topology(&self) -> FleetTopology {
        FleetTopology {
            pods: self
                .pods
                .iter()
                .map(|p| PodTopology::production(p.hosts(), 0))
                .collect(),
            links: self
                .links
                .iter()
                .map(|&(a, b, ns)| CrossPodLink {
                    a: a as usize,
                    b: b as usize,
                    latency: SimDuration::from_nanos(ns),
                })
                .collect(),
        }
    }

    /// Is there already a link between `a` and `b` (either direction)?
    pub fn has_link(&self, a: usize, b: usize) -> bool {
        self.links.iter().any(|&(la, lb, _)| {
            (la as usize, lb as usize) == (a, b) || (la as usize, lb as usize) == (b, a)
        })
    }

    /// Is `id` a live instance?
    pub fn is_live(&self, id: u64) -> bool {
        matches!(self.instances.get(id as usize), Some(Some(_)))
    }

    /// The open migration ticket for `id`, if any.
    pub fn migration(&self, id: u64) -> Option<&MigrationTicket> {
        self.migrations
            .iter()
            .find(|&&(mid, _)| mid == id)
            .map(|(_, t)| t)
    }

    /// The host a migration of `inst` to `dst_pod` would reserve (best-fit
    /// by post-reservation slack), or `None` when the pod cannot take the
    /// instance's CPU/memory/devices — or is the pod it already runs on.
    /// Shared by command validation and [`apply`](Self::apply), so the
    /// two cannot disagree about feasibility.
    fn migration_fit(&self, inst: &FleetInstance, dst_pod: usize) -> Option<usize> {
        if dst_pod == inst.pod as usize || dst_pod >= self.pods.len() {
            return None;
        }
        let pc = &self.pods[dst_pod];
        if !pc.devices_fit(inst.nic_mbps as u64, inst.ssd as u64) {
            return None;
        }
        let mut best: Option<((u32, u32), usize)> = None;
        for h in 0..pc.hosts() {
            if let Some(key) = pc.host_slack(h, inst.vcpus, inst.mem_gb) {
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, h));
                }
            }
        }
        best.map(|(_, h)| h)
    }

    /// Release the target-side reservation held by an open ticket.
    fn release_ticket(&mut self, inst: &FleetInstance, ticket: &MigrationTicket) {
        let pc = &mut self.pods[ticket.dst_pod as usize];
        pc.host_vcpus_used[ticket.dst_host as usize] -= inst.vcpus;
        pc.host_mem_used[ticket.dst_host as usize] -= inst.mem_gb;
        pc.nic_mbps_used -= inst.nic_mbps as u64;
        pc.ssd_used -= inst.ssd as u64;
    }

    fn recompute_spill(&mut self) {
        let topo = self.topology();
        self.spill = (0..self.pods.len()).map(|p| topo.spill_order(p)).collect();
    }

    /// Deterministic two-pass placement. Pass 1: a host whose *own* pod
    /// can serve the devices, best-fit by `(vcpu slack, mem slack)` with
    /// the first minimum winning — exactly the pod-scoped policy the trace
    /// replayer always used. Pass 2 (only when pass 1 strands): a host
    /// whose CPU/memory fit, with devices on the first pod in its home
    /// pod's spill order that can serve them; candidates ranked by
    /// `(hops, vcpu slack, mem slack)`, first minimum wins.
    fn place(
        &self,
        vcpus: u32,
        mem_gb: u32,
        ssd: u32,
        nic_mbps: u32,
        home_pod: Option<usize>,
    ) -> Option<(usize, usize, usize)> {
        let in_scope = |p: usize| -> bool { home_pod.is_none_or(|hp| hp == p) };
        let mut best: Option<((u32, u32), (usize, usize))> = None;
        for (p, pc) in self.pods.iter().enumerate() {
            if !in_scope(p) || !pc.devices_fit(nic_mbps as u64, ssd as u64) {
                continue;
            }
            for h in 0..pc.hosts() {
                if let Some(key) = pc.host_slack(h, vcpus, mem_gb) {
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, (p, h)));
                    }
                }
            }
        }
        if let Some((_, (p, h))) = best {
            return Some((p, h, p));
        }
        // Pass 2: spill device backends to the nearest feasible neighbor.
        let mut best: Option<SpillCandidate> = None;
        for (p, pc) in self.pods.iter().enumerate() {
            if !in_scope(p) {
                continue;
            }
            let Some(hop) = self.spill[p]
                .iter()
                .find(|hop| self.pods[hop.pod].devices_fit(nic_mbps as u64, ssd as u64))
            else {
                continue;
            };
            for h in 0..pc.hosts() {
                if let Some((vs, ms)) = pc.host_slack(h, vcpus, mem_gb) {
                    let key = (hop.hops, vs, ms);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, (p, h, hop.pod)));
                    }
                }
            }
        }
        best.map(|(_, placed)| placed)
    }

    /// Close out the spill-traffic epoch `[inst.placed_at, now]` for a
    /// spilled instance.
    fn flush_spill(&mut self, inst: &FleetInstance, now: u64) {
        if inst.device_pod != inst.pod {
            let b = &mut self.spill_bytes[inst.pod as usize];
            *b = b.saturating_add(cross_pod_bytes(inst.nic_mbps, inst.placed_at, now));
        }
    }

    /// Apply a committed command. Infallible and deterministic: commands
    /// are validated before they are proposed, and a malformed or stale
    /// command (which a correct proposer never logs) degrades to a
    /// `Rejected` outcome rather than diverging replicas.
    pub fn apply(&mut self, cmd: &FleetCommand) -> FleetResponse {
        match *cmd {
            FleetCommand::RegisterPod {
                pod: _,
                hosts,
                vcpus_per_host,
                mem_gb_per_host,
                nic_mbps,
                ssd_cap,
            } => {
                self.pods.push(PodCapacity {
                    vcpus_per_host,
                    mem_gb_per_host,
                    host_vcpus_used: vec![0; hosts as usize],
                    host_mem_used: vec![0; hosts as usize],
                    nic_mbps_cap: nic_mbps,
                    nic_mbps_used: 0,
                    ssd_cap,
                    ssd_used: 0,
                });
                self.spill_placements.push(0);
                self.spill_bytes.push(0);
                self.pod_placements.push(0);
                self.recompute_spill();
                FleetResponse::PodRegistered {
                    pod: self.pods.len() - 1,
                }
            }
            FleetCommand::AddLink { a, b, latency_ns } => {
                self.links.push((a, b, latency_ns));
                self.recompute_spill();
                FleetResponse::LinkAdded
            }
            FleetCommand::CreateInstance {
                at,
                vcpus,
                mem_gb,
                ssd,
                nic_mbps,
                home_pod,
            } => {
                let home = (home_pod != ANY_POD).then_some(home_pod as usize);
                let id = self.instances.len() as u64;
                match self.place(vcpus, mem_gb, ssd, nic_mbps, home) {
                    Some((pod, host, device_pod)) => {
                        let pc = &mut self.pods[pod];
                        pc.host_vcpus_used[host] += vcpus;
                        pc.host_mem_used[host] += mem_gb;
                        let dc = &mut self.pods[device_pod];
                        dc.nic_mbps_used = dc.nic_mbps_used.saturating_add(nic_mbps as u64);
                        dc.ssd_used = dc.ssd_used.saturating_add(ssd as u64);
                        self.instances.push(Some(FleetInstance {
                            vcpus,
                            mem_gb,
                            ssd,
                            nic_mbps,
                            pod: pod as u32,
                            host: host as u32,
                            device_pod: device_pod as u32,
                            placed_at: at,
                        }));
                        self.placed += 1;
                        self.pod_placements[device_pod] += 1;
                        if device_pod != pod {
                            self.spill_placements[pod] += 1;
                        }
                        FleetResponse::Created {
                            id,
                            pod,
                            host,
                            device_pod,
                        }
                    }
                    None => {
                        self.instances.push(None);
                        self.rejected += 1;
                        FleetResponse::Rejected
                    }
                }
            }
            FleetCommand::ResizeInstance {
                at,
                id,
                nic_mbps,
                ssd,
            } => {
                let Some(Some(inst)) = self.instances.get(id as usize).copied() else {
                    return FleetResponse::Rejected;
                };
                if self.migration(id).is_some() {
                    // The ticket's target reservation was sized for the
                    // current leases; repricing mid-copy would desync it.
                    self.resize_rejections += 1;
                    return FleetResponse::ResizeRejected { id };
                }
                let dp = inst.device_pod as usize;
                let dc = &self.pods[dp];
                let nic_ok = (dc.nic_mbps_used - inst.nic_mbps as u64)
                    .saturating_add(nic_mbps as u64)
                    <= dc.nic_mbps_cap;
                let ssd_ok =
                    (dc.ssd_used - inst.ssd as u64).saturating_add(ssd as u64) <= dc.ssd_cap;
                if !(nic_ok && ssd_ok) {
                    self.resize_rejections += 1;
                    return FleetResponse::ResizeRejected { id };
                }
                // Close the old-rate spill epoch before the rate changes.
                self.flush_spill(&inst, at);
                let dc = &mut self.pods[dp];
                dc.nic_mbps_used =
                    (dc.nic_mbps_used - inst.nic_mbps as u64).saturating_add(nic_mbps as u64);
                dc.ssd_used = (dc.ssd_used - inst.ssd as u64).saturating_add(ssd as u64);
                if let Some(Some(inst)) = self.instances.get_mut(id as usize) {
                    inst.nic_mbps = nic_mbps;
                    inst.ssd = ssd;
                    inst.placed_at = at;
                }
                self.resizes += 1;
                FleetResponse::Resized { id }
            }
            FleetCommand::KillInstance { at, id } => {
                let Some(slot) = self.instances.get_mut(id as usize) else {
                    return FleetResponse::Rejected;
                };
                let Some(inst) = slot.take() else {
                    return FleetResponse::Rejected;
                };
                self.flush_spill(&inst, at);
                let pc = &mut self.pods[inst.pod as usize];
                pc.host_vcpus_used[inst.host as usize] -= inst.vcpus;
                pc.host_mem_used[inst.host as usize] -= inst.mem_gb;
                let dc = &mut self.pods[inst.device_pod as usize];
                dc.nic_mbps_used -= inst.nic_mbps as u64;
                dc.ssd_used -= inst.ssd as u64;
                // A kill racing an open migration also rolls back the
                // target reservation — nothing may leak on either side.
                if let Some(pos) = self.migrations.iter().position(|&(mid, _)| mid == id) {
                    let (_, ticket) = self.migrations.remove(pos);
                    self.release_ticket(&inst, &ticket);
                    self.migrations_aborted += 1;
                }
                self.killed += 1;
                FleetResponse::Killed { id }
            }
            FleetCommand::MigrateInstance {
                at,
                id,
                dst_pod,
                path,
            } => {
                let Some(Some(inst)) = self.instances.get(id as usize).copied() else {
                    return FleetResponse::Rejected;
                };
                if self.migration(id).is_some() {
                    return FleetResponse::Rejected;
                }
                let Some(dst_host) = self.migration_fit(&inst, dst_pod as usize) else {
                    return FleetResponse::Rejected;
                };
                let pc = &mut self.pods[dst_pod as usize];
                pc.host_vcpus_used[dst_host] += inst.vcpus;
                pc.host_mem_used[dst_host] += inst.mem_gb;
                pc.nic_mbps_used = pc.nic_mbps_used.saturating_add(inst.nic_mbps as u64);
                pc.ssd_used = pc.ssd_used.saturating_add(inst.ssd as u64);
                let ticket = MigrationTicket {
                    dst_pod,
                    dst_host: dst_host as u32,
                    path,
                    opened_at: at,
                };
                let pos = self.migrations.partition_point(|&(mid, _)| mid < id);
                self.migrations.insert(pos, (id, ticket));
                self.migrations_started += 1;
                FleetResponse::MigrationStarted {
                    id,
                    dst_pod: dst_pod as usize,
                    dst_host,
                }
            }
            FleetCommand::FinishMigration { at, id, commit } => {
                // Exactly-once: the ticket is removed before anything is
                // released, so a replayed FinishMigration finds no ticket
                // and degrades to Rejected instead of double-releasing.
                let Some(pos) = self.migrations.iter().position(|&(mid, _)| mid == id) else {
                    return FleetResponse::Rejected;
                };
                let (_, ticket) = self.migrations.remove(pos);
                let Some(Some(inst)) = self.instances.get(id as usize).copied() else {
                    return FleetResponse::Rejected;
                };
                if commit {
                    // Land on the target: close the source's spill epoch,
                    // release every source-side resource, re-home.
                    self.flush_spill(&inst, at);
                    let sp = &mut self.pods[inst.pod as usize];
                    sp.host_vcpus_used[inst.host as usize] -= inst.vcpus;
                    sp.host_mem_used[inst.host as usize] -= inst.mem_gb;
                    let sd = &mut self.pods[inst.device_pod as usize];
                    sd.nic_mbps_used -= inst.nic_mbps as u64;
                    sd.ssd_used -= inst.ssd as u64;
                    if let Some(Some(i)) = self.instances.get_mut(id as usize) {
                        i.pod = ticket.dst_pod;
                        i.host = ticket.dst_host;
                        i.device_pod = ticket.dst_pod;
                        i.placed_at = at;
                    }
                    self.pod_placements[ticket.dst_pod as usize] += 1;
                    self.migrations_committed += 1;
                } else {
                    // Roll back: drop the target reservation; the source
                    // side never changed, so the instance just keeps
                    // running where it was.
                    self.release_ticket(&inst, &ticket);
                    self.migrations_aborted += 1;
                }
                FleetResponse::MigrationFinished {
                    id,
                    committed: commit,
                }
            }
            FleetCommand::QueryFleetState => FleetResponse::State(self.report()),
        }
    }

    /// The fleet-wide utilization report.
    pub fn report(&self) -> FleetStateReport {
        FleetStateReport {
            pods: self
                .pods
                .iter()
                .enumerate()
                .map(|(p, pc)| PodUtilization {
                    pod: p,
                    hosts: pc.hosts(),
                    vcpus_used: pc.host_vcpus_used.iter().map(|&v| v as u64).sum(),
                    vcpus_cap: pc.hosts() as u64 * pc.vcpus_per_host as u64,
                    nic_mbps_used: pc.nic_mbps_used,
                    nic_mbps_cap: pc.nic_mbps_cap,
                    ssd_used: pc.ssd_used,
                    ssd_cap: pc.ssd_cap,
                    placements: self.pod_placements[p],
                })
                .collect(),
            live: self.instances.iter().flatten().count() as u64,
            placed: self.placed,
            rejected: self.rejected,
            killed: self.killed,
            spill_placements: self.spill_placements.iter().sum(),
            spill_bytes: self.spill_bytes.iter().sum(),
        }
    }

    /// Export the fleet counters through the `core.fleet_*` registry.
    /// Spill placements/bytes are tagged by *home* pod, placements by
    /// *device* pod; zero-valued tags are skipped, like the engine
    /// exporters do.
    pub fn export_metrics(&self, sink: &mut MetricSink) {
        sink.set(metrics::FLEET_PODS, 0, self.pods.len() as u64);
        sink.set(metrics::FLEET_LINKS, 0, self.links.len() as u64);
        sink.set(metrics::FLEET_INSTANCES_PLACED, 0, self.placed);
        sink.set(metrics::FLEET_PLACEMENTS_REJECTED, 0, self.rejected);
        sink.set(metrics::FLEET_INSTANCES_KILLED, 0, self.killed);
        sink.set(metrics::FLEET_RESIZES, 0, self.resizes);
        sink.set(metrics::FLEET_RESIZES_REJECTED, 0, self.resize_rejections);
        for (p, &v) in self.spill_placements.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_SPILL_PLACEMENTS, p as u32, v);
            }
        }
        for (p, &v) in self.spill_bytes.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_SPILL_BYTES, p as u32, v);
            }
        }
        for (p, &v) in self.pod_placements.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_POD_PLACEMENTS, p as u32, v);
            }
        }
        // Zero-valued migration tallies are skipped so runs that never
        // migrate keep their exports (and figure JSON) byte-identical.
        for (name, v) in [
            (metrics::FLEET_MIGRATIONS_STARTED, self.migrations_started),
            (
                metrics::FLEET_MIGRATIONS_COMMITTED,
                self.migrations_committed,
            ),
            (metrics::FLEET_MIGRATIONS_ABORTED, self.migrations_aborted),
        ] {
            if v != 0 {
                sink.set(name, 0, v);
            }
        }
    }
}

impl Snapshottable for FleetState {
    /// Byte-stable by construction: every collection is written in its
    /// (deterministic) storage order; `spill` is derived from the link
    /// set and recomputed on restore instead of being serialized.
    fn snapshot_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.pods.len() as u64);
        for pc in &self.pods {
            w.put_u32(pc.vcpus_per_host);
            w.put_u32(pc.mem_gb_per_host);
            w.put_u64(pc.host_vcpus_used.len() as u64);
            for &v in &pc.host_vcpus_used {
                w.put_u32(v);
            }
            for &m in &pc.host_mem_used {
                w.put_u32(m);
            }
            w.put_u64(pc.nic_mbps_cap);
            w.put_u64(pc.nic_mbps_used);
            w.put_u64(pc.ssd_cap);
            w.put_u64(pc.ssd_used);
        }
        w.put_u64(self.links.len() as u64);
        for &(a, b, ns) in &self.links {
            w.put_u32(a);
            w.put_u32(b);
            w.put_u64(ns);
        }
        w.put_u64(self.instances.len() as u64);
        for slot in &self.instances {
            w.put_bool(slot.is_some());
            if let Some(i) = slot {
                w.put_u32(i.vcpus);
                w.put_u32(i.mem_gb);
                w.put_u32(i.ssd);
                w.put_u32(i.nic_mbps);
                w.put_u32(i.pod);
                w.put_u32(i.host);
                w.put_u32(i.device_pod);
                w.put_u64(i.placed_at);
            }
        }
        for v in [
            self.placed,
            self.rejected,
            self.killed,
            self.resizes,
            self.resize_rejections,
        ] {
            w.put_u64(v);
        }
        for table in [
            &self.spill_placements,
            &self.spill_bytes,
            &self.pod_placements,
        ] {
            w.put_u64(table.len() as u64);
            for &v in table.iter() {
                w.put_u64(v);
            }
        }
        w.put_u64(self.migrations.len() as u64);
        for &(id, t) in &self.migrations {
            w.put_u64(id);
            w.put_u32(t.dst_pod);
            w.put_u32(t.dst_host);
            w.put_u8(t.path.to_byte());
            w.put_u64(t.opened_at);
        }
        for v in [
            self.migrations_started,
            self.migrations_committed,
            self.migrations_aborted,
        ] {
            w.put_u64(v);
        }
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.count("fleet pod count")?;
        let mut pods = Vec::with_capacity(n);
        for _ in 0..n {
            let vcpus_per_host = r.u32("fleet pod vcpus/host")?;
            let mem_gb_per_host = r.u32("fleet pod mem/host")?;
            let hosts = r.count("fleet pod host count")?;
            let mut host_vcpus_used = Vec::with_capacity(hosts);
            for _ in 0..hosts {
                host_vcpus_used.push(r.u32("fleet pod host vcpus")?);
            }
            let mut host_mem_used = Vec::with_capacity(hosts);
            for _ in 0..hosts {
                host_mem_used.push(r.u32("fleet pod host mem")?);
            }
            pods.push(PodCapacity {
                vcpus_per_host,
                mem_gb_per_host,
                host_vcpus_used,
                host_mem_used,
                nic_mbps_cap: r.u64("fleet pod nic cap")?,
                nic_mbps_used: r.u64("fleet pod nic used")?,
                ssd_cap: r.u64("fleet pod ssd cap")?,
                ssd_used: r.u64("fleet pod ssd used")?,
            });
        }
        self.pods = pods;
        let n = r.count("fleet link count")?;
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.u32("fleet link a")?;
            let b = r.u32("fleet link b")?;
            let ns = r.u64("fleet link latency")?;
            links.push((a, b, ns));
        }
        self.links = links;
        let n = r.count("fleet instance count")?;
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            instances.push(if r.bool("fleet instance present")? {
                Some(FleetInstance {
                    vcpus: r.u32("fleet instance vcpus")?,
                    mem_gb: r.u32("fleet instance mem")?,
                    ssd: r.u32("fleet instance ssd")?,
                    nic_mbps: r.u32("fleet instance nic")?,
                    pod: r.u32("fleet instance pod")?,
                    host: r.u32("fleet instance host")?,
                    device_pod: r.u32("fleet instance device pod")?,
                    placed_at: r.u64("fleet instance placed_at")?,
                })
            } else {
                None
            });
        }
        self.instances = instances;
        self.placed = r.u64("fleet placed")?;
        self.rejected = r.u64("fleet rejected")?;
        self.killed = r.u64("fleet killed")?;
        self.resizes = r.u64("fleet resizes")?;
        self.resize_rejections = r.u64("fleet resize rejections")?;
        let mut tables: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for table in tables.iter_mut() {
            let n = r.u64("fleet table length")?;
            for _ in 0..n {
                table.push(r.u64("fleet table entry")?);
            }
        }
        let [spill_placements, spill_bytes, pod_placements] = tables;
        self.spill_placements = spill_placements;
        self.spill_bytes = spill_bytes;
        self.pod_placements = pod_placements;
        let n = r.count("fleet migration count")?;
        let mut migrations = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.u64("fleet migration id")?;
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::Corrupt("fleet migration order"));
            }
            prev = Some(id);
            let dst_pod = r.u32("fleet migration dst pod")?;
            let dst_host = r.u32("fleet migration dst host")?;
            let path = TransferPath::from_byte(r.u8("fleet migration path")?)
                .ok_or(SnapshotError::Corrupt("fleet migration path"))?;
            let opened_at = r.u64("fleet migration opened_at")?;
            migrations.push((
                id,
                MigrationTicket {
                    dst_pod,
                    dst_host,
                    path,
                    opened_at,
                },
            ));
        }
        self.migrations = migrations;
        self.migrations_started = r.u64("fleet migrations started")?;
        self.migrations_committed = r.u64("fleet migrations committed")?;
        self.migrations_aborted = r.u64("fleet migrations aborted")?;
        self.recompute_spill();
        Ok(())
    }
}

/// The fleet-level allocator service: validates typed commands, runs them
/// through a Raft log, and applies the committed prefix to a
/// [`FleetState`]. Single-replica by default (commands commit
/// immediately), with the multi-node convergence covered in
/// [`super::replicated`].
pub struct FleetAllocator {
    /// The replicated state (readable for reports and tests).
    pub state: FleetState,
    raft: RaftNode,
    /// Compaction point: the state a restored checkpoint started from.
    /// [`consistent_with_log`](Self::consistent_with_log) replays the log
    /// on top of this base, so the invariant keeps holding across
    /// checkpoint/resume even though the pre-checkpoint log is gone.
    base: FleetState,
}

impl Default for FleetAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetAllocator {
    /// A fleet allocator backed by a single-replica Raft group.
    pub fn new() -> Self {
        let mut raft = RaftNode::new(0, vec![], RaftConfig::default(), 0xF1EE7);
        // A single-node group elects itself on the first tick.
        raft.tick(SimTime::from_millis(25));
        assert!(raft.is_leader());
        FleetAllocator {
            state: FleetState::default(),
            raft,
            base: FleetState::default(),
        }
    }

    /// Write the applied state into `w` as a checkpoint (log-compaction
    /// point).
    pub fn checkpoint(&self, w: &mut SnapshotWriter) {
        self.state.snapshot_state(w);
    }

    /// Install a checkpoint written by [`checkpoint`](Self::checkpoint):
    /// the restored state becomes both the live state and the replay base.
    /// Only meaningful on a freshly created allocator (empty log).
    pub fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.state.restore_state(r)?;
        self.base = self.state.clone();
        Ok(())
    }

    /// Execute one control-plane command at simulation time `now`:
    /// validate it against the live state, append it to the log (reads are
    /// not logged), apply everything committed, and return the outcome.
    pub fn execute(
        &mut self,
        now: SimTime,
        cmd: &FleetCommand,
    ) -> Result<FleetResponse, FleetError> {
        match *cmd {
            FleetCommand::QueryFleetState => {
                return Ok(FleetResponse::State(self.state.report()));
            }
            FleetCommand::RegisterPod { pod, .. } => {
                if pod as usize != self.state.pods.len() {
                    return Err(FleetError::NoSuchPod(pod as usize));
                }
            }
            FleetCommand::AddLink { a, b, .. } => {
                let (a, b) = (a as usize, b as usize);
                if a == b {
                    return Err(FleetError::SelfLink { pod: a });
                }
                for p in [a, b] {
                    if p >= self.state.pods.len() {
                        return Err(FleetError::NoSuchPod(p));
                    }
                }
                if self.state.has_link(a, b) {
                    return Err(FleetError::DuplicateLink {
                        a: a.min(b),
                        b: a.max(b),
                    });
                }
            }
            FleetCommand::CreateInstance { home_pod, .. } => {
                if home_pod != ANY_POD && home_pod as usize >= self.state.pods.len() {
                    return Err(FleetError::NoSuchPod(home_pod as usize));
                }
            }
            FleetCommand::ResizeInstance { id, .. } => {
                if !self.state.is_live(id) {
                    return Err(FleetError::NoSuchInstance(id));
                }
                if self.state.migration(id).is_some() {
                    return Err(FleetError::MigrationInProgress(id));
                }
            }
            FleetCommand::KillInstance { id, .. } => {
                if !self.state.is_live(id) {
                    return Err(FleetError::NoSuchInstance(id));
                }
            }
            FleetCommand::MigrateInstance { id, dst_pod, .. } => {
                let Some(Some(inst)) = self.state.instances.get(id as usize).copied() else {
                    return Err(FleetError::NoSuchInstance(id));
                };
                if dst_pod as usize >= self.state.pods.len() {
                    return Err(FleetError::NoSuchPod(dst_pod as usize));
                }
                if self.state.migration(id).is_some() {
                    return Err(FleetError::MigrationInProgress(id));
                }
                if self.state.migration_fit(&inst, dst_pod as usize).is_none() {
                    return Err(FleetError::MigrationInfeasible {
                        id,
                        dst_pod: dst_pod as usize,
                    });
                }
            }
            FleetCommand::FinishMigration { id, .. } => {
                if !self.state.is_live(id) {
                    return Err(FleetError::NoSuchInstance(id));
                }
                if self.state.migration(id).is_none() {
                    return Err(FleetError::NotMigrating(id));
                }
            }
        }
        self.raft
            .propose(now, cmd.encode())
            .ok_or(FleetError::NotLeader)?;
        let mut last = FleetResponse::Rejected;
        for (_, bytes) in self.raft.take_applied() {
            if let Some(c) = FleetCommand::decode(&bytes) {
                last = self.state.apply(&c);
            }
        }
        Ok(last)
    }

    /// Replay the committed log prefix on top of the compaction base
    /// (empty unless a checkpoint was restored) and compare with the live
    /// state — the fleet-level "state is consistent with the log"
    /// invariant.
    pub fn consistent_with_log(&self) -> bool {
        let mut replayed = self.base.clone();
        let commit = self.raft.commit_index();
        for entry in self.raft.log_entries().iter().take(commit as usize) {
            if entry.command.is_empty() {
                continue; // election no-op barrier
            }
            if let Some(cmd) = FleetCommand::decode(&entry.command) {
                replayed.apply(&cmd);
            }
        }
        replayed == self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(alloc: &mut FleetAllocator, hosts: u32) -> usize {
        let pod = alloc.state.pods.len() as u32;
        match alloc
            .execute(
                SimTime::ZERO,
                &FleetCommand::RegisterPod {
                    pod,
                    hosts,
                    vcpus_per_host: 96,
                    mem_gb_per_host: 512,
                    nic_mbps: hosts as u64 * 100_000,
                    ssd_cap: hosts as u64 * 12_288,
                },
            )
            .unwrap()
        {
            FleetResponse::PodRegistered { pod } => pod,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn link(alloc: &mut FleetAllocator, a: u32, b: u32) {
        alloc
            .execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a,
                    b,
                    latency_ns: 2_000,
                },
            )
            .unwrap();
    }

    fn create(alloc: &mut FleetAllocator, at: u64, nic_mbps: u32, ssd: u32) -> FleetResponse {
        alloc
            .execute(
                SimTime::from_nanos(at),
                &FleetCommand::CreateInstance {
                    at,
                    vcpus: 8,
                    mem_gb: 32,
                    ssd,
                    nic_mbps,
                    home_pod: ANY_POD,
                },
            )
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_topology_commands() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        let err = alloc.execute(
            SimTime::ZERO,
            &FleetCommand::RegisterPod {
                pod: 7,
                hosts: 1,
                vcpus_per_host: 1,
                mem_gb_per_host: 1,
                nic_mbps: 1,
                ssd_cap: 1,
            },
        );
        assert_eq!(err, Err(FleetError::NoSuchPod(7)));
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 1,
                    b: 1,
                    latency_ns: 1
                }
            ),
            Err(FleetError::SelfLink { pod: 1 })
        );
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 0,
                    b: 5,
                    latency_ns: 1
                }
            ),
            Err(FleetError::NoSuchPod(5))
        );
        link(&mut alloc, 0, 1);
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 1,
                    b: 0,
                    latency_ns: 9
                }
            ),
            Err(FleetError::DuplicateLink { a: 0, b: 1 })
        );
        assert_eq!(
            alloc.execute(SimTime::ZERO, &FleetCommand::KillInstance { at: 0, id: 3 }),
            Err(FleetError::NoSuchInstance(3))
        );
    }

    #[test]
    fn local_placement_is_best_fit_first_minimum() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 3);
        // Load host 1 so it has the least slack; the next create must
        // best-fit onto it, not first-fit onto host 0.
        alloc.state.pods[0].host_vcpus_used[1] = 80;
        alloc.state.pods[0].host_mem_used[1] = 400;
        match create(&mut alloc, 0, 1_000, 0) {
            FleetResponse::Created {
                pod,
                host,
                device_pod,
                ..
            } => {
                assert_eq!((pod, host, device_pod), (0, 1, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strand_spills_devices_to_nearest_linked_pod() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        // Exhaust pod 0's NIC bandwidth; CPU/memory stay free.
        alloc.state.pods[0].nic_mbps_used = alloc.state.pods[0].nic_mbps_cap;
        // Also fill pod 1's hosts so only pod 0 can run the instance.
        for h in 0..2 {
            alloc.state.pods[1].host_vcpus_used[h] = 96;
        }
        let resp = create(&mut alloc, 10, 5_000, 100);
        match resp {
            FleetResponse::Created {
                id,
                pod,
                device_pod,
                ..
            } => {
                assert_eq!(pod, 0);
                assert_eq!(device_pod, 1, "devices spill over the uplink");
                assert_eq!(alloc.state.spill_placements[0], 1);
                assert_eq!(alloc.state.spill_bytes[0], 0, "open epoch not yet flushed");
                // Kill after 8 ms: 5_000 Mbit/s * 8e6 ns / 8000 = 5e6 B.
                alloc
                    .execute(
                        SimTime::from_nanos(8_000_010),
                        &FleetCommand::KillInstance { at: 8_000_010, id },
                    )
                    .unwrap();
                assert_eq!(alloc.state.spill_bytes[0], 5_000_000);
                assert_eq!(alloc.state.pods[1].nic_mbps_used, 0);
                assert_eq!(alloc.state.pods[1].ssd_used, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_spill_without_links_and_rejection_is_counted() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        alloc.state.pods[0].nic_mbps_used = alloc.state.pods[0].nic_mbps_cap;
        alloc.state.pods[1].host_vcpus_used[0] = 96;
        assert_eq!(create(&mut alloc, 0, 5_000, 0), FleetResponse::Rejected);
        assert_eq!(alloc.state.rejected, 1);
        assert_eq!(alloc.state.spill_placements, vec![0, 0]);
    }

    #[test]
    fn resize_reprices_devices_and_rejects_over_capacity() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 10_000, 100) else {
            panic!("create failed");
        };
        assert_eq!(
            alloc
                .execute(
                    SimTime::from_nanos(5),
                    &FleetCommand::ResizeInstance {
                        at: 5,
                        id,
                        nic_mbps: 45_000,
                        ssd: 500
                    },
                )
                .unwrap(),
            FleetResponse::Resized { id }
        );
        assert_eq!(alloc.state.pods[0].nic_mbps_used, 45_000);
        assert_eq!(alloc.state.pods[0].ssd_used, 500);
        assert_eq!(
            alloc
                .execute(
                    SimTime::from_nanos(6),
                    &FleetCommand::ResizeInstance {
                        at: 6,
                        id,
                        nic_mbps: 200_000,
                        ssd: 0
                    },
                )
                .unwrap(),
            FleetResponse::ResizeRejected { id }
        );
        assert_eq!(
            alloc.state.pods[0].nic_mbps_used, 45_000,
            "rejected resize is a no-op"
        );
        assert_eq!(alloc.state.resize_rejections, 1);
    }

    #[test]
    fn query_reports_utilization_without_logging() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        create(&mut alloc, 0, 10_000, 200);
        let before = alloc.raft.log_entries().len();
        let FleetResponse::State(report) = alloc
            .execute(SimTime::ZERO, &FleetCommand::QueryFleetState)
            .unwrap()
        else {
            panic!("expected a report");
        };
        assert_eq!(
            alloc.raft.log_entries().len(),
            before,
            "reads are not logged"
        );
        assert_eq!(report.live, 1);
        assert_eq!(report.placed, 1);
        assert_eq!(report.pods[0].nic_mbps_used, 10_000);
        assert_eq!(report.pods[0].vcpus_used, 8);
    }

    #[test]
    fn state_stays_consistent_with_log() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        let mut live = Vec::new();
        for i in 0..20u64 {
            if let FleetResponse::Created { id, .. } = create(&mut alloc, i * 100, 20_000, 1_000) {
                live.push(id);
            }
            if i % 3 == 2 {
                if let Some(id) = live.first().copied() {
                    live.remove(0);
                    alloc
                        .execute(
                            SimTime::from_nanos(i * 100 + 1),
                            &FleetCommand::KillInstance {
                                at: i * 100 + 1,
                                id,
                            },
                        )
                        .unwrap();
                }
            }
        }
        assert!(alloc.state.placed > 0);
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn compensating_kill_restores_state_and_stays_consistent_with_log() {
        // A create immediately undone by its kill is the control plane's
        // compensation idiom (the trace replayer leans on it for failed
        // placements). The kill must release every resource the create
        // took — including spilled device capacity on the *neighbor* pod —
        // and a log replay must reproduce the exact post-compensation
        // state, spill accounting included.
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        link(&mut alloc, 0, 1);
        // Saturate pod 0's NIC so the next create spills to pod 1.
        let base = match create(&mut alloc, 0, 90_000, 0) {
            FleetResponse::Created { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        let home_create = |alloc: &mut FleetAllocator, at: u64| {
            alloc
                .execute(
                    SimTime::from_nanos(at),
                    &FleetCommand::CreateInstance {
                        at,
                        vcpus: 8,
                        mem_gb: 32,
                        ssd: 0,
                        nic_mbps: 20_000,
                        home_pod: 0,
                    },
                )
                .unwrap()
        };
        let (spilled_id, pod, device_pod) = match home_create(&mut alloc, 10) {
            FleetResponse::Created {
                id,
                pod,
                device_pod,
                ..
            } => (id, pod, device_pod),
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(pod, device_pod, "the second lease must spill");
        let before_nic: Vec<u64> = alloc.state.pods.iter().map(|p| p.nic_mbps_used).collect();

        // Compensate.
        alloc
            .execute(
                SimTime::from_nanos(1_000),
                &FleetCommand::KillInstance {
                    at: 1_000,
                    id: spilled_id,
                },
            )
            .unwrap();
        let after_nic: Vec<u64> = alloc.state.pods.iter().map(|p| p.nic_mbps_used).collect();
        assert_eq!(after_nic[device_pod], before_nic[device_pod] - 20_000);
        assert!(
            alloc.state.spill_bytes[pod] > 0,
            "the spilled lease's traffic epoch was closed into its home pod"
        );
        assert!(alloc.consistent_with_log());

        // The compensated capacity is genuinely reusable: the same lease
        // fits again and lands on the same neighbor.
        match home_create(&mut alloc, 2_000) {
            FleetResponse::Created { device_pod: dp, .. } => assert_eq!(dp, device_pod),
            other => panic!("unexpected {other:?}"),
        }
        // And the original instance was untouched throughout.
        assert!(alloc.state.is_live(base));
        assert!(alloc.consistent_with_log());
    }

    fn migrate(alloc: &mut FleetAllocator, at: u64, id: u64, dst: u32) -> FleetResponse {
        alloc
            .execute(
                SimTime::from_nanos(at),
                &FleetCommand::MigrateInstance {
                    at,
                    id,
                    dst_pod: dst,
                    path: TransferPath::Cxl,
                },
            )
            .unwrap()
    }

    fn finish(alloc: &mut FleetAllocator, at: u64, id: u64, commit: bool) -> FleetResponse {
        alloc
            .execute(
                SimTime::from_nanos(at),
                &FleetCommand::FinishMigration { at, id, commit },
            )
            .unwrap()
    }

    #[test]
    fn migration_commit_rehomes_and_releases_source() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        let FleetResponse::Created { id, pod, .. } = create(&mut alloc, 0, 20_000, 500) else {
            panic!("create failed");
        };
        assert_eq!(pod, 0);
        let FleetResponse::MigrationStarted {
            dst_pod, dst_host, ..
        } = migrate(&mut alloc, 100, id, 1)
        else {
            panic!("migrate refused");
        };
        assert_eq!(dst_pod, 1);
        // While the ticket is open, both pods hold the resources.
        assert_eq!(alloc.state.pods[0].nic_mbps_used, 20_000);
        assert_eq!(alloc.state.pods[1].nic_mbps_used, 20_000);
        assert_eq!(
            finish(&mut alloc, 8_000_100, id, true),
            FleetResponse::MigrationFinished {
                id,
                committed: true
            }
        );
        let inst = alloc.state.instances[id as usize].unwrap();
        assert_eq!(
            (inst.pod, inst.host, inst.device_pod),
            (1, dst_host as u32, 1)
        );
        assert_eq!(alloc.state.pods[0].nic_mbps_used, 0, "source released");
        assert_eq!(alloc.state.pods[0].host_vcpus_used, vec![0, 0]);
        assert_eq!(alloc.state.pods[1].nic_mbps_used, 20_000);
        assert_eq!(alloc.state.migrations, vec![]);
        assert_eq!(alloc.state.migrations_committed, 1);
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn migration_abort_rolls_back_target_only() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        link(&mut alloc, 0, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 30_000, 0) else {
            panic!("create failed");
        };
        migrate(&mut alloc, 50, id, 1);
        assert_eq!(
            finish(&mut alloc, 60, id, false),
            FleetResponse::MigrationFinished {
                id,
                committed: false
            }
        );
        let inst = alloc.state.instances[id as usize].unwrap();
        assert_eq!(inst.pod, 0, "instance stays on the source");
        assert_eq!(alloc.state.pods[1].nic_mbps_used, 0, "target rolled back");
        assert_eq!(alloc.state.pods[1].host_vcpus_used, vec![0]);
        assert_eq!(alloc.state.migrations_aborted, 1);
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn migration_is_exactly_once() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        link(&mut alloc, 0, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 10_000, 0) else {
            panic!("create failed");
        };
        // Double-start is refused while the ticket is open.
        migrate(&mut alloc, 10, id, 1);
        assert_eq!(
            alloc.execute(
                SimTime::from_nanos(11),
                &FleetCommand::MigrateInstance {
                    at: 11,
                    id,
                    dst_pod: 1,
                    path: TransferPath::Nic,
                }
            ),
            Err(FleetError::MigrationInProgress(id))
        );
        // Resize is refused mid-copy.
        assert_eq!(
            alloc.execute(
                SimTime::from_nanos(12),
                &FleetCommand::ResizeInstance {
                    at: 12,
                    id,
                    nic_mbps: 5_000,
                    ssd: 0
                }
            ),
            Err(FleetError::MigrationInProgress(id))
        );
        finish(&mut alloc, 20, id, true);
        // Double-finish finds no ticket.
        assert_eq!(
            alloc.execute(
                SimTime::from_nanos(21),
                &FleetCommand::FinishMigration {
                    at: 21,
                    id,
                    commit: false
                }
            ),
            Err(FleetError::NotMigrating(id))
        );
        // And the state machine itself rejects a replayed finish: apply
        // it directly, bypassing validation, like a replica replaying a
        // duplicated log suffix would.
        let before = alloc.state.clone();
        let resp = alloc.state.apply(&FleetCommand::FinishMigration {
            at: 22,
            id,
            commit: true,
        });
        assert_eq!(resp, FleetResponse::Rejected);
        assert_eq!(alloc.state, before, "replayed finish is a no-op");
    }

    #[test]
    fn kill_during_migration_releases_both_sides() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        link(&mut alloc, 0, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 10_000, 200) else {
            panic!("create failed");
        };
        migrate(&mut alloc, 10, id, 1);
        alloc
            .execute(
                SimTime::from_nanos(20),
                &FleetCommand::KillInstance { at: 20, id },
            )
            .unwrap();
        for p in 0..2 {
            assert_eq!(alloc.state.pods[p].nic_mbps_used, 0, "pod {p}");
            assert_eq!(alloc.state.pods[p].ssd_used, 0, "pod {p}");
            assert_eq!(alloc.state.pods[p].host_vcpus_used, vec![0], "pod {p}");
        }
        assert_eq!(alloc.state.migrations, vec![]);
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn migration_validation_errors() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 10_000, 0) else {
            panic!("create failed");
        };
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::MigrateInstance {
                    at: 0,
                    id: 99,
                    dst_pod: 1,
                    path: TransferPath::Cxl
                }
            ),
            Err(FleetError::NoSuchInstance(99))
        );
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::MigrateInstance {
                    at: 0,
                    id,
                    dst_pod: 7,
                    path: TransferPath::Cxl
                }
            ),
            Err(FleetError::NoSuchPod(7))
        );
        // Migrating onto the pod it already runs on is infeasible.
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::MigrateInstance {
                    at: 0,
                    id,
                    dst_pod: 0,
                    path: TransferPath::Cxl
                }
            ),
            Err(FleetError::MigrationInfeasible { id, dst_pod: 0 })
        );
        // A saturated target is infeasible too.
        alloc.state.pods[1].nic_mbps_used = alloc.state.pods[1].nic_mbps_cap;
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::MigrateInstance {
                    at: 0,
                    id,
                    dst_pod: 1,
                    path: TransferPath::Cxl
                }
            ),
            Err(FleetError::MigrationInfeasible { id, dst_pod: 1 })
        );
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::FinishMigration {
                    at: 0,
                    id,
                    commit: true
                }
            ),
            Err(FleetError::NotMigrating(id))
        );
    }

    #[test]
    fn fleet_state_snapshot_roundtrips() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 20_000, 500) else {
            panic!("create failed");
        };
        create(&mut alloc, 10, 15_000, 0);
        migrate(&mut alloc, 100, id, 1);

        let mut w = SnapshotWriter::new();
        alloc.state.snapshot_state(&mut w);
        let bytes = w.finish();

        let mut restored = FleetState::default();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored, alloc.state);

        // Byte stability: re-snapshot reproduces identical bytes.
        let mut w2 = SnapshotWriter::new();
        restored.snapshot_state(&mut w2);
        assert_eq!(w2.finish(), bytes);

        // The restored state keeps functioning: the open ticket commits.
        let resp = restored.apply(&FleetCommand::FinishMigration {
            at: 200,
            id,
            commit: true,
        });
        assert_eq!(
            resp,
            FleetResponse::MigrationFinished {
                id,
                committed: true
            }
        );
    }

    #[test]
    fn checkpoint_compacts_the_log() {
        let mut src = FleetAllocator::new();
        register(&mut src, 2);
        let FleetResponse::Created { id, .. } = create(&mut src, 0, 10_000, 100) else {
            panic!("create failed");
        };
        let mut w = SnapshotWriter::new();
        src.checkpoint(&mut w);
        let bytes = w.finish();

        // Resume into a fresh allocator (empty log) and keep operating:
        // consistent_with_log must hold because the base carries the
        // pre-checkpoint history.
        let mut resumed = FleetAllocator::new();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        resumed.restore(&mut r).unwrap();
        assert_eq!(resumed.state, src.state);
        assert!(resumed.consistent_with_log());
        resumed
            .execute(
                SimTime::from_nanos(1_000),
                &FleetCommand::KillInstance { at: 1_000, id },
            )
            .unwrap();
        assert!(resumed.consistent_with_log());
        assert_eq!(resumed.state.killed, 1);
    }

    #[test]
    fn corrupt_fleet_snapshot_is_a_typed_error() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        let mut w = SnapshotWriter::new();
        alloc.state.snapshot_state(&mut w);
        let mut bytes = w.finish();
        // Flip the migration-path byte region by truncating mid-stream.
        bytes.truncate(bytes.len() - 4);
        let mut restored = FleetState::default();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(restored.restore_state(&mut r).is_err());
    }

    #[test]
    fn export_covers_all_fleet_counters() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        create(&mut alloc, 0, 10_000, 0);
        let mut sink = MetricSink::new();
        alloc.state.export_metrics(&mut sink);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(crate::metrics::FLEET_PODS, 0), 1);
        assert_eq!(snap.counter(crate::metrics::FLEET_INSTANCES_PLACED, 0), 1);
        assert_eq!(snap.counter(crate::metrics::FLEET_POD_PLACEMENTS, 0), 1);
    }
}
