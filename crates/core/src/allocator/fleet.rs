//! Fleet-scope allocation: topology-aware placement over many pods.
//!
//! The pod allocator ([`super::service`]) answers "which NIC / which SSD
//! inside this pod"; this module answers the question above it: *which pod
//! and host get the instance at all*, with device backends allowed to land
//! on a different, reachable pod when the home pod's devices strand.
//!
//! The split mirrors the paper's §2.3 fleet argument. Each pod contributes
//! a [`PodCapacity`] — the pod-local capacity layer, summarizing what the
//! pod allocator could serve — and the [`FleetAllocator`] places against
//! those summaries, consulting [`FleetTopology::spill_order`] (hop count,
//! then uplink latency, then pod index — deterministically tie-broken) to
//! pick the nearest neighbor pod whenever an instance's CPU/memory fit
//! locally but its chunky device request does not.
//!
//! Every state-changing [`FleetCommand`] flows through a replicated Raft
//! log, exactly like the pod allocator's [`super::command::AllocCommand`]
//! stream: the state machine ([`FleetState::apply`]) is a pure function of
//! the log, so replicas converge and [`FleetAllocator::consistent_with_log`]
//! can re-derive the live state from the committed prefix. Command
//! timestamps travel *in* the commands, never from the applying replica's
//! clock, so cross-pod spill-traffic accounting is identical on every
//! replica.

use oasis_cxl::topology::{CrossPodLink, FleetTopology, PodTopology, SpillHop};
use oasis_obs::MetricSink;
use oasis_raft::{RaftConfig, RaftNode};
use oasis_sim::time::{SimDuration, SimTime};

use super::command::{FleetCommand, ANY_POD};
use crate::error::FleetError;
use crate::metrics;

/// The pod-local capacity layer: what one pod can still serve, as seen by
/// the fleet. CPU and memory are per-host (instances run on exactly one
/// host); NIC bandwidth and SSD capacity are pod-wide, because inside a
/// pod every device is reachable over CXL (§2.3).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PodCapacity {
    /// vCPUs per host.
    pub vcpus_per_host: u32,
    /// Memory per host, GB.
    pub mem_gb_per_host: u32,
    /// vCPUs in use, per host.
    pub host_vcpus_used: Vec<u32>,
    /// Memory in use, per host (GB).
    pub host_mem_used: Vec<u32>,
    /// Pod-wide allocatable NIC bandwidth, Mbit/s (backup NICs excluded).
    pub nic_mbps_cap: u64,
    /// NIC bandwidth currently leased, Mbit/s.
    pub nic_mbps_used: u64,
    /// Pod-wide allocatable SSD capacity.
    pub ssd_cap: u64,
    /// SSD capacity currently leased.
    pub ssd_used: u64,
}

impl PodCapacity {
    /// Number of hosts in the pod.
    pub fn hosts(&self) -> usize {
        self.host_vcpus_used.len()
    }

    /// Can this pod's pooled devices absorb another `(nic_mbps, ssd)`
    /// lease?
    pub fn devices_fit(&self, nic_mbps: u64, ssd: u64) -> bool {
        self.nic_mbps_used.saturating_add(nic_mbps) <= self.nic_mbps_cap
            && self.ssd_used.saturating_add(ssd) <= self.ssd_cap
    }

    /// Post-placement CPU/memory slack of `host` if it took the request,
    /// or `None` if the request does not fit. The slack pair is the
    /// best-fit key: smaller slack packs tighter.
    fn host_slack(&self, host: usize, vcpus: u32, mem_gb: u32) -> Option<(u32, u32)> {
        let vs = self
            .vcpus_per_host
            .checked_sub(self.host_vcpus_used[host].checked_add(vcpus)?)?;
        let ms = self
            .mem_gb_per_host
            .checked_sub(self.host_mem_used[host].checked_add(mem_gb)?)?;
        Some((vs, ms))
    }
}

/// One live instance in the fleet state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetInstance {
    /// vCPUs held.
    pub vcpus: u32,
    /// Memory held, GB.
    pub mem_gb: u32,
    /// SSD capacity held.
    pub ssd: u32,
    /// NIC bandwidth held, Mbit/s.
    pub nic_mbps: u32,
    /// Pod whose host runs the instance.
    pub pod: u32,
    /// Host index within `pod`.
    pub host: u32,
    /// Pod serving the device backends (== `pod` unless spilled).
    pub device_pod: u32,
    /// When the current lease epoch started (command time, ns). Reset on
    /// resize so spill traffic is integrated rate-by-rate.
    pub placed_at: u64,
}

/// Per-pod utilization line in a [`FleetStateReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PodUtilization {
    /// Pod index.
    pub pod: usize,
    /// Hosts in the pod.
    pub hosts: usize,
    /// vCPUs in use across the pod.
    pub vcpus_used: u64,
    /// vCPU capacity across the pod.
    pub vcpus_cap: u64,
    /// NIC bandwidth leased, Mbit/s.
    pub nic_mbps_used: u64,
    /// NIC bandwidth capacity, Mbit/s.
    pub nic_mbps_cap: u64,
    /// SSD capacity leased.
    pub ssd_used: u64,
    /// SSD capacity.
    pub ssd_cap: u64,
    /// Instances whose device backends this pod serves.
    pub placements: u64,
}

/// Answer to [`FleetCommand::QueryFleetState`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStateReport {
    /// Per-pod utilization.
    pub pods: Vec<PodUtilization>,
    /// Instances currently live.
    pub live: u64,
    /// `CreateInstance` commands that placed.
    pub placed: u64,
    /// `CreateInstance` commands that found no capacity.
    pub rejected: u64,
    /// Instances killed.
    pub killed: u64,
    /// Placements whose devices spilled to a neighbor pod.
    pub spill_placements: u64,
    /// Closed-out cross-pod spill traffic, bytes.
    pub spill_bytes: u64,
}

/// Outcome of one applied (or read-only) fleet command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetResponse {
    /// The pod was registered.
    PodRegistered {
        /// Its index.
        pod: usize,
    },
    /// The link was registered and spill orders recomputed.
    LinkAdded,
    /// The instance was placed.
    Created {
        /// Fleet instance id.
        id: u64,
        /// Pod whose host runs it.
        pod: usize,
        /// Host index within that pod.
        host: usize,
        /// Pod serving its devices (== `pod` unless spilled).
        device_pod: usize,
    },
    /// No host in the home scope could take the instance.
    Rejected,
    /// The instance's device leases were changed in place.
    Resized {
        /// Fleet instance id.
        id: u64,
    },
    /// The device pod could not absorb the new leases; nothing changed.
    ResizeRejected {
        /// Fleet instance id.
        id: u64,
    },
    /// The instance was torn down.
    Killed {
        /// Fleet instance id.
        id: u64,
    },
    /// The utilization report.
    State(FleetStateReport),
}

/// Bytes a `nic_mbps` lease moves across an uplink over `[from, to]` ns.
/// 1 Mbit/s × 1 ns = 1e6 / 1e9 bits = 1/8000 bytes; integer arithmetic so
/// every replica computes the same value.
fn cross_pod_bytes(nic_mbps: u32, from_ns: u64, to_ns: u64) -> u64 {
    ((nic_mbps as u128) * (to_ns.saturating_sub(from_ns) as u128) / 8000) as u64
}

/// The replicated fleet state machine: a pure function of the
/// [`FleetCommand`] log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetState {
    /// Pod-local capacity layers, by pod index.
    pub pods: Vec<PodCapacity>,
    /// Registered links as `(a, b, latency_ns)`.
    links: Vec<(u32, u32, u64)>,
    /// `spill[p]` = neighbor pods of `p` in spill preference order,
    /// recomputed from the link set (via [`FleetTopology::spill_order`])
    /// after every `AddLink`.
    spill: Vec<Vec<SpillHop>>,
    /// Instance slots by fleet id (`None` = rejected or killed).
    pub instances: Vec<Option<FleetInstance>>,
    /// Placements that succeeded.
    pub placed: u64,
    /// Placements that found no capacity.
    pub rejected: u64,
    /// Instances killed.
    pub killed: u64,
    /// Resizes that succeeded.
    pub resizes: u64,
    /// Resizes refused for lack of device capacity.
    pub resize_rejections: u64,
    /// Per *home* pod: placements whose devices spilled to a neighbor.
    pub spill_placements: Vec<u64>,
    /// Per *home* pod: closed-out cross-pod traffic, bytes.
    pub spill_bytes: Vec<u64>,
    /// Per *device* pod: placements it serves devices for.
    pub pod_placements: Vec<u64>,
}

/// A pass-2 spill candidate: the `(hops, vcpu slack, mem slack)` ranking
/// key and the `(pod, host, device_pod)` placement it ranks.
type SpillCandidate = ((u32, u32, u32), (usize, usize, usize));

impl FleetState {
    /// The topology this state implies — pods plus registered uplinks —
    /// which placement consults for spill ordering.
    pub fn topology(&self) -> FleetTopology {
        FleetTopology {
            pods: self
                .pods
                .iter()
                .map(|p| PodTopology::production(p.hosts(), 0))
                .collect(),
            links: self
                .links
                .iter()
                .map(|&(a, b, ns)| CrossPodLink {
                    a: a as usize,
                    b: b as usize,
                    latency: SimDuration::from_nanos(ns),
                })
                .collect(),
        }
    }

    /// Is there already a link between `a` and `b` (either direction)?
    pub fn has_link(&self, a: usize, b: usize) -> bool {
        self.links.iter().any(|&(la, lb, _)| {
            (la as usize, lb as usize) == (a, b) || (la as usize, lb as usize) == (b, a)
        })
    }

    /// Is `id` a live instance?
    pub fn is_live(&self, id: u64) -> bool {
        matches!(self.instances.get(id as usize), Some(Some(_)))
    }

    fn recompute_spill(&mut self) {
        let topo = self.topology();
        self.spill = (0..self.pods.len()).map(|p| topo.spill_order(p)).collect();
    }

    /// Deterministic two-pass placement. Pass 1: a host whose *own* pod
    /// can serve the devices, best-fit by `(vcpu slack, mem slack)` with
    /// the first minimum winning — exactly the pod-scoped policy the trace
    /// replayer always used. Pass 2 (only when pass 1 strands): a host
    /// whose CPU/memory fit, with devices on the first pod in its home
    /// pod's spill order that can serve them; candidates ranked by
    /// `(hops, vcpu slack, mem slack)`, first minimum wins.
    fn place(
        &self,
        vcpus: u32,
        mem_gb: u32,
        ssd: u32,
        nic_mbps: u32,
        home_pod: Option<usize>,
    ) -> Option<(usize, usize, usize)> {
        let in_scope = |p: usize| -> bool { home_pod.is_none_or(|hp| hp == p) };
        let mut best: Option<((u32, u32), (usize, usize))> = None;
        for (p, pc) in self.pods.iter().enumerate() {
            if !in_scope(p) || !pc.devices_fit(nic_mbps as u64, ssd as u64) {
                continue;
            }
            for h in 0..pc.hosts() {
                if let Some(key) = pc.host_slack(h, vcpus, mem_gb) {
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, (p, h)));
                    }
                }
            }
        }
        if let Some((_, (p, h))) = best {
            return Some((p, h, p));
        }
        // Pass 2: spill device backends to the nearest feasible neighbor.
        let mut best: Option<SpillCandidate> = None;
        for (p, pc) in self.pods.iter().enumerate() {
            if !in_scope(p) {
                continue;
            }
            let Some(hop) = self.spill[p]
                .iter()
                .find(|hop| self.pods[hop.pod].devices_fit(nic_mbps as u64, ssd as u64))
            else {
                continue;
            };
            for h in 0..pc.hosts() {
                if let Some((vs, ms)) = pc.host_slack(h, vcpus, mem_gb) {
                    let key = (hop.hops, vs, ms);
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, (p, h, hop.pod)));
                    }
                }
            }
        }
        best.map(|(_, placed)| placed)
    }

    /// Close out the spill-traffic epoch `[inst.placed_at, now]` for a
    /// spilled instance.
    fn flush_spill(&mut self, inst: &FleetInstance, now: u64) {
        if inst.device_pod != inst.pod {
            let b = &mut self.spill_bytes[inst.pod as usize];
            *b = b.saturating_add(cross_pod_bytes(inst.nic_mbps, inst.placed_at, now));
        }
    }

    /// Apply a committed command. Infallible and deterministic: commands
    /// are validated before they are proposed, and a malformed or stale
    /// command (which a correct proposer never logs) degrades to a
    /// `Rejected` outcome rather than diverging replicas.
    pub fn apply(&mut self, cmd: &FleetCommand) -> FleetResponse {
        match *cmd {
            FleetCommand::RegisterPod {
                pod: _,
                hosts,
                vcpus_per_host,
                mem_gb_per_host,
                nic_mbps,
                ssd_cap,
            } => {
                self.pods.push(PodCapacity {
                    vcpus_per_host,
                    mem_gb_per_host,
                    host_vcpus_used: vec![0; hosts as usize],
                    host_mem_used: vec![0; hosts as usize],
                    nic_mbps_cap: nic_mbps,
                    nic_mbps_used: 0,
                    ssd_cap,
                    ssd_used: 0,
                });
                self.spill_placements.push(0);
                self.spill_bytes.push(0);
                self.pod_placements.push(0);
                self.recompute_spill();
                FleetResponse::PodRegistered {
                    pod: self.pods.len() - 1,
                }
            }
            FleetCommand::AddLink { a, b, latency_ns } => {
                self.links.push((a, b, latency_ns));
                self.recompute_spill();
                FleetResponse::LinkAdded
            }
            FleetCommand::CreateInstance {
                at,
                vcpus,
                mem_gb,
                ssd,
                nic_mbps,
                home_pod,
            } => {
                let home = (home_pod != ANY_POD).then_some(home_pod as usize);
                let id = self.instances.len() as u64;
                match self.place(vcpus, mem_gb, ssd, nic_mbps, home) {
                    Some((pod, host, device_pod)) => {
                        let pc = &mut self.pods[pod];
                        pc.host_vcpus_used[host] += vcpus;
                        pc.host_mem_used[host] += mem_gb;
                        let dc = &mut self.pods[device_pod];
                        dc.nic_mbps_used = dc.nic_mbps_used.saturating_add(nic_mbps as u64);
                        dc.ssd_used = dc.ssd_used.saturating_add(ssd as u64);
                        self.instances.push(Some(FleetInstance {
                            vcpus,
                            mem_gb,
                            ssd,
                            nic_mbps,
                            pod: pod as u32,
                            host: host as u32,
                            device_pod: device_pod as u32,
                            placed_at: at,
                        }));
                        self.placed += 1;
                        self.pod_placements[device_pod] += 1;
                        if device_pod != pod {
                            self.spill_placements[pod] += 1;
                        }
                        FleetResponse::Created {
                            id,
                            pod,
                            host,
                            device_pod,
                        }
                    }
                    None => {
                        self.instances.push(None);
                        self.rejected += 1;
                        FleetResponse::Rejected
                    }
                }
            }
            FleetCommand::ResizeInstance {
                at,
                id,
                nic_mbps,
                ssd,
            } => {
                let Some(Some(inst)) = self.instances.get(id as usize).copied() else {
                    return FleetResponse::Rejected;
                };
                let dp = inst.device_pod as usize;
                let dc = &self.pods[dp];
                let nic_ok = (dc.nic_mbps_used - inst.nic_mbps as u64)
                    .saturating_add(nic_mbps as u64)
                    <= dc.nic_mbps_cap;
                let ssd_ok =
                    (dc.ssd_used - inst.ssd as u64).saturating_add(ssd as u64) <= dc.ssd_cap;
                if !(nic_ok && ssd_ok) {
                    self.resize_rejections += 1;
                    return FleetResponse::ResizeRejected { id };
                }
                // Close the old-rate spill epoch before the rate changes.
                self.flush_spill(&inst, at);
                let dc = &mut self.pods[dp];
                dc.nic_mbps_used =
                    (dc.nic_mbps_used - inst.nic_mbps as u64).saturating_add(nic_mbps as u64);
                dc.ssd_used = (dc.ssd_used - inst.ssd as u64).saturating_add(ssd as u64);
                if let Some(Some(inst)) = self.instances.get_mut(id as usize) {
                    inst.nic_mbps = nic_mbps;
                    inst.ssd = ssd;
                    inst.placed_at = at;
                }
                self.resizes += 1;
                FleetResponse::Resized { id }
            }
            FleetCommand::KillInstance { at, id } => {
                let Some(slot) = self.instances.get_mut(id as usize) else {
                    return FleetResponse::Rejected;
                };
                let Some(inst) = slot.take() else {
                    return FleetResponse::Rejected;
                };
                self.flush_spill(&inst, at);
                let pc = &mut self.pods[inst.pod as usize];
                pc.host_vcpus_used[inst.host as usize] -= inst.vcpus;
                pc.host_mem_used[inst.host as usize] -= inst.mem_gb;
                let dc = &mut self.pods[inst.device_pod as usize];
                dc.nic_mbps_used -= inst.nic_mbps as u64;
                dc.ssd_used -= inst.ssd as u64;
                self.killed += 1;
                FleetResponse::Killed { id }
            }
            FleetCommand::QueryFleetState => FleetResponse::State(self.report()),
        }
    }

    /// The fleet-wide utilization report.
    pub fn report(&self) -> FleetStateReport {
        FleetStateReport {
            pods: self
                .pods
                .iter()
                .enumerate()
                .map(|(p, pc)| PodUtilization {
                    pod: p,
                    hosts: pc.hosts(),
                    vcpus_used: pc.host_vcpus_used.iter().map(|&v| v as u64).sum(),
                    vcpus_cap: pc.hosts() as u64 * pc.vcpus_per_host as u64,
                    nic_mbps_used: pc.nic_mbps_used,
                    nic_mbps_cap: pc.nic_mbps_cap,
                    ssd_used: pc.ssd_used,
                    ssd_cap: pc.ssd_cap,
                    placements: self.pod_placements[p],
                })
                .collect(),
            live: self.instances.iter().flatten().count() as u64,
            placed: self.placed,
            rejected: self.rejected,
            killed: self.killed,
            spill_placements: self.spill_placements.iter().sum(),
            spill_bytes: self.spill_bytes.iter().sum(),
        }
    }

    /// Export the fleet counters through the `core.fleet_*` registry.
    /// Spill placements/bytes are tagged by *home* pod, placements by
    /// *device* pod; zero-valued tags are skipped, like the engine
    /// exporters do.
    pub fn export_metrics(&self, sink: &mut MetricSink) {
        sink.set(metrics::FLEET_PODS, 0, self.pods.len() as u64);
        sink.set(metrics::FLEET_LINKS, 0, self.links.len() as u64);
        sink.set(metrics::FLEET_INSTANCES_PLACED, 0, self.placed);
        sink.set(metrics::FLEET_PLACEMENTS_REJECTED, 0, self.rejected);
        sink.set(metrics::FLEET_INSTANCES_KILLED, 0, self.killed);
        sink.set(metrics::FLEET_RESIZES, 0, self.resizes);
        sink.set(metrics::FLEET_RESIZES_REJECTED, 0, self.resize_rejections);
        for (p, &v) in self.spill_placements.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_SPILL_PLACEMENTS, p as u32, v);
            }
        }
        for (p, &v) in self.spill_bytes.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_SPILL_BYTES, p as u32, v);
            }
        }
        for (p, &v) in self.pod_placements.iter().enumerate() {
            if v != 0 {
                sink.set(metrics::FLEET_POD_PLACEMENTS, p as u32, v);
            }
        }
    }
}

/// The fleet-level allocator service: validates typed commands, runs them
/// through a Raft log, and applies the committed prefix to a
/// [`FleetState`]. Single-replica by default (commands commit
/// immediately), with the multi-node convergence covered in
/// [`super::replicated`].
pub struct FleetAllocator {
    /// The replicated state (readable for reports and tests).
    pub state: FleetState,
    raft: RaftNode,
}

impl Default for FleetAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetAllocator {
    /// A fleet allocator backed by a single-replica Raft group.
    pub fn new() -> Self {
        let mut raft = RaftNode::new(0, vec![], RaftConfig::default(), 0xF1EE7);
        // A single-node group elects itself on the first tick.
        raft.tick(SimTime::from_millis(25));
        assert!(raft.is_leader());
        FleetAllocator {
            state: FleetState::default(),
            raft,
        }
    }

    /// Execute one control-plane command at simulation time `now`:
    /// validate it against the live state, append it to the log (reads are
    /// not logged), apply everything committed, and return the outcome.
    pub fn execute(
        &mut self,
        now: SimTime,
        cmd: &FleetCommand,
    ) -> Result<FleetResponse, FleetError> {
        match *cmd {
            FleetCommand::QueryFleetState => {
                return Ok(FleetResponse::State(self.state.report()));
            }
            FleetCommand::RegisterPod { pod, .. } => {
                if pod as usize != self.state.pods.len() {
                    return Err(FleetError::NoSuchPod(pod as usize));
                }
            }
            FleetCommand::AddLink { a, b, .. } => {
                let (a, b) = (a as usize, b as usize);
                if a == b {
                    return Err(FleetError::SelfLink { pod: a });
                }
                for p in [a, b] {
                    if p >= self.state.pods.len() {
                        return Err(FleetError::NoSuchPod(p));
                    }
                }
                if self.state.has_link(a, b) {
                    return Err(FleetError::DuplicateLink {
                        a: a.min(b),
                        b: a.max(b),
                    });
                }
            }
            FleetCommand::CreateInstance { home_pod, .. } => {
                if home_pod != ANY_POD && home_pod as usize >= self.state.pods.len() {
                    return Err(FleetError::NoSuchPod(home_pod as usize));
                }
            }
            FleetCommand::ResizeInstance { id, .. } | FleetCommand::KillInstance { id, .. } => {
                if !self.state.is_live(id) {
                    return Err(FleetError::NoSuchInstance(id));
                }
            }
        }
        self.raft
            .propose(now, cmd.encode())
            .ok_or(FleetError::NotLeader)?;
        let mut last = FleetResponse::Rejected;
        for (_, bytes) in self.raft.take_applied() {
            if let Some(c) = FleetCommand::decode(&bytes) {
                last = self.state.apply(&c);
            }
        }
        Ok(last)
    }

    /// Replay the committed log prefix through a fresh state machine and
    /// compare with the live state — the fleet-level "state is consistent
    /// with the log" invariant.
    pub fn consistent_with_log(&self) -> bool {
        let mut replayed = FleetState::default();
        let commit = self.raft.commit_index();
        for entry in self.raft.log_entries().iter().take(commit as usize) {
            if entry.command.is_empty() {
                continue; // election no-op barrier
            }
            if let Some(cmd) = FleetCommand::decode(&entry.command) {
                replayed.apply(&cmd);
            }
        }
        replayed == self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register(alloc: &mut FleetAllocator, hosts: u32) -> usize {
        let pod = alloc.state.pods.len() as u32;
        match alloc
            .execute(
                SimTime::ZERO,
                &FleetCommand::RegisterPod {
                    pod,
                    hosts,
                    vcpus_per_host: 96,
                    mem_gb_per_host: 512,
                    nic_mbps: hosts as u64 * 100_000,
                    ssd_cap: hosts as u64 * 12_288,
                },
            )
            .unwrap()
        {
            FleetResponse::PodRegistered { pod } => pod,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn link(alloc: &mut FleetAllocator, a: u32, b: u32) {
        alloc
            .execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a,
                    b,
                    latency_ns: 2_000,
                },
            )
            .unwrap();
    }

    fn create(alloc: &mut FleetAllocator, at: u64, nic_mbps: u32, ssd: u32) -> FleetResponse {
        alloc
            .execute(
                SimTime::from_nanos(at),
                &FleetCommand::CreateInstance {
                    at,
                    vcpus: 8,
                    mem_gb: 32,
                    ssd,
                    nic_mbps,
                    home_pod: ANY_POD,
                },
            )
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_topology_commands() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        let err = alloc.execute(
            SimTime::ZERO,
            &FleetCommand::RegisterPod {
                pod: 7,
                hosts: 1,
                vcpus_per_host: 1,
                mem_gb_per_host: 1,
                nic_mbps: 1,
                ssd_cap: 1,
            },
        );
        assert_eq!(err, Err(FleetError::NoSuchPod(7)));
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 1,
                    b: 1,
                    latency_ns: 1
                }
            ),
            Err(FleetError::SelfLink { pod: 1 })
        );
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 0,
                    b: 5,
                    latency_ns: 1
                }
            ),
            Err(FleetError::NoSuchPod(5))
        );
        link(&mut alloc, 0, 1);
        assert_eq!(
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: 1,
                    b: 0,
                    latency_ns: 9
                }
            ),
            Err(FleetError::DuplicateLink { a: 0, b: 1 })
        );
        assert_eq!(
            alloc.execute(SimTime::ZERO, &FleetCommand::KillInstance { at: 0, id: 3 }),
            Err(FleetError::NoSuchInstance(3))
        );
    }

    #[test]
    fn local_placement_is_best_fit_first_minimum() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 3);
        // Load host 1 so it has the least slack; the next create must
        // best-fit onto it, not first-fit onto host 0.
        alloc.state.pods[0].host_vcpus_used[1] = 80;
        alloc.state.pods[0].host_mem_used[1] = 400;
        match create(&mut alloc, 0, 1_000, 0) {
            FleetResponse::Created {
                pod,
                host,
                device_pod,
                ..
            } => {
                assert_eq!((pod, host, device_pod), (0, 1, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strand_spills_devices_to_nearest_linked_pod() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        // Exhaust pod 0's NIC bandwidth; CPU/memory stay free.
        alloc.state.pods[0].nic_mbps_used = alloc.state.pods[0].nic_mbps_cap;
        // Also fill pod 1's hosts so only pod 0 can run the instance.
        for h in 0..2 {
            alloc.state.pods[1].host_vcpus_used[h] = 96;
        }
        let resp = create(&mut alloc, 10, 5_000, 100);
        match resp {
            FleetResponse::Created {
                id,
                pod,
                device_pod,
                ..
            } => {
                assert_eq!(pod, 0);
                assert_eq!(device_pod, 1, "devices spill over the uplink");
                assert_eq!(alloc.state.spill_placements[0], 1);
                assert_eq!(alloc.state.spill_bytes[0], 0, "open epoch not yet flushed");
                // Kill after 8 ms: 5_000 Mbit/s * 8e6 ns / 8000 = 5e6 B.
                alloc
                    .execute(
                        SimTime::from_nanos(8_000_010),
                        &FleetCommand::KillInstance { at: 8_000_010, id },
                    )
                    .unwrap();
                assert_eq!(alloc.state.spill_bytes[0], 5_000_000);
                assert_eq!(alloc.state.pods[1].nic_mbps_used, 0);
                assert_eq!(alloc.state.pods[1].ssd_used, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_spill_without_links_and_rejection_is_counted() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        alloc.state.pods[0].nic_mbps_used = alloc.state.pods[0].nic_mbps_cap;
        alloc.state.pods[1].host_vcpus_used[0] = 96;
        assert_eq!(create(&mut alloc, 0, 5_000, 0), FleetResponse::Rejected);
        assert_eq!(alloc.state.rejected, 1);
        assert_eq!(alloc.state.spill_placements, vec![0, 0]);
    }

    #[test]
    fn resize_reprices_devices_and_rejects_over_capacity() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        let FleetResponse::Created { id, .. } = create(&mut alloc, 0, 10_000, 100) else {
            panic!("create failed");
        };
        assert_eq!(
            alloc
                .execute(
                    SimTime::from_nanos(5),
                    &FleetCommand::ResizeInstance {
                        at: 5,
                        id,
                        nic_mbps: 45_000,
                        ssd: 500
                    },
                )
                .unwrap(),
            FleetResponse::Resized { id }
        );
        assert_eq!(alloc.state.pods[0].nic_mbps_used, 45_000);
        assert_eq!(alloc.state.pods[0].ssd_used, 500);
        assert_eq!(
            alloc
                .execute(
                    SimTime::from_nanos(6),
                    &FleetCommand::ResizeInstance {
                        at: 6,
                        id,
                        nic_mbps: 200_000,
                        ssd: 0
                    },
                )
                .unwrap(),
            FleetResponse::ResizeRejected { id }
        );
        assert_eq!(
            alloc.state.pods[0].nic_mbps_used, 45_000,
            "rejected resize is a no-op"
        );
        assert_eq!(alloc.state.resize_rejections, 1);
    }

    #[test]
    fn query_reports_utilization_without_logging() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        create(&mut alloc, 0, 10_000, 200);
        let before = alloc.raft.log_entries().len();
        let FleetResponse::State(report) = alloc
            .execute(SimTime::ZERO, &FleetCommand::QueryFleetState)
            .unwrap()
        else {
            panic!("expected a report");
        };
        assert_eq!(
            alloc.raft.log_entries().len(),
            before,
            "reads are not logged"
        );
        assert_eq!(report.live, 1);
        assert_eq!(report.placed, 1);
        assert_eq!(report.pods[0].nic_mbps_used, 10_000);
        assert_eq!(report.pods[0].vcpus_used, 8);
    }

    #[test]
    fn state_stays_consistent_with_log() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 2);
        register(&mut alloc, 2);
        link(&mut alloc, 0, 1);
        let mut live = Vec::new();
        for i in 0..20u64 {
            if let FleetResponse::Created { id, .. } = create(&mut alloc, i * 100, 20_000, 1_000) {
                live.push(id);
            }
            if i % 3 == 2 {
                if let Some(id) = live.first().copied() {
                    live.remove(0);
                    alloc
                        .execute(
                            SimTime::from_nanos(i * 100 + 1),
                            &FleetCommand::KillInstance {
                                at: i * 100 + 1,
                                id,
                            },
                        )
                        .unwrap();
                }
            }
        }
        assert!(alloc.state.placed > 0);
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn compensating_kill_restores_state_and_stays_consistent_with_log() {
        // A create immediately undone by its kill is the control plane's
        // compensation idiom (the trace replayer leans on it for failed
        // placements). The kill must release every resource the create
        // took — including spilled device capacity on the *neighbor* pod —
        // and a log replay must reproduce the exact post-compensation
        // state, spill accounting included.
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        register(&mut alloc, 1);
        link(&mut alloc, 0, 1);
        // Saturate pod 0's NIC so the next create spills to pod 1.
        let base = match create(&mut alloc, 0, 90_000, 0) {
            FleetResponse::Created { id, .. } => id,
            other => panic!("unexpected {other:?}"),
        };
        let home_create = |alloc: &mut FleetAllocator, at: u64| {
            alloc
                .execute(
                    SimTime::from_nanos(at),
                    &FleetCommand::CreateInstance {
                        at,
                        vcpus: 8,
                        mem_gb: 32,
                        ssd: 0,
                        nic_mbps: 20_000,
                        home_pod: 0,
                    },
                )
                .unwrap()
        };
        let (spilled_id, pod, device_pod) = match home_create(&mut alloc, 10) {
            FleetResponse::Created { id, pod, device_pod, .. } => (id, pod, device_pod),
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(pod, device_pod, "the second lease must spill");
        let before_nic: Vec<u64> = alloc.state.pods.iter().map(|p| p.nic_mbps_used).collect();

        // Compensate.
        alloc
            .execute(
                SimTime::from_nanos(1_000),
                &FleetCommand::KillInstance {
                    at: 1_000,
                    id: spilled_id,
                },
            )
            .unwrap();
        let after_nic: Vec<u64> = alloc.state.pods.iter().map(|p| p.nic_mbps_used).collect();
        assert_eq!(after_nic[device_pod as usize], before_nic[device_pod as usize] - 20_000);
        assert!(
            alloc.state.spill_bytes[pod as usize] > 0,
            "the spilled lease's traffic epoch was closed into its home pod"
        );
        assert!(alloc.consistent_with_log());

        // The compensated capacity is genuinely reusable: the same lease
        // fits again and lands on the same neighbor.
        match home_create(&mut alloc, 2_000) {
            FleetResponse::Created { device_pod: dp, .. } => assert_eq!(dp, device_pod),
            other => panic!("unexpected {other:?}"),
        }
        // And the original instance was untouched throughout.
        assert!(alloc.state.is_live(base));
        assert!(alloc.consistent_with_log());
    }

    #[test]
    fn export_covers_all_fleet_counters() {
        let mut alloc = FleetAllocator::new();
        register(&mut alloc, 1);
        create(&mut alloc, 0, 10_000, 0);
        let mut sink = MetricSink::new();
        alloc.state.export_metrics(&mut sink);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(crate::metrics::FLEET_PODS, 0), 1);
        assert_eq!(snap.counter(crate::metrics::FLEET_INSTANCES_PLACED, 0), 1);
        assert_eq!(snap.counter(crate::metrics::FLEET_POD_PLACEMENTS, 0), 1);
    }
}
