//! Multi-replica allocator state machine.
//!
//! §3.5: "The allocator itself is replicated with Raft." The pod runtime
//! runs one replica for simplicity; this module proves the state machine is
//! replication-safe by driving [`AllocState`] through an `oasis-raft`
//! cluster: every replica applies the committed command stream and must
//! converge to identical state, across leader failures.

use oasis_sim::time::{SimDuration, SimTime};

use super::command::AllocCommand;
use super::service::AllocState;

/// A deterministic fingerprint of allocator state, used to compare
/// replicas.
pub fn state_fingerprint(s: &AllocState) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for (i, n) in s.nics.iter().enumerate() {
        if let Some(n) = n {
            mix(i as u64);
            mix(n.host as u64);
            mix(n.capacity_mbps as u64);
            mix(n.allocated_mbps as u64);
            mix(n.failed as u64 | (n.backup as u64) << 1);
        }
    }
    for inst in &s.instances {
        mix(inst.ip.to_u32() as u64);
        mix(inst.nic as u64);
        mix(inst.lease_mbps as u64);
    }
    h
}

/// Apply a committed command stream to a fresh state (what each replica
/// does when draining its Raft apply queue).
pub fn replay(commands: &[Vec<u8>]) -> AllocState {
    let mut s = AllocState::default();
    let ttl = SimDuration::from_millis(300);
    for bytes in commands {
        if let Some(cmd) = AllocCommand::decode(bytes) {
            s.apply(SimTime::ZERO, ttl, &cmd);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_net::addr::Ipv4Addr;
    use oasis_raft::{RaftConfig, RaftNode};
    use oasis_sim::event::EventQueue;

    /// Drive a 3-node cluster, proposing allocator commands at the leader,
    /// with a leader crash in the middle; all surviving replicas must
    /// converge to the same allocator state.
    #[test]
    fn replicas_converge_across_leader_failure() {
        let n = 3;
        let mut nodes: Vec<RaftNode> = (0..n)
            .map(|id| {
                let peers: Vec<usize> = (0..n).filter(|&p| p != id).collect();
                RaftNode::new(id, peers, RaftConfig::default(), 7)
            })
            .collect();
        let mut wire: EventQueue<(usize, usize, oasis_raft::RaftMessage)> = EventQueue::new();
        let mut up = vec![true; n];
        let mut applied: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
        let mut now = SimTime::ZERO;

        let commands = [
            AllocCommand::RegisterNic {
                nic: 0,
                host: 0,
                capacity_mbps: 100_000,
                backup: false,
            },
            AllocCommand::RegisterNic {
                nic: 1,
                host: 1,
                capacity_mbps: 100_000,
                backup: true,
            },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 0,
                lease_mbps: 10_000,
            },
            AllocCommand::MarkFailed { nic: 0 },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 1,
                lease_mbps: 10_000,
            },
        ];
        let mut next_cmd = 0usize;
        let mut crashed = false;

        for _round in 0..4000 {
            now += SimDuration::from_micros(500);
            while let Some((_, (from, to, msg))) = wire.pop_due(now) {
                if up[to] && up[from] {
                    nodes[to].handle(now, from, msg);
                }
            }
            for i in 0..n {
                if up[i] {
                    nodes[i].tick(now);
                }
            }
            // Propose the next command once a leader exists.
            if next_cmd < commands.len() {
                if let Some(leader) = (0..n).find(|&i| up[i] && nodes[i].is_leader()) {
                    if nodes[leader]
                        .propose(now, commands[next_cmd].encode())
                        .is_some()
                    {
                        next_cmd += 1;
                        // Crash the leader midway through the workload.
                        if next_cmd == 3 && !crashed {
                            crashed = true;
                            // Let this proposal replicate first.
                            for _ in 0..20 {
                                now += SimDuration::from_micros(500);
                                while let Some((_, (from, to, msg))) = wire.pop_due(now) {
                                    if up[to] && up[from] {
                                        nodes[to].handle(now, from, msg);
                                    }
                                }
                                // Indexing sidesteps borrowing `nodes`
                                // while `take_outbox` mutates one element.
                                #[allow(clippy::needless_range_loop)]
                                for i in 0..n {
                                    for (to, msg) in nodes[i].take_outbox() {
                                        wire.push(now + SimDuration::from_micros(5), (i, to, msg));
                                    }
                                }
                            }
                            up[leader] = false;
                        }
                    }
                }
            }
            for i in 0..n {
                for (to, msg) in nodes[i].take_outbox() {
                    if up[i] {
                        wire.push(now + SimDuration::from_micros(5), (i, to, msg));
                    }
                }
                for (_, cmd) in nodes[i].take_applied() {
                    applied[i].push(cmd);
                }
            }
            if next_cmd == commands.len()
                && (0..n)
                    .filter(|&i| up[i])
                    .all(|i| applied[i].len() >= commands.len())
            {
                break;
            }
        }

        // All live replicas applied the full stream and converge.
        let live: Vec<usize> = (0..n).filter(|&i| up[i]).collect();
        assert!(live.len() >= 2);
        for &i in &live {
            assert!(
                applied[i].len() >= commands.len(),
                "replica {i} applied {} of {}",
                applied[i].len(),
                commands.len()
            );
        }
        let fp0 = state_fingerprint(&replay(&applied[live[0]]));
        for &i in &live[1..] {
            assert_eq!(
                fp0,
                state_fingerprint(&replay(&applied[i])),
                "replica {i} diverged"
            );
        }
        // And the final state reflects the failover.
        let s = replay(&applied[live[0]]);
        assert!(s.nics[0].as_ref().unwrap().failed);
        assert_eq!(s.instances_on(1).len(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let a = replay(&[AllocCommand::RegisterNic {
            nic: 0,
            host: 0,
            capacity_mbps: 1,
            backup: false,
        }
        .encode()]);
        let b = replay(&[AllocCommand::RegisterNic {
            nic: 0,
            host: 1,
            capacity_mbps: 1,
            backup: false,
        }
        .encode()]);
        assert_ne!(state_fingerprint(&a), state_fingerprint(&b));
        assert_eq!(state_fingerprint(&a), state_fingerprint(&a));
    }
}
