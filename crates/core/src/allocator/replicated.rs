//! Multi-replica allocator state machines.
//!
//! §3.5: "The allocator itself is replicated with Raft." The pod runtime
//! runs one replica for simplicity; this module proves the state machines
//! are replication-safe by driving [`AllocState`] — and the fleet-level
//! [`FleetState`] — through an `oasis-raft` cluster: every replica applies
//! the committed command stream and must converge to identical state,
//! across leader failures.

use oasis_sim::time::{SimDuration, SimTime};

use super::command::{AllocCommand, FleetCommand};
use super::fleet::FleetState;
use super::service::AllocState;

/// A deterministic fingerprint of allocator state, used to compare
/// replicas.
pub fn state_fingerprint(s: &AllocState) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for (i, n) in s.nics.iter().enumerate() {
        if let Some(n) = n {
            mix(i as u64);
            mix(n.host as u64);
            mix(n.capacity_mbps as u64);
            mix(n.allocated_mbps as u64);
            mix(n.failed as u64 | (n.backup as u64) << 1);
        }
    }
    for inst in &s.instances {
        mix(inst.ip.to_u32() as u64);
        mix(inst.nic as u64);
        mix(inst.lease_mbps as u64);
    }
    h
}

/// Apply a committed command stream to a fresh state (what each replica
/// does when draining its Raft apply queue).
pub fn replay(commands: &[Vec<u8>]) -> AllocState {
    let mut s = AllocState::default();
    let ttl = SimDuration::from_millis(300);
    for bytes in commands {
        if let Some(cmd) = AllocCommand::decode(bytes) {
            s.apply(SimTime::ZERO, ttl, &cmd);
        }
    }
    s
}

/// A deterministic fingerprint of fleet allocator state. Covers everything
/// the log determines: pod capacity layers, live instances (including
/// where their devices landed), and the placement/spill tallies.
pub fn fleet_fingerprint(s: &FleetState) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for (i, p) in s.pods.iter().enumerate() {
        mix(i as u64);
        mix(p.nic_mbps_cap);
        mix(p.nic_mbps_used);
        mix(p.ssd_cap);
        mix(p.ssd_used);
        for (&v, &m) in p.host_vcpus_used.iter().zip(&p.host_mem_used) {
            mix((v as u64) << 32 | m as u64);
        }
    }
    for (i, inst) in s.instances.iter().enumerate() {
        if let Some(inst) = inst {
            mix(i as u64);
            mix((inst.pod as u64) << 40 | (inst.host as u64) << 20 | inst.device_pod as u64);
            mix((inst.nic_mbps as u64) << 32 | inst.ssd as u64);
            mix(inst.placed_at);
        }
    }
    mix(s.placed);
    mix(s.rejected);
    mix(s.killed);
    mix(s.resizes);
    mix(s.resize_rejections);
    for (&sp, &sb) in s.spill_placements.iter().zip(&s.spill_bytes) {
        mix(sp);
        mix(sb);
    }
    h
}

/// Apply a committed fleet command stream to a fresh fleet state machine.
pub fn replay_fleet_log(commands: &[Vec<u8>]) -> FleetState {
    let mut s = FleetState::default();
    for bytes in commands {
        if let Some(cmd) = FleetCommand::decode(bytes) {
            s.apply(&cmd);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_net::addr::Ipv4Addr;
    use oasis_raft::{RaftConfig, RaftNode};
    use oasis_sim::event::EventQueue;

    /// Drive a 3-node cluster over a simulated wire, proposing the encoded
    /// `commands` at whichever node is leader, crashing the leader after
    /// `crash_after` proposals. Returns each live replica's applied
    /// command stream; every one is asserted to hold the full workload.
    fn run_cluster(commands: &[Vec<u8>], crash_after: usize) -> Vec<Vec<Vec<u8>>> {
        let n = 3;
        let mut nodes: Vec<RaftNode> = (0..n)
            .map(|id| {
                let peers: Vec<usize> = (0..n).filter(|&p| p != id).collect();
                RaftNode::new(id, peers, RaftConfig::default(), 7)
            })
            .collect();
        let mut wire: EventQueue<(usize, usize, oasis_raft::RaftMessage)> = EventQueue::new();
        let mut up = vec![true; n];
        let mut applied: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
        let mut now = SimTime::ZERO;

        let mut next_cmd = 0usize;
        let mut crashed = false;

        for _round in 0..4000 {
            now += SimDuration::from_micros(500);
            while let Some((_, (from, to, msg))) = wire.pop_due(now) {
                if up[to] && up[from] {
                    nodes[to].handle(now, from, msg);
                }
            }
            for i in 0..n {
                if up[i] {
                    nodes[i].tick(now);
                }
            }
            // Propose the next command once a leader exists.
            if next_cmd < commands.len() {
                if let Some(leader) = (0..n).find(|&i| up[i] && nodes[i].is_leader()) {
                    if nodes[leader]
                        .propose(now, commands[next_cmd].clone())
                        .is_some()
                    {
                        next_cmd += 1;
                        // Crash the leader midway through the workload.
                        if next_cmd == crash_after && !crashed {
                            crashed = true;
                            // Let this proposal replicate first.
                            for _ in 0..20 {
                                now += SimDuration::from_micros(500);
                                while let Some((_, (from, to, msg))) = wire.pop_due(now) {
                                    if up[to] && up[from] {
                                        nodes[to].handle(now, from, msg);
                                    }
                                }
                                // Indexing sidesteps borrowing `nodes`
                                // while `take_outbox` mutates one element.
                                #[allow(clippy::needless_range_loop)]
                                for i in 0..n {
                                    for (to, msg) in nodes[i].take_outbox() {
                                        wire.push(now + SimDuration::from_micros(5), (i, to, msg));
                                    }
                                }
                            }
                            up[leader] = false;
                        }
                    }
                }
            }
            for i in 0..n {
                for (to, msg) in nodes[i].take_outbox() {
                    if up[i] {
                        wire.push(now + SimDuration::from_micros(5), (i, to, msg));
                    }
                }
                for (_, cmd) in nodes[i].take_applied() {
                    applied[i].push(cmd);
                }
            }
            if next_cmd == commands.len()
                && (0..n)
                    .filter(|&i| up[i])
                    .all(|i| applied[i].len() >= commands.len())
            {
                break;
            }
        }

        let live: Vec<usize> = (0..n).filter(|&i| up[i]).collect();
        assert!(live.len() >= 2);
        for &i in &live {
            assert!(
                applied[i].len() >= commands.len(),
                "replica {i} applied {} of {}",
                applied[i].len(),
                commands.len()
            );
        }
        live.into_iter()
            .map(|i| std::mem::take(&mut applied[i]))
            .collect()
    }

    /// Drive a 3-node cluster, proposing allocator commands at the leader,
    /// with a leader crash in the middle; all surviving replicas must
    /// converge to the same allocator state.
    #[test]
    fn replicas_converge_across_leader_failure() {
        let commands: Vec<Vec<u8>> = [
            AllocCommand::RegisterNic {
                nic: 0,
                host: 0,
                capacity_mbps: 100_000,
                backup: false,
            },
            AllocCommand::RegisterNic {
                nic: 1,
                host: 1,
                capacity_mbps: 100_000,
                backup: true,
            },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 0,
                lease_mbps: 10_000,
            },
            AllocCommand::MarkFailed { nic: 0 },
            AllocCommand::Assign {
                ip: Ipv4Addr::instance(1),
                host: 0,
                nic: 1,
                lease_mbps: 10_000,
            },
        ]
        .iter()
        .map(|c| c.encode())
        .collect();

        let streams = run_cluster(&commands, 3);
        let fp0 = state_fingerprint(&replay(&streams[0]));
        for (i, stream) in streams.iter().enumerate().skip(1) {
            assert_eq!(
                fp0,
                state_fingerprint(&replay(stream)),
                "replica {i} diverged"
            );
        }
        // And the final state reflects the failover.
        let s = replay(&streams[0]);
        assert!(s.nics[0].as_ref().unwrap().failed);
        assert_eq!(s.instances_on(1).len(), 1);
    }

    /// The fleet state machine is replication-safe too: the same typed
    /// control-plane command stream (pods, a link, creates with a spill,
    /// a resize, a kill) converges across a leader failure.
    #[test]
    fn fleet_replicas_converge_across_leader_failure() {
        let pod = |p: u32| FleetCommand::RegisterPod {
            pod: p,
            hosts: 2,
            vcpus_per_host: 96,
            mem_gb_per_host: 512,
            nic_mbps: 40_000,
            ssd_cap: 4_000,
        };
        let create = |at: u64, nic_mbps: u32, home_pod: u32| FleetCommand::CreateInstance {
            at,
            vcpus: 8,
            mem_gb: 32,
            ssd: 1_000,
            nic_mbps,
            home_pod,
        };
        let commands: Vec<Vec<u8>> = [
            pod(0),
            pod(1),
            FleetCommand::AddLink {
                a: 0,
                b: 1,
                latency_ns: 2_000,
            },
            // Two 30 Gb/s leases pinned to pod 0: the second cannot fit
            // pod 0's remaining 10 Gb/s and spills its devices to pod 1.
            create(100, 30_000, 0),
            create(200, 30_000, 0),
            FleetCommand::ResizeInstance {
                at: 300,
                id: 0,
                nic_mbps: 10_000,
                ssd: 500,
            },
            FleetCommand::KillInstance { at: 400, id: 1 },
        ]
        .iter()
        .map(|c| c.encode())
        .collect();

        let streams = run_cluster(&commands, 4);
        let fp0 = fleet_fingerprint(&replay_fleet_log(&streams[0]));
        for (i, stream) in streams.iter().enumerate().skip(1) {
            assert_eq!(
                fp0,
                fleet_fingerprint(&replay_fleet_log(stream)),
                "fleet replica {i} diverged"
            );
        }
        let s = replay_fleet_log(&streams[0]);
        assert_eq!(s.placed, 2);
        assert_eq!(s.killed, 1);
        assert_eq!(s.resizes, 1);
        assert_eq!(s.spill_placements, vec![1, 0], "second create spilled");
        assert!(
            s.spill_bytes[0] > 0,
            "killing the spilled instance closes its traffic epoch"
        );
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let a = replay(&[AllocCommand::RegisterNic {
            nic: 0,
            host: 0,
            capacity_mbps: 1,
            backup: false,
        }
        .encode()]);
        let b = replay(&[AllocCommand::RegisterNic {
            nic: 0,
            host: 1,
            capacity_mbps: 1,
            backup: false,
        }
        .encode()]);
        assert_ne!(state_fingerprint(&a), state_fingerprint(&b));
        assert_eq!(state_fingerprint(&a), state_fingerprint(&a));
    }
}
