//! The pod-wide allocator (§3.5).
//!
//! A logically centralized control-plane service that owns the mapping from
//! instances to PCIe devices. It is never on the data path. State mutations
//! are commands through a Raft log (`oasis-raft`) — the paper replicates
//! the allocator with Raft over the message channels; the pod runtime runs
//! it with a single replica (commands commit immediately), and
//! [`replicated`] exercises the same state machine across a multi-node
//! cluster.
//!
//! Responsibilities implemented:
//!
//! * **Device allocation**: local-first, then least-loaded (§3.5).
//! * **Monitoring**: backends send telemetry every 100 ms; records renew
//!   the leases of instances served by that device.
//! * **Failure management**: `LinkFailed` reports — or missing telemetry,
//!   which is how *host* failures are inferred — revoke the device's
//!   leases and reroute affected instances to the pod's backup NIC.
//!
//! Above the pod sits the fleet layer ([`fleet`]): pods summarize their
//! allocatable capacity ([`AllocState::capacity_summary`]) and a
//! [`FleetAllocator`] places instances across pods, spilling device
//! backends to topologically-near neighbors when local devices strand.

pub mod command;
pub mod fleet;
pub mod migrate;
pub mod replicated;
pub mod service;

pub use command::{AllocCommand, FleetCommand, TransferPath, ANY_POD};
pub use fleet::{
    FleetAllocator, FleetInstance, FleetResponse, FleetState, FleetStateReport, MigrationTicket,
    PodCapacity, PodUtilization,
};
pub use migrate::{MigrationOutcome, PrecopyModel};
pub use service::{
    AllocState, InstanceInfo, NicInfo, PodAllocator, RebalancePolicy, SsdInfo, VolumeInfo,
};
