//! The common Oasis datapath (§3.2): buffer areas and channel plumbing in
//! shared CXL memory.
//!
//! I/O buffers live in the pool so any host (and any device, via DMA) can
//! reach them without copies; message channels signal requests and
//! completions. Buffer areas are carved from class-tagged regions so the
//! CXL link meters can split payload from message traffic (Table 3).

use oasis_channel::{ChannelLayout, Policy, Receiver, Sender, DEFAULT_SLOTS, MSG16};
use oasis_cxl::pool::TrafficClass;
use oasis_cxl::{CxlPool, Region, RegionAllocator};

/// A pool-backed packet-buffer allocator (free-list over fixed-size slots).
///
/// Used for per-instance TX areas (owned by the frontend driver) and
/// per-NIC RX areas (owned by the backend driver).
pub struct BufferArea {
    region: Region,
    buf_size: u64,
    free: Vec<u64>,
}

impl BufferArea {
    /// Create an area over `region` with fixed `buf_size` slots.
    pub fn new(region: Region, buf_size: u64) -> Self {
        let count = region.size / buf_size;
        assert!(count > 0, "buffer area too small");
        // Stack of free buffer addresses; popped from the end so reuse is
        // LIFO (cache-friendlier for the copying frontend).
        let free = (0..count)
            .map(|i| region.base + i * buf_size)
            .rev()
            .collect();
        BufferArea {
            region,
            buf_size,
            free,
        }
    }

    /// Allocate one buffer; `None` when exhausted (backpressure).
    pub fn alloc(&mut self) -> Option<u64> {
        self.free.pop()
    }

    /// Return a buffer to the free list.
    pub fn free(&mut self, addr: u64) {
        debug_assert!(self.region.contains(addr), "foreign buffer {addr:#x}");
        debug_assert_eq!((addr - self.region.base) % self.buf_size, 0);
        debug_assert!(!self.free.contains(&addr), "double free of {addr:#x}");
        self.free.push(addr);
    }

    /// Buffers currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total buffers in the area.
    pub fn capacity(&self) -> u64 {
        self.region.size / self.buf_size
    }

    /// Buffer slot size.
    pub fn buf_size(&self) -> u64 {
        self.buf_size
    }

    /// The backing region.
    pub fn region(&self) -> &Region {
        &self.region
    }
}

impl crate::snapshot::Snapshottable for BufferArea {
    /// The free list is logical state — its LIFO order decides which buffer
    /// the next `alloc` hands out, so it is serialized exactly, not as a
    /// set. The region and slot size are topology (rebuilt by the pod
    /// builder) and are only validated against on restore.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.free.len() as u64);
        for &addr in &self.free {
            w.put_u64(addr);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = r.u64("buffer free-list length")?;
        if n > self.capacity() {
            return Err(SnapshotError::Corrupt("buffer free-list length"));
        }
        let mut free = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let addr = r.u64("buffer free-list entry")?;
            if !self.region.contains(addr)
                || !(addr - self.region.base).is_multiple_of(self.buf_size)
            {
                return Err(SnapshotError::Corrupt("buffer free-list entry"));
            }
            free.push(addr);
        }
        self.free = free;
        Ok(())
    }
}

/// A unidirectional channel endpoint pair (sender on one core, receiver on
/// another) allocated in pool memory.
pub struct ChannelPair {
    /// Sending half (lives with the producing driver).
    pub sender: Sender,
    /// Receiving half (lives with the consuming driver).
    pub receiver: Receiver,
}

/// Allocate one direction of an engine link: a message channel with
/// `msg_bytes`-sized slots in pool memory, using the shipping receiver
/// policy (④ invalidate-prefetched). This is the single place channel
/// layout math lives — every engine's channels (16 B net descriptors, 64 B
/// NVMe/accel descriptors) are carved here.
pub fn alloc_msg_channel(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
    slots: u64,
    msg_bytes: u64,
) -> ChannelPair {
    let region = ra.alloc(
        pool,
        name,
        ChannelLayout::bytes_needed(slots, msg_bytes),
        TrafficClass::Message,
    );
    let layout = ChannelLayout::in_region(&region, slots, msg_bytes);
    ChannelPair {
        sender: Sender::new(layout.clone()),
        receiver: Receiver::new(layout, Policy::InvalidatePrefetched),
    }
}

/// Allocate one direction of a typed descriptor channel: slot size comes
/// from the descriptor type's wire size, so frontends and backends agree on
/// the layout by construction.
pub fn alloc_descriptor_channel<D: crate::engine::WireDescriptor>(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
    slots: u64,
) -> ChannelPair {
    alloc_msg_channel(pool, ra, name, slots, D::WIRE_SIZE as u64)
}

/// Allocate one direction of a driver↔driver link: a 16 B message channel.
pub fn alloc_net_channel(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
    slots: u64,
) -> ChannelPair {
    alloc_msg_channel(pool, ra, name, slots, MSG16 as u64)
}

/// Allocate a default-sized channel.
pub fn alloc_default_net_channel(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
) -> ChannelPair {
    alloc_net_channel(pool, ra, name, DEFAULT_SLOTS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_cxl::pool::PortId;
    use oasis_cxl::HostCtx;

    fn area(buf_size: u64, total: u64) -> (CxlPool, BufferArea) {
        let mut pool = CxlPool::new(1 << 21, 2);
        let mut ra = RegionAllocator::new(&pool);
        let region = ra.alloc(&mut pool, "tx", total, TrafficClass::Payload);
        (pool, BufferArea::new(region, buf_size))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (_pool, mut a) = area(2048, 8192);
        assert_eq!(a.capacity(), 4);
        let b1 = a.alloc().unwrap();
        let b2 = a.alloc().unwrap();
        assert_ne!(b1, b2);
        assert_eq!(a.free_count(), 2);
        a.free(b1);
        assert_eq!(a.free_count(), 3);
        // LIFO reuse.
        assert_eq!(a.alloc().unwrap(), b1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (_pool, mut a) = area(2048, 4096);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_none());
    }

    #[test]
    fn buffers_are_aligned_and_disjoint() {
        let (_pool, mut a) = area(2048, 8192);
        let mut addrs = Vec::new();
        while let Some(b) = a.alloc() {
            addrs.push(b);
        }
        addrs.sort_unstable();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 2048);
        }
        for b in addrs {
            assert_eq!(b % 64, 0, "line-aligned buffers");
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_caught_in_debug() {
        let (_pool, mut a) = area(2048, 4096);
        let b = a.alloc().unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    fn buffer_area_snapshot_roundtrips() {
        use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, Snapshottable};
        let (_pool, mut a) = area(2048, 8192);
        let b1 = a.alloc().unwrap();
        let _b2 = a.alloc().unwrap();
        a.free(b1);
        let mut w = SnapshotWriter::new();
        a.snapshot_state(&mut w);
        let bytes = w.finish();
        // Restore into a freshly built area of the same shape.
        let (_pool2, mut fresh) = area(2048, 8192);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        fresh.restore_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        // Byte-stable: restore → snapshot reproduces identical bytes.
        let mut w2 = SnapshotWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(w2.finish(), bytes);
        // And the LIFO order survives: next alloc hands back b1.
        assert_eq!(fresh.alloc(), Some(b1));
        // A free-list entry outside the region is a typed corruption.
        let mut w3 = SnapshotWriter::new();
        w3.put_u64(1);
        w3.put_u64(u64::MAX / 2);
        let bad = w3.finish();
        let (_pool3, mut victim) = area(2048, 8192);
        let mut r3 = SnapshotReader::open(&bad).unwrap();
        assert_eq!(
            victim.restore_state(&mut r3),
            Err(SnapshotError::Corrupt("buffer free-list entry"))
        );
    }

    #[test]
    fn channel_pair_end_to_end() {
        let mut pool = CxlPool::new(1 << 21, 2);
        let mut ra = RegionAllocator::new(&pool);
        let mut pair = alloc_default_net_channel(&mut pool, &mut ra, "fe0->be0");
        let mut tx = HostCtx::new(PortId(0), 0);
        let mut rx = HostCtx::new(PortId(1), 0);
        let msg = crate::msg::NetMsg {
            ptr: 0xdead,
            size: 64,
            op: crate::msg::NetOp::Tx,
            ip: oasis_net::addr::Ipv4Addr::instance(1),
        };
        assert!(pair
            .sender
            .try_send(&mut tx, &mut pool, &msg.encode())
            .unwrap());
        pair.sender.flush(&mut tx, &mut pool);
        rx.advance(10_000);
        let mut out = [0u8; 16];
        // May need a second poll after invalidating the stale line.
        let got = (0..3).any(|_| pair.receiver.try_recv(&mut rx, &mut pool, &mut out));
        assert!(got);
        assert_eq!(crate::msg::NetMsg::decode(&out), Some(msg));
        // Region is metered as message traffic.
        assert_eq!(
            pool.classify(pair.sender.layout().base),
            TrafficClass::Message
        );
    }
}
