//! Schema-versioned, byte-stable serialization of instance state
//! (DESIGN.md §15).
//!
//! A snapshot is a flat byte container: an 8-byte magic, a `u32`
//! little-endian schema version, then a sequence of tagged, length-framed
//! sections. Everything inside a section is written with the fixed-width
//! little-endian primitives of [`SnapshotWriter`], so two replicas holding
//! equal logical state always produce identical bytes — the property the
//! `snapshot-determinism` CI job and the migration transfer paths both
//! lean on.
//!
//! The section tag enum is schema-pinned exactly like the command enums
//! ([`crate::allocator::command`]): variant order assigns the tag bytes,
//! so appending, reordering, or renaming a variant is a schema change —
//! bump [`SNAPSHOT_SCHEMA_VERSION`], update the golden registry in
//! `crates/check/src/policy.rs`, and refresh the committed version-skew
//! fixture together.
//!
//! Version skew is handled at open time: [`SnapshotReader::open`] accepts
//! any version in `SNAPSHOT_MIN_VERSION..=SNAPSHOT_SCHEMA_VERSION` and
//! exposes it through [`SnapshotReader::version`], letting decoders
//! upgrade older layouts field-by-field (v1 fleet states predate the
//! migration table and upgrade to an empty one). Anything outside the
//! window is a typed [`SnapshotError::UnsupportedVersion`] — never a
//! panic, which keeps the `no-panic` rule clean on this runtime path.

/// Magic bytes opening every snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"OASISNAP";

/// Wire-schema version of the snapshot container and its section
/// payloads. Variant order of [`SnapshotSection`] assigns the tag bytes,
/// so appending, reordering, or renaming a variant is a schema change:
/// bump this, update the golden registry in `crates/check/src/policy.rs`,
/// and refresh the committed v1 fixture test.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 2;

/// Oldest container version the reader still upgrades (v1 predates the
/// fleet migration table).
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

/// Section tags of the snapshot container. Declaration order assigns the
/// tag bytes (starting at 1), mirroring the command-enum discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotSection {
    /// Container-level metadata: what was snapshotted and when (sim-time).
    Meta,
    /// One engine core's logical state; repeated, in registration order.
    Engine,
    /// The fleet allocator state machine ([`crate::allocator::FleetState`]).
    FleetState,
    /// A replay driver's continuation point (arrival cursor, departures).
    ReplayCursor,
}

impl SnapshotSection {
    /// The tag byte (declaration order, starting at 1).
    pub fn tag(self) -> u8 {
        match self {
            SnapshotSection::Meta => 1,
            SnapshotSection::Engine => 2,
            SnapshotSection::FleetState => 3,
            SnapshotSection::ReplayCursor => 4,
        }
    }

    /// Decode a tag byte; `None` for an unknown tag.
    pub fn from_tag(tag: u8) -> Option<SnapshotSection> {
        match tag {
            1 => Some(SnapshotSection::Meta),
            2 => Some(SnapshotSection::Engine),
            3 => Some(SnapshotSection::FleetState),
            4 => Some(SnapshotSection::ReplayCursor),
            _ => None,
        }
    }
}

/// Typed decode failure. Every malformed or version-skewed input maps to
/// one of these; the decoder never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The container does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container's version is outside the supported window.
    UnsupportedVersion(u32),
    /// The input ended inside the named field.
    Truncated(&'static str),
    /// An unknown section tag byte.
    BadSection(u8),
    /// The next section's tag was not the one the decoder expected.
    SectionMismatch {
        /// Section the decoder was reading toward.
        want: SnapshotSection,
        /// Section actually found.
        got: SnapshotSection,
    },
    /// A field decoded to a value the schema forbids.
    Corrupt(&'static str),
    /// The snapshot was taken from a different run than the one resuming:
    /// the embedded workload digest does not match.
    StreamMismatch {
        /// Digest embedded in the snapshot.
        want: u64,
        /// Digest of the resuming run's workload.
        got: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SnapshotError::BadMagic => write!(f, "not an Oasis snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot schema v{v} (supported: \
                 v{SNAPSHOT_MIN_VERSION}..=v{SNAPSHOT_SCHEMA_VERSION})"
            ),
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated inside {what}"),
            SnapshotError::BadSection(tag) => write!(f, "unknown snapshot section tag {tag}"),
            SnapshotError::SectionMismatch { want, got } => {
                write!(f, "expected snapshot section {want:?}, found {got:?}")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot field {what} is corrupt"),
            SnapshotError::StreamMismatch { want, got } => write!(
                f,
                "snapshot was taken from a different workload \
                 (digest {want:#x}, resuming run has {got:#x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Byte-stable snapshot encoder: fixed-width little-endian primitives and
/// length-framed sections over a growable buffer.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Patch offsets of sections opened but not yet closed (stacked so a
    /// forgotten `end_section` is caught by `finish`'s debug assertion).
    open: Vec<usize>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// A writer with the magic and current schema version already framed.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_SCHEMA_VERSION.to_le_bytes());
        SnapshotWriter {
            buf,
            open: Vec::new(),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed byte string (`u64` length, then bytes).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Open a length-framed section: writes the tag and a length
    /// placeholder patched by [`end_section`](Self::end_section).
    pub fn begin_section(&mut self, s: SnapshotSection) {
        self.buf.push(s.tag());
        self.open.push(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Close the innermost open section, patching its length frame.
    pub fn end_section(&mut self) {
        if let Some(at) = self.open.pop() {
            let len = (self.buf.len() - at - 8) as u64;
            self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
        }
    }

    /// Finish, returning the container bytes.
    pub fn finish(self) -> Vec<u8> {
        debug_assert!(self.open.is_empty(), "unclosed snapshot section");
        self.buf
    }
}

/// Cursor over a snapshot container (or one section payload within it).
/// Every accessor returns a typed [`SnapshotError`] on malformed input;
/// nothing here indexes past the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Open a container: check the magic and accept any schema version in
    /// the supported window.
    pub fn open(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let magic = bytes.get(..8).ok_or(SnapshotError::Truncated("magic"))?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let v = bytes
            .get(8..12)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or(SnapshotError::Truncated("version"))?;
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_SCHEMA_VERSION).contains(&v) {
            return Err(SnapshotError::UnsupportedVersion(v));
        }
        Ok(SnapshotReader {
            buf: bytes,
            pos: 12,
            version: v,
        })
    }

    /// The container's schema version (decoders branch on this to upgrade
    /// older layouts).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Truncated(what))?;
        let b = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated(what))?;
        self.pos = end;
        Ok(b)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, what)?;
        b.try_into()
            .map(u16::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated(what))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated(what))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| SnapshotError::Truncated(what))
    }

    /// Read a collection length. Every encoded element occupies at least
    /// one byte, so a count exceeding the bytes left in the container is
    /// corrupt — rejected here, *before* a decoder pre-allocates, so a
    /// flipped bit in a length field surfaces as a typed error instead of
    /// driving `Vec::with_capacity` into an allocation abort.
    pub fn count(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u64(what)?;
        if n > self.remaining() as u64 {
            return Err(SnapshotError::Corrupt(what));
        }
        Ok(n as usize)
    }

    /// Read a bool byte; anything other than 0/1 is corrupt.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt(what)),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64(what)?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt(what))?;
        self.take(len, what)
    }

    /// Read the next section header, returning a sub-reader scoped to its
    /// payload. `Ok(None)` at a clean end of input.
    pub fn next_section(
        &mut self,
    ) -> Result<Option<(SnapshotSection, SnapshotReader<'a>)>, SnapshotError> {
        if self.is_exhausted() {
            return Ok(None);
        }
        let tag = self.u8("section tag")?;
        let section = SnapshotSection::from_tag(tag).ok_or(SnapshotError::BadSection(tag))?;
        let payload = self.bytes("section payload")?;
        Ok(Some((
            section,
            SnapshotReader {
                buf: payload,
                pos: 0,
                version: self.version,
            },
        )))
    }

    /// Read the next section, requiring it to be `want`.
    pub fn section(&mut self, want: SnapshotSection) -> Result<SnapshotReader<'a>, SnapshotError> {
        match self.next_section()? {
            Some((got, r)) if got == want => Ok(r),
            Some((got, _)) => Err(SnapshotError::SectionMismatch { want, got }),
            None => Err(SnapshotError::Truncated("section")),
        }
    }
}

/// A component whose logical state round-trips through the snapshot
/// primitives byte-stably: `snapshot_state` must be a pure function of the
/// component's logical state, and `restore_state` followed by
/// `snapshot_state` must reproduce the identical bytes.
///
/// Implementations serialize *logical* state only — clocks, counters,
/// queue contents, in-flight descriptors, retry/dedup sequence state —
/// never topology (links, channel endpoints, configuration), which the
/// builder reconstructs on the restore side.
pub trait Snapshottable {
    /// Append this component's state to `w`.
    fn snapshot_state(&self, w: &mut SnapshotWriter);
    /// Restore from bytes produced by [`snapshot_state`](Self::snapshot_state).
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u16(65_535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX / 3);
        w.put_bool(true);
        w.put_bytes(b"oasis");
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.version(), SNAPSHOT_SCHEMA_VERSION);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 65_535);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX / 3);
        assert!(r.bool("e").unwrap());
        assert_eq!(r.bytes("f").unwrap(), b"oasis");
        assert!(r.is_exhausted());
    }

    #[test]
    fn sections_frame_and_scope() {
        let mut w = SnapshotWriter::new();
        w.begin_section(SnapshotSection::Meta);
        w.put_u64(42);
        w.end_section();
        w.begin_section(SnapshotSection::Engine);
        w.put_u32(9);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut meta = r.section(SnapshotSection::Meta).unwrap();
        assert_eq!(meta.u64("x").unwrap(), 42);
        assert!(meta.is_exhausted());
        let (s, mut eng) = r.next_section().unwrap().unwrap();
        assert_eq!(s, SnapshotSection::Engine);
        assert_eq!(eng.u32("y").unwrap(), 9);
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn section_mismatch_is_typed() {
        let mut w = SnapshotWriter::new();
        w.begin_section(SnapshotSection::Engine);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(
            r.section(SnapshotSection::Meta),
            Err(SnapshotError::SectionMismatch {
                want: SnapshotSection::Meta,
                got: SnapshotSection::Engine,
            })
        );
    }

    #[test]
    fn bad_magic_and_versions_rejected() {
        assert_eq!(
            SnapshotReader::open(b"NOTASNAP\x01\x00\x00\x00"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            SnapshotReader::open(&SNAPSHOT_MAGIC[..6]),
            Err(SnapshotError::Truncated("magic"))
        );
        let mut future = Vec::new();
        future.extend_from_slice(&SNAPSHOT_MAGIC);
        future.extend_from_slice(&(SNAPSHOT_SCHEMA_VERSION + 1).to_le_bytes());
        assert_eq!(
            SnapshotReader::open(&future),
            Err(SnapshotError::UnsupportedVersion(
                SNAPSHOT_SCHEMA_VERSION + 1
            ))
        );
        let mut ancient = Vec::new();
        ancient.extend_from_slice(&SNAPSHOT_MAGIC);
        ancient.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::open(&ancient),
            Err(SnapshotError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn v1_containers_still_open() {
        let mut v1 = Vec::new();
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        let r = SnapshotReader::open(&v1).unwrap();
        assert_eq!(r.version(), 1);
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 3);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.u64("field"), Err(SnapshotError::Truncated("field")));
        // Absurd length prefixes are typed errors too.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(r.bytes("blob").is_err());
    }

    #[test]
    fn unknown_section_tag_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_u8(99);
        w.put_u64(0);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.next_section(), Err(SnapshotError::BadSection(99)));
    }

    #[test]
    fn section_tags_roundtrip() {
        for s in [
            SnapshotSection::Meta,
            SnapshotSection::Engine,
            SnapshotSection::FleetState,
            SnapshotSection::ReplayCursor,
        ] {
            assert_eq!(SnapshotSection::from_tag(s.tag()), Some(s));
        }
        assert_eq!(SnapshotSection::from_tag(0), None);
        assert_eq!(SnapshotSection::from_tag(5), None);
    }
}
