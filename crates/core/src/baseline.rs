//! The Junction-style baseline driver (§5.1).
//!
//! The paper's overhead experiments compare Oasis against instances served
//! by their *local* NIC through Junction's NIC virtualization layer. This
//! driver is that baseline: one combined polling core bridges local
//! instances directly to the local NIC — no cross-host message channels.
//!
//! A [`BufferPlacement`] knob reproduces the Fig. 11 middle bar: the
//! modified baseline that keeps the driver local but allocates its I/O
//! buffer areas in CXL pool memory. With pool buffers the driver performs
//! the same write-back/invalidate discipline as the Oasis frontend (the
//! device DMAs from non-coherent pool memory either way).

use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_cxl::pool::TrafficClass;
use oasis_cxl::{lines_covering, CxlPool, HostCtx, Region, RegionAllocator};
use oasis_net::addr::Ipv4Addr;
use oasis_net::nic::{Nic, RxDesc, TxDesc};
use oasis_net::packet::Frame;
use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;

use crate::config::{BufferPlacement, OasisConfig};
use crate::datapath::BufferArea;
use crate::instance::Instance;
use crate::snapshot::Snapshottable;

/// Baseline driver counters.
#[derive(Clone, Debug, Default)]
pub struct LocalDriverStats {
    /// TX packets posted.
    pub tx_packets: u64,
    /// TX drops (no buffer / NIC full).
    pub tx_drops: u64,
    /// RX packets delivered to instances.
    pub rx_packets: u64,
    /// RX packets with no owning instance.
    pub rx_unknown: u64,
}

struct LocalInst {
    inst_idx: usize,
    ip: Ipv4Addr,
}

/// The combined local driver (Junction baseline).
pub struct LocalDriver {
    /// Host this driver (and its NIC) lives on.
    pub host: usize,
    /// The NIC it drives.
    pub nic_id: usize,
    /// The polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: LocalDriverStats,
    cfg: OasisConfig,
    placement: BufferPlacement,
    tx_area: BufferArea,
    rx_area: BufferArea,
    insts: Vec<LocalInst>,
    tx_inflight: DetMap<u64, u64>,
    rx_posted: DetMap<u64, u64>,
    next_cookie: u64,
}

/// DMA context resolving both pool and host-local buffer references.
struct MixedDma<'a> {
    pool: &'a mut CxlPool,
    local: &'a mut [u8],
    port: oasis_cxl::pool::PortId,
    dma_ddr_ns: u64,
    dma_cxl_ns: u64,
}

impl DmaMemory for MixedDma<'_> {
    fn dma_read(&mut self, now: SimTime, mem: MemRef, out: &mut [u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_read(now, self.port, a, out),
            MemRef::HostLocal(a) => {
                out.copy_from_slice(&self.local[a as usize..a as usize + out.len()]);
            }
        }
    }
    fn dma_write(&mut self, now: SimTime, mem: MemRef, data: &[u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_write(now, self.port, a, data),
            MemRef::HostLocal(a) => {
                self.local[a as usize..a as usize + data.len()].copy_from_slice(data);
            }
        }
    }
    fn dma_latency_ns(&self, mem: MemRef) -> u64 {
        match mem {
            MemRef::Pool(_) => self.dma_cxl_ns,
            MemRef::HostLocal(_) => self.dma_ddr_ns,
        }
    }
}

impl LocalDriver {
    /// Create a baseline driver. With [`BufferPlacement::CxlPool`], buffer
    /// areas are carved from the pool via `ra`; with
    /// [`BufferPlacement::LocalDdr`], from the core's local DRAM starting
    /// at offset 0.
    pub fn new(
        host: usize,
        nic_id: usize,
        core: HostCtx,
        cfg: OasisConfig,
        placement: BufferPlacement,
        pool: &mut CxlPool,
        ra: &mut RegionAllocator,
    ) -> Self {
        let (tx_area, rx_area) = match placement {
            BufferPlacement::CxlPool => (
                BufferArea::new(
                    ra.alloc(
                        pool,
                        format!("baseline{host}.tx"),
                        cfg.tx_area_per_instance,
                        TrafficClass::Payload,
                    ),
                    cfg.buf_size,
                ),
                BufferArea::new(
                    ra.alloc(
                        pool,
                        format!("baseline{host}.rx"),
                        cfg.rx_area_per_nic,
                        TrafficClass::Payload,
                    ),
                    cfg.buf_size,
                ),
            ),
            BufferPlacement::LocalDdr => {
                // Carve the areas out of local DRAM; `Region` here is only
                // an address-range descriptor (no pool class registration).
                assert!(
                    core.local_size() >= cfg.tx_area_per_instance + cfg.rx_area_per_nic,
                    "host local memory too small for baseline buffer areas"
                );
                let tx = Region {
                    name: format!("baseline{host}.tx.local"),
                    base: 0,
                    size: cfg.tx_area_per_instance,
                    class: TrafficClass::Payload,
                };
                let rx = Region {
                    name: format!("baseline{host}.rx.local"),
                    base: cfg.tx_area_per_instance,
                    size: cfg.rx_area_per_nic,
                    class: TrafficClass::Payload,
                };
                (
                    BufferArea::new(tx, cfg.buf_size),
                    BufferArea::new(rx, cfg.buf_size),
                )
            }
        };
        LocalDriver {
            host,
            nic_id,
            core,
            stats: LocalDriverStats::default(),
            cfg,
            placement,
            tx_area,
            rx_area,
            insts: Vec::new(),
            tx_inflight: DetMap::default(),
            rx_posted: DetMap::default(),
            next_cookie: 0,
        }
    }

    /// The buffer placement mode (Fig. 11 axis).
    pub fn placement(&self) -> BufferPlacement {
        self.placement
    }

    /// Attach a local instance and install its flow rule.
    pub fn attach_instance(&mut self, nic: &mut Nic, inst_idx: usize, ip: Ipv4Addr, tag: u32) {
        nic.add_flow(ip, tag);
        self.insts.push(LocalInst { inst_idx, ip });
    }

    fn mem_ref(&self, addr: u64) -> MemRef {
        match self.placement {
            BufferPlacement::CxlPool => MemRef::Pool(addr),
            BufferPlacement::LocalDdr => MemRef::HostLocal(addr),
        }
    }

    /// Write a frame into a TX buffer with the placement-appropriate
    /// coherence discipline.
    fn write_buf(&mut self, pool: &mut CxlPool, addr: u64, bytes: &[u8]) {
        match self.placement {
            BufferPlacement::CxlPool => {
                self.core.write(pool, addr, bytes);
                for la in lines_covering(addr, bytes.len() as u64) {
                    self.core.clwb(pool, la);
                }
                // SFENCE before the doorbell: the NIC's DMA read must not
                // overtake the posted write-backs (there is no ordering
                // between pool writes and the MMIO doorbell otherwise).
                self.core.mfence(pool);
                self.core.publish_fenced(pool, addr, bytes.len() as u64);
            }
            BufferPlacement::LocalDdr => self.core.local_write(addr, bytes),
        }
    }

    /// Read a frame out of an RX buffer, invalidating pool lines afterward.
    fn read_buf(&mut self, pool: &mut CxlPool, addr: u64, out: &mut [u8]) {
        match self.placement {
            BufferPlacement::CxlPool => {
                self.core.expect_fresh(pool, addr, out.len() as u64);
                self.core.read_stream(pool, addr, out);
                for la in lines_covering(addr, out.len() as u64) {
                    self.core.clflushopt(pool, la);
                }
            }
            BufferPlacement::LocalDdr => self.core.local_read(addr, out),
        }
    }

    /// One polling round: instance TX → NIC, NIC completions → instances.
    /// Returns egress frames for the pod to forward.
    pub fn step(
        &mut self,
        pool: &mut CxlPool,
        nic: &mut Nic,
        instances: &mut [Instance],
    ) -> Vec<(SimTime, Frame)> {
        self.core.advance(self.cfg.driver_loop_ns);

        // Instance TX.
        for slot in 0..self.insts.len() {
            let inst_idx = self.insts[slot].inst_idx;
            instances[inst_idx].tick(self.core.clock);
            for _ in 0..super::engine_net::POLL_BATCH {
                let Some(frame) = instances[inst_idx].pop_tx(self.core.clock) else {
                    break;
                };
                self.core.advance(self.cfg.ipc_cost_ns);
                let Some(buf) = self.tx_area.alloc() else {
                    self.stats.tx_drops += 1;
                    continue;
                };
                let bytes = frame.bytes().to_vec();
                self.write_buf(pool, buf, &bytes);
                let cookie = self.next_cookie;
                self.next_cookie += 1;
                if nic.post_tx(TxDesc {
                    mem: self.mem_ref(buf),
                    len: bytes.len() as u32,
                    cookie,
                }) {
                    self.stats.tx_packets += 1;
                    self.tx_inflight.insert(cookie, buf);
                } else {
                    self.stats.tx_drops += 1;
                    self.tx_area.free(buf);
                }
            }
        }

        // Drive the NIC.
        let clock = self.core.clock;
        let egress = {
            let (local, port, costs) = self.core.dma_parts();
            let mut dma = MixedDma {
                pool,
                local,
                port,
                dma_ddr_ns: costs.dma_ddr_ns,
                dma_cxl_ns: costs.dma_cxl_ns,
            };
            nic.process(clock, &mut dma)
        };

        // Completions.
        for c in nic.poll_tx_completions(self.core.clock) {
            if let Some(buf) = self.tx_inflight.remove(&c.cookie) {
                self.tx_area.free(buf);
            }
        }
        for c in nic.poll_rx_completions(self.core.clock) {
            let addr = match c.mem {
                MemRef::Pool(a) | MemRef::HostLocal(a) => a,
            };
            self.rx_posted.remove(&c.cookie);
            let mut pkt = vec![0u8; c.len as usize];
            self.read_buf(pool, addr, &mut pkt);
            self.rx_area.free(addr);
            let frame = Frame(bytes::Bytes::from(pkt));
            let target = match c.tag {
                Some(tag) => self
                    .insts
                    .iter()
                    .find(|i| instances[i.inst_idx].id == tag)
                    .map(|i| i.inst_idx),
                None => frame
                    .dst_ip()
                    .and_then(|ip| self.insts.iter().find(|i| i.ip == ip))
                    .map(|i| i.inst_idx),
            };
            match target {
                Some(idx) => {
                    self.core.advance(self.cfg.ipc_cost_ns);
                    self.stats.rx_packets += 1;
                    instances[idx].deliver(self.core.clock, &frame);
                }
                None => self.stats.rx_unknown += 1,
            }
        }

        // Keep the RX ring stocked.
        while nic.rx_free_count() < self.cfg.rx_ring_target {
            let Some(buf) = self.rx_area.alloc() else {
                break;
            };
            let cookie = self.next_cookie;
            self.next_cookie += 1;
            self.rx_posted.insert(cookie, buf);
            if !nic.post_rx(RxDesc {
                mem: self.mem_ref(buf),
                capacity: self.rx_area.buf_size() as u32,
                cookie,
            }) {
                self.rx_posted.remove(&cookie);
                self.rx_area.free(buf);
                break;
            }
        }

        egress
    }

    /// Earliest time this driver has real work to do assuming no new
    /// external input: due instance TX/TCP timers, NIC events, or an
    /// under-stocked RX ring. `None` when idle indefinitely. Steps strictly
    /// before this time only advance the polling clock (see [`Pod::run`]'s
    /// idle-skip).
    ///
    /// [`Pod::run`]: crate::pod::Pod::run
    pub fn next_work_time(&self, nic: &Nic, instances: &[Instance]) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |x: SimTime| t = Some(t.map_or(x, |cur: SimTime| cur.min(x)));
        if nic.rx_free_count() < self.cfg.rx_ring_target {
            consider(SimTime::ZERO);
        }
        if let Some(x) = nic.next_event_at() {
            consider(x);
        }
        for li in &self.insts {
            if let Some(x) = instances[li.inst_idx].next_event() {
                consider(x);
            }
        }
        t
    }

    /// How many whole polling-loop iterations from the current clock are
    /// provably idle AND finish strictly before `limit` (the earliest other
    /// component). Each counted iteration would only advance the clock by
    /// `driver_loop_ns`, so the pod may take them in one batch.
    pub fn idle_quanta(&self, nic: &Nic, instances: &[Instance], limit: SimTime) -> u64 {
        let l = self.cfg.driver_loop_ns;
        if l == 0 {
            return 0;
        }
        let c = self.core.clock;
        let work = self
            .next_work_time(nic, instances)
            .unwrap_or(SimTime::MAX)
            .as_nanos();
        // A step from clock v lands at v + l and performs work due at or
        // before v + l; it is idle iff v + l < work.
        if work <= c.as_nanos().saturating_add(l) {
            return 0;
        }
        // Selections happen while the clock stays strictly below `limit`.
        let by_limit = (limit.as_nanos().saturating_sub(c.as_nanos())).div_ceil(l);
        let by_work = (work - c.as_nanos() - 1) / l;
        by_limit.min(by_work)
    }

    /// Advance the polling clock across `quanta` idle loop iterations at
    /// once (the batched form of `quanta` empty [`Self::step`] calls).
    pub fn skip_idle(&mut self, quanta: u64) {
        self.core.advance(quanta * self.cfg.driver_loop_ns);
    }
}

impl Snapshottable for LocalDriver {
    /// The baseline carries both roles in one driver: clock, counters, the
    /// instance table (identity-checked on restore), cookie maps sorted by
    /// cookie, and both buffer-area free lists.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        let s = &self.stats;
        for v in [s.tx_packets, s.tx_drops, s.rx_packets, s.rx_unknown] {
            w.put_u64(v);
        }
        w.put_u64(self.next_cookie);
        w.put_u64(self.insts.len() as u64);
        for i in &self.insts {
            w.put_u64(i.inst_idx as u64);
            w.put_u32(u32::from_le_bytes(i.ip.0));
        }
        let mut cookies: Vec<u64> = self.tx_inflight.keys().copied().collect();
        cookies.sort_unstable();
        w.put_u64(cookies.len() as u64);
        for c in cookies {
            if let Some(&buf) = self.tx_inflight.get(&c) {
                w.put_u64(c);
                w.put_u64(buf);
            }
        }
        let mut cookies: Vec<u64> = self.rx_posted.keys().copied().collect();
        cookies.sort_unstable();
        w.put_u64(cookies.len() as u64);
        for c in cookies {
            if let Some(&buf) = self.rx_posted.get(&c) {
                w.put_u64(c);
                w.put_u64(buf);
            }
        }
        self.tx_area.snapshot_state(w);
        self.rx_area.snapshot_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("baseline clock")?);
        self.stats.tx_packets = r.u64("baseline tx_packets")?;
        self.stats.tx_drops = r.u64("baseline tx_drops")?;
        self.stats.rx_packets = r.u64("baseline rx_packets")?;
        self.stats.rx_unknown = r.u64("baseline rx_unknown")?;
        self.next_cookie = r.u64("baseline next cookie")?;
        let n = r.u64("baseline instance count")?;
        if n != self.insts.len() as u64 {
            return Err(SnapshotError::Corrupt("baseline instance count"));
        }
        for i in &self.insts {
            let idx = r.u64("baseline instance idx")?;
            let ip = Ipv4Addr(r.u32("baseline instance ip")?.to_le_bytes());
            if idx != i.inst_idx as u64 || ip != i.ip {
                return Err(SnapshotError::Corrupt("baseline instance identity"));
            }
        }
        let n = r.u64("baseline tx-inflight count")?;
        self.tx_inflight.clear();
        for _ in 0..n {
            let cookie = r.u64("baseline tx-inflight cookie")?;
            let buf = r.u64("baseline tx-inflight buf")?;
            self.tx_inflight.insert(cookie, buf);
        }
        let n = r.u64("baseline rx-posted count")?;
        self.rx_posted.clear();
        for _ in 0..n {
            let cookie = r.u64("baseline rx-posted cookie")?;
            let buf = r.u64("baseline rx-posted buf")?;
            self.rx_posted.insert(cookie, buf);
        }
        self.tx_area.restore_state(r)?;
        self.rx_area.restore_state(r)?;
        Ok(())
    }
}
