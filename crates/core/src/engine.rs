//! The generic device-engine abstraction.
//!
//! §3.1's central claim is that pooling any PCIe device class decomposes
//! into the same three pieces: a **frontend** driver per consuming host, a
//! **backend** driver per device-attached host, and typed fixed-size
//! descriptors flowing between them over Oasis message channels. This
//! module captures that contract in traits so the pod runtime can step
//! every engine — network, storage, accelerator, and the Junction baseline
//! — through one uniform actor interface instead of per-engine special
//! cases.
//!
//! * [`WireDescriptor`] — a fixed-size command/completion codec whose wire
//!   size sizes the channel slots (16 B net descriptors, 64 B NVMe-style
//!   and accel descriptors).
//! * [`DeviceEngine`] — a polling core with a local clock: the scheduler
//!   asks [`DeviceEngine::next_time`], dispatches [`DeviceEngine::poll`],
//!   and routes host-level faults through [`DeviceEngine::on_fault`].
//! * [`EngineFrontend`] / [`EngineBackend`] — marker subtraits binding an
//!   engine's command/completion descriptor types, documenting which side
//!   of the channel a driver lives on.
//!
//! [`EngineWorld`] is the slice of pod state an engine may touch during a
//! poll: the pool, the instances, and the device tables. Everything else
//! (switch, endpoints, allocator) is reached only through frames and
//! channel messages, which is what keeps the engines composable.

use oasis_cxl::{CxlPool, HostCtx};
use oasis_net::addr::MacAddr;
use oasis_net::nic::Nic;
use oasis_net::packet::Frame;
use oasis_sim::time::SimTime;

use oasis_accel::AccelDevice;
use oasis_storage::ssd::Ssd;

use crate::baseline::LocalDriver;
use crate::engine_net::{BackendDriver, FrontendDriver};
use crate::engine_storage::{StorageBackend, StorageFrontend};
use crate::instance::Instance;
use crate::metrics as m;

/// A fixed-size descriptor that travels through an Oasis message channel.
///
/// The wire size doubles as the channel slot size (see
/// [`crate::datapath::alloc_descriptor_channel`]), so a frontend/backend
/// pair agrees on the layout by construction. Encodings must leave the
/// final byte's MSB clear — the channel uses it as the epoch bit.
pub trait WireDescriptor: Sized {
    /// Encoded size in bytes; equals the channel slot size.
    const WIRE_SIZE: usize;
    /// Encode into `buf` (exactly `WIRE_SIZE` bytes).
    fn encode_into(&self, buf: &mut [u8]);
    /// Decode from `buf`; `None` when the bytes are not this descriptor.
    fn decode_from(buf: &[u8]) -> Option<Self>;
}

/// Compile-time wire-contract checks for a [`WireDescriptor`] impl: the
/// descriptor must fit in one 64 B cache line, divide it evenly (so slots
/// never straddle lines), and be at least a word wide. Every impl below is
/// paired with one of these blocks; `oasis-check` enforces the pairing.
macro_rules! assert_wire_size {
    ($t:ty) => {
        const _: () = {
            assert!(<$t as WireDescriptor>::WIRE_SIZE <= 64);
            assert!(64 % <$t as WireDescriptor>::WIRE_SIZE == 0);
            assert!(<$t as WireDescriptor>::WIRE_SIZE >= 8);
        };
    };
}

impl WireDescriptor for crate::msg::NetMsg {
    const WIRE_SIZE: usize = oasis_channel::MSG16;
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "encode buffer too small");
        buf[..16].copy_from_slice(&self.encode());
    }
    fn decode_from(buf: &[u8]) -> Option<Self> {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "decode buffer too small");
        Self::decode(buf[..16].try_into().ok()?)
    }
}
assert_wire_size!(crate::msg::NetMsg);

impl WireDescriptor for oasis_storage::command::NvmeCommand {
    const WIRE_SIZE: usize = oasis_channel::MSG64;
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "encode buffer too small");
        buf[..64].copy_from_slice(&self.encode());
    }
    fn decode_from(buf: &[u8]) -> Option<Self> {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "decode buffer too small");
        Self::decode(buf[..64].try_into().ok()?)
    }
}
assert_wire_size!(oasis_storage::command::NvmeCommand);

impl WireDescriptor for oasis_storage::command::NvmeCompletion {
    const WIRE_SIZE: usize = oasis_channel::MSG64;
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "encode buffer too small");
        buf[..64].copy_from_slice(&self.encode());
    }
    fn decode_from(buf: &[u8]) -> Option<Self> {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "decode buffer too small");
        Self::decode(buf[..64].try_into().ok()?)
    }
}
assert_wire_size!(oasis_storage::command::NvmeCompletion);

impl WireDescriptor for oasis_accel::AccelCommand {
    const WIRE_SIZE: usize = oasis_channel::MSG64;
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "encode buffer too small");
        buf[..64].copy_from_slice(&self.encode());
    }
    fn decode_from(buf: &[u8]) -> Option<Self> {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "decode buffer too small");
        Self::decode(buf[..64].try_into().ok()?)
    }
}
assert_wire_size!(oasis_accel::AccelCommand);

impl WireDescriptor for oasis_accel::AccelCompletion {
    const WIRE_SIZE: usize = oasis_channel::MSG64;
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "encode buffer too small");
        buf[..64].copy_from_slice(&self.encode());
    }
    fn decode_from(buf: &[u8]) -> Option<Self> {
        debug_assert!(buf.len() >= Self::WIRE_SIZE, "decode buffer too small");
        Self::decode(buf[..64].try_into().ok()?)
    }
}
assert_wire_size!(oasis_accel::AccelCompletion);

/// A host-level fault delivered to every engine core on the affected host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFault {
    /// The host crashed: the engine's core stops polling (the pod marks the
    /// host dead and parks the actor; caches are dropped).
    HostCrash,
    /// The host booted again: cold caches, clock bumped to the restart
    /// time; engines with in-flight state replay it.
    HostRestart,
}

/// The slice of pod state an engine may touch while polling.
pub struct EngineWorld<'a> {
    /// The shared CXL memory pool.
    pub pool: &'a mut CxlPool,
    /// All instances in the pod (frontends deliver into / drain from
    /// instances on their own host).
    pub instances: &'a mut Vec<Instance>,
    /// MAC address of each NIC (frontends stamp outbound frames).
    pub nic_macs: &'a [MacAddr],
    /// The pod's NICs (net backends drive `nics[self.nic_id]`).
    pub nics: &'a mut [Nic],
    /// The pod's SSDs (storage backends drive `ssds[self.ssd_id]`).
    pub ssds: &'a mut [Ssd],
    /// The pod's accelerators (accel backends drive `accels[self.dev_id]`).
    pub accels: &'a mut [AccelDevice],
}

/// A polling engine core the pod runtime schedules as one actor.
///
/// The contract with the scheduler:
///
/// * [`next_time`](Self::next_time) is monotone — polling never rewinds the
///   core's clock, though faults may jump it forward.
/// * [`poll`](Self::poll) runs one driver loop iteration at the core's
///   clock and returns any frames to inject into the switch (tagged with
///   their egress times); non-NIC engines return none.
/// * [`on_fault`](Self::on_fault) is invoked *after* the pod has dropped
///   the core's cache and bumped its clock, so recovery work (e.g. command
///   replay) executes at the post-fault clock.
///
/// Every engine is also [`Snapshottable`](crate::snapshot::Snapshottable):
/// its logical state (clock, counters, queues, in-flight descriptors,
/// retry/dedup sequence state) serializes byte-stably, which is what makes
/// pod checkpoints and instance migration (DESIGN.md §15) possible without
/// per-engine special cases.
pub trait DeviceEngine: crate::snapshot::Snapshottable {
    /// The host this core polls on.
    fn host(&self) -> usize;
    /// The polling core's memory context.
    fn core(&self) -> &HostCtx;
    /// Mutable access to the polling core's memory context.
    fn core_mut(&mut self) -> &mut HostCtx;

    /// When this engine next wants to run (its local clock).
    fn next_time(&self) -> SimTime {
        self.core().clock
    }

    /// The NIC whose port carries this engine's emitted frames, if any.
    fn egress_nic(&self) -> Option<usize> {
        None
    }

    /// Run one driver-loop iteration; returns frames for the switch.
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)>;

    /// A host-level fault reached this engine's host.
    fn on_fault(&mut self, _fault: EngineFault, _pool: &mut CxlPool) {}

    /// Fast-forward through provable idleness: if the engine can show no
    /// useful work exists strictly before `limit`, it may advance its clock
    /// in driver-loop quanta and return `true`. Engines that always do
    /// per-iteration bookkeeping return `false` and poll normally.
    fn try_idle_skip(&mut self, _nics: &[Nic], _instances: &[Instance], _limit: SimTime) -> bool {
        false
    }

    /// Export this engine's lifetime tallies into `sink` under the names
    /// registered in [`crate::metrics`]. Always compiled — the figure
    /// binaries source their numbers from the resulting snapshots with
    /// `obs` both on and off — and pure-observer: exporting must not
    /// change engine state or timing. Engines also export their polling
    /// core's memory-system counters via
    /// [`oasis_cxl::obs::export_host_metrics`] so every core reports cache
    /// behaviour uniformly.
    fn on_metrics(&self, _sink: &mut oasis_obs::MetricSink) {}
}

/// A frontend driver: the per-consuming-host half of an engine. Encodes
/// `Command` descriptors toward the backend and decodes `Completion`s.
pub trait EngineFrontend: DeviceEngine {
    /// Descriptor sent frontend → backend.
    type Command: WireDescriptor;
    /// Descriptor sent backend → frontend.
    type Completion: WireDescriptor;
    /// Engine name (diagnostics, channel naming).
    const ENGINE: &'static str;
}

/// A backend driver: the per-device-host half of an engine. Decodes
/// `Command` descriptors and answers with `Completion`s.
pub trait EngineBackend: DeviceEngine {
    /// Descriptor sent frontend → backend.
    type Command: WireDescriptor;
    /// Descriptor sent backend → frontend.
    type Completion: WireDescriptor;
    /// Engine name (diagnostics, channel naming).
    const ENGINE: &'static str;
    /// Index of the device this backend drives, in its device table.
    fn device(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Network engine (§3.3)
// ---------------------------------------------------------------------------

impl DeviceEngine for FrontendDriver {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)> {
        self.step(world.pool, world.instances, world.nic_macs);
        Vec::new()
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        let t = self.host as u32;
        sink.set(m::NET_FE_TX_PACKETS, t, self.stats.tx_packets);
        sink.set(m::NET_FE_TX_DROP_NOBUF, t, self.stats.tx_drop_nobuf);
        sink.set(m::NET_FE_TX_DROP_CHANNEL, t, self.stats.tx_drop_channel);
        sink.set(m::NET_FE_TX_POLICED, t, self.stats.tx_policed);
        sink.set(m::NET_FE_RX_PACKETS, t, self.stats.rx_packets);
        sink.set(m::NET_FE_RX_UNKNOWN, t, self.stats.rx_unknown);
        sink.set(m::NET_FE_REROUTES, t, self.stats.reroutes);
        sink.set(m::NET_FE_MIGRATIONS, t, self.stats.migrations);
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

impl EngineFrontend for FrontendDriver {
    type Command = crate::msg::NetMsg;
    type Completion = crate::msg::NetMsg;
    const ENGINE: &'static str = "net";
}

impl DeviceEngine for BackendDriver {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn egress_nic(&self) -> Option<usize> {
        Some(self.nic_id)
    }
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)> {
        self.step(world.pool, &mut world.nics[self.nic_id])
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        let t = self.nic_id as u32;
        sink.set(m::NET_BE_TX_POSTED, t, self.stats.tx_posted);
        sink.set(m::NET_BE_TX_DROP_FULL, t, self.stats.tx_drop_full);
        sink.set(m::NET_BE_RX_FORWARDED, t, self.stats.rx_forwarded);
        sink.set(m::NET_BE_RX_TAG_MISS, t, self.stats.rx_tag_miss);
        sink.set(m::NET_BE_RX_UNKNOWN, t, self.stats.rx_unknown);
        sink.set(m::NET_BE_RX_DROP_CHANNEL, t, self.stats.rx_drop_channel);
        sink.set(m::NET_BE_FAILURES_REPORTED, t, self.stats.failures_reported);
        sink.set(m::NET_BE_TELEMETRY_SENT, t, self.stats.telemetry_sent);
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

impl EngineBackend for BackendDriver {
    type Command = crate::msg::NetMsg;
    type Completion = crate::msg::NetMsg;
    const ENGINE: &'static str = "net";
    fn device(&self) -> usize {
        self.nic_id
    }
}

// ---------------------------------------------------------------------------
// Junction-style baseline (one combined driver, local NIC)
// ---------------------------------------------------------------------------

impl DeviceEngine for LocalDriver {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn egress_nic(&self) -> Option<usize> {
        Some(self.nic_id)
    }
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)> {
        self.step(world.pool, &mut world.nics[self.nic_id], world.instances)
    }
    fn try_idle_skip(&mut self, nics: &[Nic], instances: &[Instance], limit: SimTime) -> bool {
        let quanta = self.idle_quanta(&nics[self.nic_id], instances, limit);
        if quanta > 0 {
            self.skip_idle(quanta);
            true
        } else {
            false
        }
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        let t = self.host as u32;
        sink.set(m::LOCAL_TX_PACKETS, t, self.stats.tx_packets);
        sink.set(m::LOCAL_TX_DROPS, t, self.stats.tx_drops);
        sink.set(m::LOCAL_RX_PACKETS, t, self.stats.rx_packets);
        sink.set(m::LOCAL_RX_UNKNOWN, t, self.stats.rx_unknown);
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

// ---------------------------------------------------------------------------
// Storage engine (§3.4)
// ---------------------------------------------------------------------------

impl DeviceEngine for StorageFrontend {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)> {
        self.step(world.pool);
        Vec::new()
    }
    fn on_fault(&mut self, fault: EngineFault, pool: &mut CxlPool) {
        // §3.4: after a host restart, commands that were in flight when the
        // host crashed are replayed; the backend's dedup window answers
        // duplicates it already executed.
        if fault == EngineFault::HostRestart {
            self.replay_pending(pool);
        }
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        let t = self.host as u32;
        sink.set(m::STORAGE_FE_SUBMITTED, t, self.stats.submitted);
        sink.set(m::STORAGE_FE_COMPLETED, t, self.stats.completed);
        sink.set(m::STORAGE_FE_ERRORS, t, self.stats.errors);
        sink.set(m::STORAGE_FE_REFUSED, t, self.stats.refused);
        sink.set(m::STORAGE_FE_RETRIES, t, self.stats.retries);
        sink.set(m::STORAGE_FE_RETRY_EXHAUSTED, t, self.stats.retry_exhausted);
        sink.set(m::STORAGE_FE_INFLIGHT, t, self.in_flight() as u64);
        #[cfg(feature = "obs")]
        sink.merge_hist(m::STORAGE_FE_SERVICE_NS, t, self.service_hist());
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

impl EngineFrontend for StorageFrontend {
    type Command = oasis_storage::command::NvmeCommand;
    type Completion = oasis_storage::command::NvmeCompletion;
    const ENGINE: &'static str = "storage";
}

impl DeviceEngine for StorageBackend {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn poll(&mut self, world: &mut EngineWorld) -> Vec<(SimTime, Frame)> {
        self.step(world.pool, &mut world.ssds[self.ssd_id]);
        Vec::new()
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        let t = self.ssd_id as u32;
        sink.set(m::STORAGE_BE_FORWARDED, t, self.stats.forwarded);
        sink.set(m::STORAGE_BE_SQ_FULL, t, self.stats.sq_full);
        sink.set(m::STORAGE_BE_COMPLETIONS, t, self.stats.completions);
        sink.set(
            m::STORAGE_BE_REPLAYS_ANSWERED,
            t,
            self.stats.replays_answered,
        );
        sink.set(oasis_channel::metrics::DEDUP_DROPS, t, self.dedup_drops());
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

impl EngineBackend for StorageBackend {
    type Command = oasis_storage::command::NvmeCommand;
    type Completion = oasis_storage::command::NvmeCompletion;
    const ENGINE: &'static str = "storage";
    fn device(&self) -> usize {
        self.ssd_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_match_channel_slots() {
        assert_eq!(<crate::msg::NetMsg as WireDescriptor>::WIRE_SIZE, 16);
        assert_eq!(
            <oasis_storage::command::NvmeCommand as WireDescriptor>::WIRE_SIZE,
            64
        );
        assert_eq!(<oasis_accel::AccelCommand as WireDescriptor>::WIRE_SIZE, 64);
    }

    #[test]
    fn trait_codec_roundtrips() {
        let cmd = oasis_accel::AccelCommand {
            op: oasis_accel::AccelOp::Checksum,
            cid: 12,
            arg: 0,
            input_ptr: 4096,
            output_ptr: 8192,
            input_len: 64,
            frontend: 1,
        };
        let mut buf = [0u8; 64];
        cmd.encode_into(&mut buf);
        assert_eq!(oasis_accel::AccelCommand::decode_from(&buf), Some(cmd));
        // A completion does not decode as a command.
        let comp = oasis_accel::AccelCompletion {
            cid: 12,
            status: oasis_accel::AccelStatus::Success,
            result: 7,
            frontend: 1,
        };
        comp.encode_into(&mut buf);
        assert_eq!(oasis_accel::AccelCommand::decode_from(&buf), None);
        assert_eq!(oasis_accel::AccelCompletion::decode_from(&buf), Some(comp));
    }
}
