//! The Oasis network engine (§3.3).
//!
//! * [`frontend::FrontendDriver`] — one per host; bridges local instances'
//!   packet I/O (IPC rings) to backend drivers over Oasis message channels.
//!   Owns per-instance TX buffer areas in shared CXL memory, performs the
//!   frontend-side coherence operations (write-back TX buffers, invalidate
//!   consumed RX buffers), the RX security copy into instance memory
//!   (§3.3.2), failover rerouting with MAC borrowing (§3.3.3), and graceful
//!   migration (§3.3.4).
//! * [`backend::BackendDriver`] — one per NIC-attached host; drives the
//!   NIC's queue pairs through its native driver interface, forwards TX/RX
//!   and completions, keeps the RX ring stocked from the per-NIC RX buffer
//!   area, monitors link status, and reports telemetry. It never inspects
//!   I/O buffers except for the flow-tag-miss fallback (§3.3.1 fn. 6),
//!   after which it invalidates what it read.
//!
//! Each driver dedicates one busy-polling core (`HostCtx`), as the paper's
//! implementation does (§3.3).

pub mod backend;
pub mod frontend;

pub use backend::BackendDriver;
pub use frontend::FrontendDriver;

/// Per-step batch limit for channel drains; bounds the work one polling
/// round can do, like the paper's driver loop.
pub const POLL_BATCH: usize = 64;
