//! The network-engine backend driver (§3.3).

use oasis_channel::{Receiver, Sender};
use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_cxl::{lines_covering, CxlPool, HostCtx};
use oasis_net::addr::Ipv4Addr;
use oasis_net::nic::{Nic, RxDesc, TxDesc};
use oasis_net::packet::Frame;
use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;

use crate::config::OasisConfig;
use crate::datapath::BufferArea;
use crate::msg::{NetMsg, NetOp};
use crate::snapshot::Snapshottable;

use super::POLL_BATCH;

/// Backend counters.
#[derive(Clone, Debug, Default)]
pub struct BackendStats {
    /// TX descriptors posted to the NIC.
    pub tx_posted: u64,
    /// TX requests dropped (NIC queue full).
    pub tx_drop_full: u64,
    /// RX packets forwarded to frontends.
    pub rx_forwarded: u64,
    /// RX packets whose flow tag missed and required payload inspection
    /// (§3.3.1 footnote 6).
    pub rx_tag_miss: u64,
    /// RX packets dropped: destination instance unknown.
    pub rx_unknown: u64,
    /// RX packets dropped: frontend channel full.
    pub rx_drop_channel: u64,
    /// Link-failure reports sent to the allocator.
    pub failures_reported: u64,
    /// Telemetry records sent.
    pub telemetry_sent: u64,
}

#[derive(Clone, Copy, Debug)]
struct Registration {
    ip: Ipv4Addr,
    tag: u32,
    fe_host: usize,
}

/// DMA context the backend builds per step: all Oasis I/O buffers live in
/// the pool.
struct PoolDma<'a> {
    pool: &'a mut CxlPool,
    port: oasis_cxl::pool::PortId,
    dma_cxl_ns: u64,
}

impl DmaMemory for PoolDma<'_> {
    fn dma_read(&mut self, now: SimTime, mem: MemRef, out: &mut [u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_read(now, self.port, a, out),
            MemRef::HostLocal(_) => {
                // Oasis-mode buffers live in the pool by construction; a
                // local ref here is a wiring bug, surfaced in debug builds
                // and answered with zeroes in release.
                debug_assert!(false, "oasis buffers live in the pool");
                out.fill(0);
            }
        }
    }
    fn dma_write(&mut self, now: SimTime, mem: MemRef, data: &[u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_write(now, self.port, a, data),
            MemRef::HostLocal(_) => {
                // See dma_read: a local ref cannot occur; drop the write
                // rather than crash the pod.
                debug_assert!(false, "oasis buffers live in the pool");
            }
        }
    }
    fn dma_latency_ns(&self, _mem: MemRef) -> u64 {
        self.dma_cxl_ns
    }
}

/// One channel link to a frontend driver.
struct FrontendLink {
    fe_host: usize,
    to: Sender,
    from: Receiver,
}

/// The backend driver: runs only on hosts with a local NIC (§3.3), one
/// dedicated busy-polling core.
pub struct BackendDriver {
    /// The NIC this backend drives.
    pub nic_id: usize,
    /// The host the NIC (and this backend) is attached to.
    pub host: usize,
    /// The dedicated polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: BackendStats,
    cfg: OasisConfig,
    rx_area: BufferArea,
    links: Vec<FrontendLink>,
    to_alloc: Sender,
    from_alloc: Receiver,
    registrations: Vec<Registration>,
    /// Cookie → (buffer, instance ip, frontend host) for in-flight TX.
    tx_inflight: DetMap<u64, (u64, Ipv4Addr, usize)>,
    next_cookie: u64,
    /// Cookie → buffer for posted RX descriptors.
    rx_posted: DetMap<u64, u64>,
    next_link_check: SimTime,
    next_telemetry: SimTime,
    link_failure_reported: bool,
    bytes_at_last_telemetry: u64,
}

impl BackendDriver {
    /// Create a backend for `nic_id` on `host` with its per-NIC RX buffer
    /// area and allocator channel pair.
    pub fn new(
        nic_id: usize,
        host: usize,
        core: HostCtx,
        cfg: OasisConfig,
        rx_area: BufferArea,
        to_alloc: Sender,
        from_alloc: Receiver,
    ) -> Self {
        BackendDriver {
            nic_id,
            host,
            core,
            stats: BackendStats::default(),
            cfg,
            rx_area,
            links: Vec::new(),
            to_alloc,
            from_alloc,
            registrations: Vec::new(),
            tx_inflight: DetMap::default(),
            next_cookie: 0,
            rx_posted: DetMap::default(),
            next_link_check: SimTime::ZERO,
            next_telemetry: SimTime::ZERO,
            link_failure_reported: false,
            bytes_at_last_telemetry: 0,
        }
    }

    /// Wire a channel pair to a frontend driver (pod boot).
    pub fn add_frontend_link(&mut self, fe_host: usize, to: Sender, from: Receiver) {
        self.links.push(FrontendLink { fe_host, to, from });
    }

    /// Register an instance with this backend: allocate a flow tag and
    /// install the NIC flow rule so RX packets are matched without payload
    /// inspection (§3.3.1). Called at instance launch — including for the
    /// backup NIC, so failover needs no registration step (§3.3.3).
    pub fn register_instance(&mut self, nic: &mut Nic, ip: Ipv4Addr, tag: u32, fe_host: usize) {
        self.registrations.retain(|r| r.ip != ip);
        self.registrations.push(Registration { ip, tag, fe_host });
        nic.add_flow(ip, tag);
    }

    /// Remove an instance's registration (graceful migration completion).
    pub fn unregister_instance(&mut self, nic: &mut Nic, ip: Ipv4Addr) {
        self.registrations.retain(|r| r.ip != ip);
        nic.remove_flow(ip);
    }

    /// Registered instance count.
    pub fn registration_count(&self) -> usize {
        self.registrations.len()
    }

    /// Clear the reported-failure latch after repair (operator action).
    pub fn clear_failure_latch(&mut self) {
        self.link_failure_reported = false;
    }

    fn find_by_tag(&self, tag: u32) -> Option<Registration> {
        self.registrations.iter().copied().find(|r| r.tag == tag)
    }

    fn find_by_ip(&self, ip: Ipv4Addr) -> Option<Registration> {
        self.registrations.iter().copied().find(|r| r.ip == ip)
    }

    fn link_idx(&self, fe_host: usize) -> Option<usize> {
        self.links.iter().position(|l| l.fe_host == fe_host)
    }

    /// One busy-polling round. Drains frontend channels into the NIC,
    /// services NIC completions, keeps the RX ring stocked, monitors link
    /// state, and reports telemetry. Returns frames put on the wire as
    /// `(egress_time, frame)` for the pod to forward through the switch.
    pub fn step(&mut self, pool: &mut CxlPool, nic: &mut Nic) -> Vec<(SimTime, Frame)> {
        self.core.advance(self.cfg.driver_loop_ns);
        let mut buf16 = [0u8; 16];

        // 1. Frontend channels: TX requests, RX completions, migrations.
        for li in 0..self.links.len() {
            for _ in 0..POLL_BATCH {
                let got = self.links[li]
                    .from
                    .try_recv(&mut self.core, pool, &mut buf16);
                if !got {
                    break;
                }
                let Some(msg) = NetMsg::decode(&buf16) else {
                    continue;
                };
                match msg.op {
                    NetOp::Tx => {
                        // Post the WQE with the buffer pointer; never read
                        // the payload (§3.2.1).
                        let cookie = self.next_cookie;
                        self.next_cookie += 1;
                        let ok = nic.post_tx(TxDesc {
                            mem: MemRef::Pool(msg.ptr),
                            len: msg.size as u32,
                            cookie,
                        });
                        if ok {
                            self.stats.tx_posted += 1;
                            self.tx_inflight
                                .insert(cookie, (msg.ptr, msg.ip, self.links[li].fe_host));
                        } else {
                            self.stats.tx_drop_full += 1;
                            // Complete immediately so the buffer is freed.
                            let fe = self.links[li].fe_host;
                            self.send_tx_complete(pool, fe, msg.ptr, msg.ip);
                        }
                    }
                    NetOp::RxComplete => {
                        self.rx_area.free(msg.ptr);
                    }
                    NetOp::Register => {
                        // Graceful-migration registration (§3.3.4); the
                        // frontend is identified by the channel it used.
                        let fe_host = self.links[li].fe_host;
                        self.register_instance(nic, msg.ip, msg.size as u32, fe_host);
                    }
                    NetOp::Unregister => {
                        self.unregister_instance(nic, msg.ip);
                    }
                    _ => {}
                }
            }
        }

        // 2. Drive the NIC (DMA engine, serialization).
        let egress = {
            let mut dma = PoolDma {
                pool,
                port: self.core.port,
                dma_cxl_ns: self.core.costs.dma_cxl_ns,
            };
            nic.process(self.core.clock, &mut dma)
        };

        // 3. TX completions → frontends.
        for c in nic.poll_tx_completions(self.core.clock) {
            if let Some((ptr, ip, fe_host)) = self.tx_inflight.remove(&c.cookie) {
                self.send_tx_complete(pool, fe_host, ptr, ip);
            }
        }

        // 4. RX completions → frontends.
        for c in nic.poll_rx_completions(self.core.clock) {
            let MemRef::Pool(ptr) = c.mem else { continue };
            self.rx_posted.remove(&c.cookie);
            let reg = match c.tag {
                Some(tag) => self.find_by_tag(tag),
                None => {
                    // Flow-tag miss: inspect the headers, then invalidate
                    // the lines we pulled into this core's cache (§3.3.1
                    // footnote 6). ARP requests (broadcast, no IP header)
                    // route by their target protocol address.
                    self.stats.rx_tag_miss += 1;
                    let mut hdr = [0u8; 42];
                    let n = (c.len as usize).min(42);
                    self.core.read(pool, ptr, &mut hdr[..n]);
                    for la in lines_covering(ptr, n as u64) {
                        self.core.clflushopt(pool, la);
                    }
                    let ethertype = u16::from_be_bytes([hdr[12], hdr[13]]);
                    let dst = if ethertype == oasis_net::packet::ETHERTYPE_ARP && n >= 42 {
                        Ipv4Addr([hdr[38], hdr[39], hdr[40], hdr[41]])
                    } else {
                        Ipv4Addr([hdr[30], hdr[31], hdr[32], hdr[33]])
                    };
                    self.find_by_ip(dst)
                }
            };
            match reg {
                Some(reg) => {
                    let msg = NetMsg {
                        ptr,
                        size: c.len as u16,
                        op: NetOp::Rx,
                        ip: reg.ip,
                    };
                    let Some(li) = self.link_idx(reg.fe_host) else {
                        self.rx_area.free(ptr);
                        self.stats.rx_unknown += 1;
                        continue;
                    };
                    let link = &mut self.links[li];
                    if link
                        .to
                        .try_send(&mut self.core, pool, &msg.encode())
                        .unwrap_or(false)
                    {
                        self.stats.rx_forwarded += 1;
                    } else {
                        self.stats.rx_drop_channel += 1;
                        self.rx_area.free(ptr);
                    }
                }
                None => {
                    self.stats.rx_unknown += 1;
                    self.rx_area.free(ptr);
                }
            }
        }

        // 5. Keep the RX ring stocked from the per-NIC RX area.
        while nic.rx_free_count() < self.cfg.rx_ring_target {
            let Some(buf) = self.rx_area.alloc() else {
                break;
            };
            let cookie = self.next_cookie;
            self.next_cookie += 1;
            self.rx_posted.insert(cookie, buf);
            if !nic.post_rx(RxDesc {
                mem: MemRef::Pool(buf),
                capacity: self.rx_area.buf_size() as u32,
                cookie,
            }) {
                self.rx_posted.remove(&cookie);
                self.rx_area.free(buf);
                break;
            }
        }

        // 6. Link monitoring (§3.3.3): detect hardware faults, cable
        // disconnections, and switch linecard issues via link status.
        if self.core.clock >= self.next_link_check {
            self.next_link_check = self.core.clock + self.cfg.link_check_period;
            if !nic.link_up() && !self.link_failure_reported {
                self.link_failure_reported = true;
                self.stats.failures_reported += 1;
                let msg = NetMsg {
                    ptr: self.nic_id as u64,
                    size: 0,
                    op: NetOp::LinkFailed,
                    ip: Ipv4Addr::UNSPECIFIED,
                };
                let _ = self.to_alloc.try_send(&mut self.core, pool, &msg.encode());
            }
        }

        // 7. Telemetry every 100 ms (§3.5).
        if self.core.clock >= self.next_telemetry {
            self.next_telemetry = self.core.clock + self.cfg.telemetry_period;
            let total = nic.stats.tx_bytes + nic.stats.rx_bytes;
            let delta = total - self.bytes_at_last_telemetry;
            self.bytes_at_last_telemetry = total;
            self.stats.telemetry_sent += 1;
            let msg = NetMsg {
                ptr: delta,
                size: nic.link_up() as u16,
                op: NetOp::Telemetry,
                ip: Ipv4Addr::from_u32(self.nic_id as u32),
            };
            let _ = self.to_alloc.try_send(&mut self.core, pool, &msg.encode());
        }

        // 8. Flush partial channel lines; publish consumed counters.
        for link in &mut self.links {
            link.to.flush(&mut self.core, pool);
            link.from.publish_consumed(&mut self.core, pool);
        }
        self.to_alloc.flush(&mut self.core, pool);
        self.from_alloc.publish_consumed(&mut self.core, pool);

        egress
    }

    /// Debug view of per-frontend channel counters:
    /// `(fe_host, messages_sent, messages_received)`.
    pub fn channel_debug(&self) -> Vec<(usize, u64, u64)> {
        self.links
            .iter()
            .map(|l| (l.fe_host, l.to.sent(), l.from.consumed()))
            .collect()
    }

    fn send_tx_complete(&mut self, pool: &mut CxlPool, fe_host: usize, ptr: u64, ip: Ipv4Addr) {
        let msg = NetMsg {
            ptr,
            size: 0,
            op: NetOp::TxComplete,
            ip,
        };
        if let Some(li) = self.link_idx(fe_host) {
            let link = &mut self.links[li];
            let _ = link.to.try_send(&mut self.core, pool, &msg.encode());
        }
    }
}

impl Snapshottable for BackendDriver {
    /// Serialized per-NIC state: clock and timers, counters, the flow
    /// registration table, in-flight TX / posted RX cookie maps (sorted by
    /// cookie — `DetMap` iteration order is not the byte order), and the RX
    /// free list.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        w.put_u64(self.next_link_check.as_nanos());
        w.put_u64(self.next_telemetry.as_nanos());
        let s = &self.stats;
        for v in [
            s.tx_posted,
            s.tx_drop_full,
            s.rx_forwarded,
            s.rx_tag_miss,
            s.rx_unknown,
            s.rx_drop_channel,
            s.failures_reported,
            s.telemetry_sent,
        ] {
            w.put_u64(v);
        }
        w.put_bool(self.link_failure_reported);
        w.put_u64(self.bytes_at_last_telemetry);
        w.put_u64(self.next_cookie);
        w.put_u64(self.registrations.len() as u64);
        for reg in &self.registrations {
            w.put_u32(u32::from_le_bytes(reg.ip.0));
            w.put_u32(reg.tag);
            w.put_u64(reg.fe_host as u64);
        }
        let mut cookies: Vec<u64> = self.tx_inflight.keys().copied().collect();
        cookies.sort_unstable();
        w.put_u64(cookies.len() as u64);
        for c in cookies {
            if let Some(&(ptr, ip, fe_host)) = self.tx_inflight.get(&c) {
                w.put_u64(c);
                w.put_u64(ptr);
                w.put_u32(u32::from_le_bytes(ip.0));
                w.put_u64(fe_host as u64);
            }
        }
        let mut cookies: Vec<u64> = self.rx_posted.keys().copied().collect();
        cookies.sort_unstable();
        w.put_u64(cookies.len() as u64);
        for c in cookies {
            if let Some(&buf) = self.rx_posted.get(&c) {
                w.put_u64(c);
                w.put_u64(buf);
            }
        }
        self.rx_area.snapshot_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.core.clock = SimTime(r.u64("net-be clock")?);
        self.next_link_check = SimTime(r.u64("net-be link-check timer")?);
        self.next_telemetry = SimTime(r.u64("net-be telemetry timer")?);
        self.stats.tx_posted = r.u64("net-be tx_posted")?;
        self.stats.tx_drop_full = r.u64("net-be tx_drop_full")?;
        self.stats.rx_forwarded = r.u64("net-be rx_forwarded")?;
        self.stats.rx_tag_miss = r.u64("net-be rx_tag_miss")?;
        self.stats.rx_unknown = r.u64("net-be rx_unknown")?;
        self.stats.rx_drop_channel = r.u64("net-be rx_drop_channel")?;
        self.stats.failures_reported = r.u64("net-be failures_reported")?;
        self.stats.telemetry_sent = r.u64("net-be telemetry_sent")?;
        self.link_failure_reported = r.bool("net-be failure latch")?;
        self.bytes_at_last_telemetry = r.u64("net-be telemetry bytes")?;
        self.next_cookie = r.u64("net-be next cookie")?;
        let n = r.u64("net-be registration count")?;
        self.registrations.clear();
        for _ in 0..n {
            let ip = Ipv4Addr(r.u32("net-be registration ip")?.to_le_bytes());
            let tag = r.u32("net-be registration tag")?;
            let fe_host = r.u64("net-be registration fe")? as usize;
            self.registrations.push(Registration { ip, tag, fe_host });
        }
        let n = r.u64("net-be tx-inflight count")?;
        self.tx_inflight.clear();
        for _ in 0..n {
            let cookie = r.u64("net-be tx-inflight cookie")?;
            let ptr = r.u64("net-be tx-inflight buf")?;
            let ip = Ipv4Addr(r.u32("net-be tx-inflight ip")?.to_le_bytes());
            let fe_host = r.u64("net-be tx-inflight fe")? as usize;
            self.tx_inflight.insert(cookie, (ptr, ip, fe_host));
        }
        let n = r.u64("net-be rx-posted count")?;
        self.rx_posted.clear();
        for _ in 0..n {
            let cookie = r.u64("net-be rx-posted cookie")?;
            let buf = r.u64("net-be rx-posted buf")?;
            self.rx_posted.insert(cookie, buf);
        }
        self.rx_area.restore_state(r)?;
        Ok(())
    }
}
