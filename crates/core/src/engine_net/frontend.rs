//! The network-engine frontend driver (§3.3).

use oasis_channel::{Receiver, Sender};
use oasis_cxl::{lines_covering, CxlPool, HostCtx};
use oasis_net::addr::Ipv4Addr;
use oasis_net::packet::Frame;
use oasis_sim::time::{SimDuration, SimTime};

use crate::config::OasisConfig;
use crate::datapath::BufferArea;
use crate::instance::Instance;
use crate::msg::{NetMsg, NetOp};
use crate::snapshot::Snapshottable;

use super::POLL_BATCH;

/// Frontend counters.
#[derive(Clone, Debug, Default)]
pub struct FrontendStats {
    /// TX packets forwarded to backends.
    pub tx_packets: u64,
    /// TX packets dropped: no free TX buffer.
    pub tx_drop_nobuf: u64,
    /// TX packets dropped: channel full.
    pub tx_drop_channel: u64,
    /// TX packets policed: over the instance's bandwidth lease.
    pub tx_policed: u64,
    /// RX packets copied to instances.
    pub rx_packets: u64,
    /// RX packets for unknown instances.
    pub rx_unknown: u64,
    /// Reroute commands handled (failover).
    pub reroutes: u64,
    /// Graceful migrations started.
    pub migrations: u64,
}

struct FeInstance {
    inst_idx: usize,
    ip: Ipv4Addr,
    tx_area: BufferArea,
    serving_nic: usize,
    backup_nic: Option<usize>,
    /// Graceful migration: `(old_nic, unregister_deadline)` (§3.3.4).
    migrating_from: Option<(usize, SimTime)>,
    /// Token-bucket policer enforcing the allocator's bandwidth lease
    /// (bytes of credit; `None` disables enforcement).
    policer: Option<TokenBucket>,
}

/// Byte-granular token bucket (PicNIC-style lease enforcement).
struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    fn new(rate_mbps: u32, burst_bytes: f64) -> Self {
        TokenBucket {
            rate_bytes_per_sec: rate_mbps as f64 * 1e6 / 8.0,
            burst_bytes,
            tokens: burst_bytes,
            last_refill: SimTime::ZERO,
        }
    }

    /// Take `bytes` of credit at `now`; `false` = over the lease.
    fn admit(&mut self, now: SimTime, bytes: f64) -> bool {
        let dt = (now - self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

/// One channel link to a backend driver.
struct BackendLink {
    nic: usize,
    to: Sender,
    from: Receiver,
}

/// The frontend driver: one busy-polling core per host.
pub struct FrontendDriver {
    /// The host this frontend runs on.
    pub host: usize,
    /// The dedicated polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: FrontendStats,
    cfg: OasisConfig,
    links: Vec<BackendLink>,
    to_alloc: Sender,
    from_alloc: Receiver,
    insts: Vec<FeInstance>,
    /// Next liveness heartbeat to the allocator (ISSUE 2 detection).
    next_heartbeat: SimTime,
}

impl FrontendDriver {
    /// Create a frontend on `host` with its allocator channel pair.
    pub fn new(
        host: usize,
        core: HostCtx,
        cfg: OasisConfig,
        to_alloc: Sender,
        from_alloc: Receiver,
    ) -> Self {
        FrontendDriver {
            host,
            core,
            stats: FrontendStats::default(),
            cfg,
            links: Vec::new(),
            to_alloc,
            from_alloc,
            insts: Vec::new(),
            next_heartbeat: SimTime::ZERO,
        }
    }

    /// Wire a channel pair to a backend driver (done once at pod boot).
    pub fn add_backend_link(&mut self, nic: usize, to: Sender, from: Receiver) {
        self.links.push(BackendLink { nic, to, from });
    }

    /// Attach a local instance with its TX buffer area and NIC assignment
    /// from the pod-wide allocator.
    pub fn attach_instance(
        &mut self,
        inst_idx: usize,
        ip: Ipv4Addr,
        tx_area: BufferArea,
        serving_nic: usize,
        backup_nic: Option<usize>,
    ) {
        self.insts.push(FeInstance {
            inst_idx,
            ip,
            tx_area,
            serving_nic,
            backup_nic,
            migrating_from: None,
            policer: None,
        });
    }

    /// Enforce the allocator's bandwidth lease for `ip` with a token-bucket
    /// policer (frames over the lease are dropped and counted in
    /// [`FrontendStats::tx_policed`]).
    pub fn enforce_lease(&mut self, ip: Ipv4Addr, lease_mbps: u32, burst_bytes: u64) {
        if let Some(inst) = self.insts.iter_mut().find(|i| i.ip == ip) {
            inst.policer = Some(TokenBucket::new(lease_mbps, burst_bytes as f64));
        }
    }

    /// Drop every attached instance. Used by host-failure reclaim: the pod
    /// frees the instances' buffer areas, and a restarted host boots with
    /// no instances (a real cloud re-places them elsewhere).
    pub fn detach_all_instances(&mut self) {
        self.insts.clear();
    }

    /// The NIC currently serving an instance (tests and the allocator's
    /// bookkeeping).
    pub fn serving_nic(&self, ip: Ipv4Addr) -> Option<usize> {
        self.insts
            .iter()
            .find(|i| i.ip == ip)
            .map(|i| i.serving_nic)
    }

    /// The backup NIC an instance was pre-registered with at launch
    /// (§3.3.3), if any.
    pub fn backup_nic(&self, ip: Ipv4Addr) -> Option<usize> {
        self.insts
            .iter()
            .find(|i| i.ip == ip)
            .and_then(|i| i.backup_nic)
    }

    fn link_idx(&self, nic: usize) -> Option<usize> {
        self.links.iter().position(|l| l.nic == nic)
    }

    /// Transmit one frame from an instance through its serving NIC: write
    /// the payload into a TX buffer in shared CXL memory, write it back
    /// from CPU caches, and signal the backend (§3.3.1).
    ///
    /// The Ethernet source MAC is rewritten to `src_mac` (the instance's
    /// *current* MAC): frames queued before a graceful migration would
    /// otherwise carry the old NIC's MAC out of the new NIC and re-teach
    /// the switch that MAC on the wrong port — black-holing every other
    /// instance behind the old NIC. (Failover's deliberate MAC borrowing
    /// is unaffected: there the instance keeps the failed NIC's MAC.)
    fn tx_frame(
        &mut self,
        pool: &mut CxlPool,
        slot: usize,
        frame: &Frame,
        src_mac: oasis_net::addr::MacAddr,
    ) {
        // Lease enforcement first: a policed frame consumes no buffer.
        let now = self.core.clock;
        if let Some(p) = self.insts[slot].policer.as_mut() {
            if !p.admit(now, frame.len() as f64 + 24.0) {
                self.stats.tx_policed += 1;
                return;
            }
        }
        let Some(buf) = self.insts[slot].tx_area.alloc() else {
            self.stats.tx_drop_nobuf += 1;
            return;
        };
        let mut patched;
        let bytes: &[u8] = if frame.src_mac() == src_mac {
            frame.bytes()
        } else {
            patched = frame.bytes().to_vec();
            patched[6..12].copy_from_slice(&src_mac.0);
            &patched
        };
        self.core.write(pool, buf, bytes);
        for la in lines_covering(buf, bytes.len() as u64) {
            self.core.clwb(pool, la);
        }
        self.core.publish(pool, buf, bytes.len() as u64);
        let nic = self.insts[slot].serving_nic;
        let msg = NetMsg {
            ptr: buf,
            size: bytes.len() as u16,
            op: NetOp::Tx,
            ip: self.insts[slot].ip,
        };
        let Some(li) = self.link_idx(nic) else {
            self.insts[slot].tx_area.free(buf);
            self.stats.tx_drop_channel += 1;
            return;
        };
        let link = &mut self.links[li];
        if link
            .to
            .try_send(&mut self.core, pool, &msg.encode())
            .unwrap_or(false)
        {
            self.stats.tx_packets += 1;
        } else {
            self.insts[slot].tx_area.free(buf);
            self.stats.tx_drop_channel += 1;
        }
    }

    fn handle_alloc_msg(
        &mut self,
        pool: &mut CxlPool,
        instances: &mut [Instance],
        msg: NetMsg,
        nic_macs: &[oasis_net::addr::MacAddr],
    ) {
        match msg.op {
            NetOp::Reroute => {
                // Failover (§3.3.3): switch TX to the backup NIC and borrow
                // the failed NIC's MAC so the switch re-points RX to the
                // backup immediately. The instance keeps its old MAC.
                self.stats.reroutes += 1;
                let new_nic = msg.ptr as usize;
                if let Some(slot) = self.insts.iter().position(|i| i.ip == msg.ip) {
                    self.insts[slot].serving_nic = new_nic;
                    let inst_idx = self.insts[slot].inst_idx;
                    let mac = instances[inst_idx].mac();
                    let borrow = oasis_net::packet::GarpPacket {
                        sender_mac: mac,
                        sender_ip: msg.ip,
                    }
                    .encode();
                    self.tx_frame(pool, slot, &borrow, mac);
                }
            }
            NetOp::Migrate => {
                // Graceful migration (§3.3.4): register with the new NIC's
                // backend *first* (over the same channel the GARP's TX will
                // use, so FIFO ordering guarantees the registration lands
                // before any packet), then announce the new MAC via GARP;
                // keep receiving from both NICs until the grace period
                // expires.
                self.stats.migrations += 1;
                let new_nic = msg.ptr as usize;
                if let Some(slot) = self.insts.iter().position(|i| i.ip == msg.ip) {
                    let old = self.insts[slot].serving_nic;
                    if old == new_nic {
                        return;
                    }
                    let inst_idx = self.insts[slot].inst_idx;
                    if let Some(li) = self.link_idx(new_nic) {
                        let reg = NetMsg {
                            ptr: 0,
                            size: inst_idx as u16, // flow tag
                            op: NetOp::Register,
                            ip: msg.ip,
                        };
                        let link = &mut self.links[li];
                        let _ = link.to.try_send(&mut self.core, pool, &reg.encode());
                    }
                    self.insts[slot].serving_nic = new_nic;
                    self.insts[slot].migrating_from =
                        Some((old, self.core.clock + self.cfg.migration_grace));
                    instances[inst_idx].set_mac(self.core.clock, nic_macs[new_nic], true);
                }
            }
            _ => {}
        }
    }

    /// One busy-polling round: drain allocator messages, forward instance
    /// TX, drain backend channels (RX packets + completions), and run
    /// migration timers. Returns `true` if any work was done.
    pub fn step(
        &mut self,
        pool: &mut CxlPool,
        instances: &mut [Instance],
        nic_macs: &[oasis_net::addr::MacAddr],
    ) -> bool {
        let mut worked = false;
        self.core.advance(self.cfg.driver_loop_ns);

        // 0. Liveness heartbeat to the allocator (§3.5 telemetry path).
        // Missing three consecutive heartbeats marks this host failed.
        if self.core.clock >= self.next_heartbeat {
            let hb = NetMsg {
                ptr: self.host as u64,
                size: 0,
                op: NetOp::Heartbeat,
                ip: Ipv4Addr([0, 0, 0, 0]),
            };
            let _ = self.to_alloc.try_send(&mut self.core, pool, &hb.encode());
            self.next_heartbeat = self.core.clock + self.cfg.heartbeat_period;
        }

        // 1. Allocator control messages.
        let mut buf16 = [0u8; 16];
        for _ in 0..POLL_BATCH {
            if !self.from_alloc.try_recv(&mut self.core, pool, &mut buf16) {
                break;
            }
            worked = true;
            if let Some(msg) = NetMsg::decode(&buf16) {
                self.handle_alloc_msg(pool, instances, msg, nic_macs);
            }
        }

        // 2. Instance TX (IPC poll, §3.3.1).
        for slot in 0..self.insts.len() {
            let inst_idx = self.insts[slot].inst_idx;
            instances[inst_idx].tick(self.core.clock);
            let current_mac = instances[inst_idx].mac();
            for _ in 0..POLL_BATCH {
                let Some(frame) = instances[inst_idx].pop_tx(self.core.clock) else {
                    break;
                };
                worked = true;
                self.core.advance(self.cfg.ipc_cost_ns);
                self.tx_frame(pool, slot, &frame, current_mac);
            }
        }

        // 3. Backend channels: RX packets and TX completions.
        for li in 0..self.links.len() {
            for _ in 0..POLL_BATCH {
                let got = self.links[li]
                    .from
                    .try_recv(&mut self.core, pool, &mut buf16);
                if !got {
                    break;
                }
                worked = true;
                let Some(msg) = NetMsg::decode(&buf16) else {
                    continue;
                };
                match msg.op {
                    NetOp::Rx => {
                        // Copy the packet out of the shared RX buffer into
                        // instance-local memory (isolation, §3.3.2), then
                        // invalidate the RX buffer lines so the next use
                        // reads fresh DMA data (§3.3.1).
                        let len = msg.size as usize;
                        let mut pkt = vec![0u8; len];
                        self.core.expect_fresh(pool, msg.ptr, len as u64);
                        self.core.read_stream(pool, msg.ptr, &mut pkt);
                        for la in lines_covering(msg.ptr, len as u64) {
                            self.core.clflushopt(pool, la);
                        }
                        self.core.advance(self.cfg.ipc_cost_ns);
                        if let Some(fe_inst) = self.insts.iter().find(|i| i.ip == msg.ip) {
                            self.stats.rx_packets += 1;
                            let frame = Frame(bytes::Bytes::from(pkt));
                            instances[fe_inst.inst_idx].deliver(self.core.clock, &frame);
                        } else {
                            self.stats.rx_unknown += 1;
                        }
                        // Recycle the RX buffer at the backend.
                        let done = NetMsg {
                            ptr: msg.ptr,
                            size: 0,
                            op: NetOp::RxComplete,
                            ip: msg.ip,
                        };
                        let link = &mut self.links[li];
                        let _ = link.to.try_send(&mut self.core, pool, &done.encode());
                    }
                    NetOp::TxComplete => {
                        // Reclaim the TX buffer into its owner's area.
                        if let Some(inst) = self
                            .insts
                            .iter_mut()
                            .find(|i| i.tx_area.region().contains(msg.ptr))
                        {
                            inst.tx_area.free(msg.ptr);
                        }
                    }
                    _ => {}
                }
            }
        }

        // 4. Migration grace expiry: unregister from the old NIC (§3.3.4).
        for slot in 0..self.insts.len() {
            if let Some((old_nic, deadline)) = self.insts[slot].migrating_from {
                if self.core.clock >= deadline {
                    self.insts[slot].migrating_from = None;
                    let ip = self.insts[slot].ip;
                    if let Some(li) = self.link_idx(old_nic) {
                        let msg = NetMsg {
                            ptr: 0,
                            size: 0,
                            op: NetOp::Unregister,
                            ip,
                        };
                        let link = &mut self.links[li];
                        let _ = link.to.try_send(&mut self.core, pool, &msg.encode());
                    }
                    worked = true;
                }
            }
        }

        // 5. Flush partially filled channel lines so low-rate messages do
        // not linger invisibly in this core's cache (§3.2.2).
        for link in &mut self.links {
            link.to.flush(&mut self.core, pool);
        }
        self.to_alloc.flush(&mut self.core, pool);
        // Let senders reuse our consumed slots promptly.
        for link in &mut self.links {
            link.from.publish_consumed(&mut self.core, pool);
        }
        self.from_alloc.publish_consumed(&mut self.core, pool);

        worked
    }

    /// Earliest pending local deadline (instance timers, migration grace);
    /// used by tests that step the frontend manually.
    pub fn next_deadline(&self, instances: &[Instance]) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |x: SimTime| t = Some(t.map_or(x, |cur: SimTime| cur.min(x)));
        for fi in &self.insts {
            if let Some((_, dl)) = fi.migrating_from {
                consider(dl);
            }
            if let Some(e) = instances[fi.inst_idx].next_event() {
                consider(e);
            }
        }
        t
    }

    /// Debug view of per-backend channel counters:
    /// `(nic, messages_sent, messages_received)`.
    pub fn channel_debug(&self) -> Vec<(usize, u64, u64)> {
        self.links
            .iter()
            .map(|l| (l.nic, l.to.sent(), l.from.consumed()))
            .collect()
    }

    /// Idle-advance the core clock (used by harnesses between bursts).
    pub fn skip_to(&mut self, t: SimTime) {
        if self.core.clock < t {
            self.core.clock = t;
        }
    }

    /// Poll-loop period estimate for pacing harnesses.
    pub fn poll_period(&self) -> SimDuration {
        SimDuration::from_nanos(self.cfg.driver_loop_ns.max(1))
    }
}

impl Snapshottable for FrontendDriver {
    /// Logical state only: clock, timers, counters, per-instance NIC
    /// assignment / migration / policer state, and TX free lists. Links and
    /// channel endpoints are topology, rebuilt by the pod builder. Policer
    /// floats are serialized via `to_bits` (this path is outside the
    /// float-determinism policed set; the bits round-trip exactly).
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        w.put_u64(self.next_heartbeat.as_nanos());
        let s = &self.stats;
        for v in [
            s.tx_packets,
            s.tx_drop_nobuf,
            s.tx_drop_channel,
            s.tx_policed,
            s.rx_packets,
            s.rx_unknown,
            s.reroutes,
            s.migrations,
        ] {
            w.put_u64(v);
        }
        w.put_u64(self.insts.len() as u64);
        for i in &self.insts {
            w.put_u64(i.inst_idx as u64);
            w.put_u32(u32::from_le_bytes(i.ip.0));
            w.put_u64(i.serving_nic as u64);
            match i.backup_nic {
                Some(nic) => {
                    w.put_bool(true);
                    w.put_u64(nic as u64);
                }
                None => w.put_bool(false),
            }
            match i.migrating_from {
                Some((old, deadline)) => {
                    w.put_bool(true);
                    w.put_u64(old as u64);
                    w.put_u64(deadline.as_nanos());
                }
                None => w.put_bool(false),
            }
            match &i.policer {
                Some(p) => {
                    w.put_bool(true);
                    w.put_u64(p.rate_bytes_per_sec.to_bits());
                    w.put_u64(p.burst_bytes.to_bits());
                    w.put_u64(p.tokens.to_bits());
                    w.put_u64(p.last_refill.as_nanos());
                }
                None => w.put_bool(false),
            }
            i.tx_area.snapshot_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("net-fe clock")?);
        self.next_heartbeat = SimTime(r.u64("net-fe heartbeat timer")?);
        self.stats.tx_packets = r.u64("net-fe tx_packets")?;
        self.stats.tx_drop_nobuf = r.u64("net-fe tx_drop_nobuf")?;
        self.stats.tx_drop_channel = r.u64("net-fe tx_drop_channel")?;
        self.stats.tx_policed = r.u64("net-fe tx_policed")?;
        self.stats.rx_packets = r.u64("net-fe rx_packets")?;
        self.stats.rx_unknown = r.u64("net-fe rx_unknown")?;
        self.stats.reroutes = r.u64("net-fe reroutes")?;
        self.stats.migrations = r.u64("net-fe migrations")?;
        let n = r.u64("net-fe instance count")?;
        if n != self.insts.len() as u64 {
            return Err(SnapshotError::Corrupt("net-fe instance count"));
        }
        for i in self.insts.iter_mut() {
            let idx = r.u64("net-fe instance idx")?;
            let ip = Ipv4Addr(r.u32("net-fe instance ip")?.to_le_bytes());
            if idx != i.inst_idx as u64 || ip != i.ip {
                return Err(SnapshotError::Corrupt("net-fe instance identity"));
            }
            i.serving_nic = r.u64("net-fe serving nic")? as usize;
            i.backup_nic = if r.bool("net-fe backup flag")? {
                Some(r.u64("net-fe backup nic")? as usize)
            } else {
                None
            };
            i.migrating_from = if r.bool("net-fe migrating flag")? {
                let old = r.u64("net-fe migrating old nic")? as usize;
                let deadline = SimTime(r.u64("net-fe migrating deadline")?);
                Some((old, deadline))
            } else {
                None
            };
            i.policer = if r.bool("net-fe policer flag")? {
                Some(TokenBucket {
                    rate_bytes_per_sec: f64::from_bits(r.u64("net-fe policer rate")?),
                    burst_bytes: f64::from_bits(r.u64("net-fe policer burst")?),
                    tokens: f64::from_bits(r.u64("net-fe policer tokens")?),
                    last_refill: SimTime(r.u64("net-fe policer refill")?),
                })
            } else {
                None
            };
            i.tx_area.restore_state(r)?;
        }
        Ok(())
    }
}
