//! Metric name registry for `oasis-core` (see `oasis-check`'s
//! `metric-name` rule: every metric name literal in the workspace lives in
//! its crate's `metrics.rs`, is `snake_case`, and carries the crate
//! prefix).
//!
//! Tag conventions follow the engine split: frontend metrics are tagged by
//! the consuming *host*, backend metrics by the *device* they drive
//! (`nic_id` / `ssd_id` / `dev_id`), and pod-global control-plane tallies
//! use tag 0.

// ---------------------------------------------------------------------------
// Network engine frontend (§3.3) — tag = host.
// ---------------------------------------------------------------------------

/// TX packets forwarded to backends.
pub const NET_FE_TX_PACKETS: &str = "core.net_fe_tx_packets";
/// TX packets dropped: no free TX buffer.
pub const NET_FE_TX_DROP_NOBUF: &str = "core.net_fe_tx_drop_nobuf";
/// TX packets dropped: channel full.
pub const NET_FE_TX_DROP_CHANNEL: &str = "core.net_fe_tx_drop_channel";
/// TX packets policed over the instance's bandwidth lease.
pub const NET_FE_TX_POLICED: &str = "core.net_fe_tx_policed";
/// RX packets copied to instances.
pub const NET_FE_RX_PACKETS: &str = "core.net_fe_rx_packets";
/// RX packets for unknown instances.
pub const NET_FE_RX_UNKNOWN: &str = "core.net_fe_rx_unknown";
/// Reroute commands handled (failover).
pub const NET_FE_REROUTES: &str = "core.net_fe_reroutes";
/// Graceful migrations started.
pub const NET_FE_MIGRATIONS: &str = "core.net_fe_migrations";

// ---------------------------------------------------------------------------
// Network engine backend (§3.3) — tag = NIC id.
// ---------------------------------------------------------------------------

/// TX descriptors posted to the NIC.
pub const NET_BE_TX_POSTED: &str = "core.net_be_tx_posted";
/// TX descriptors dropped: NIC queue full.
pub const NET_BE_TX_DROP_FULL: &str = "core.net_be_tx_drop_full";
/// RX packets forwarded to frontends.
pub const NET_BE_RX_FORWARDED: &str = "core.net_be_rx_forwarded";
/// RX packets whose flow tag missed and needed payload inspection.
pub const NET_BE_RX_TAG_MISS: &str = "core.net_be_rx_tag_miss";
/// RX packets for unregistered instances.
pub const NET_BE_RX_UNKNOWN: &str = "core.net_be_rx_unknown";
/// RX packets dropped: frontend channel full.
pub const NET_BE_RX_DROP_CHANNEL: &str = "core.net_be_rx_drop_channel";
/// Link failures reported to the allocator.
pub const NET_BE_FAILURES_REPORTED: &str = "core.net_be_failures_reported";
/// Telemetry reports sent to the allocator.
pub const NET_BE_TELEMETRY_SENT: &str = "core.net_be_telemetry_sent";

// ---------------------------------------------------------------------------
// Junction-style baseline driver — tag = host.
// ---------------------------------------------------------------------------

/// TX packets posted.
pub const LOCAL_TX_PACKETS: &str = "core.local_tx_packets";
/// TX drops (no buffer / NIC full).
pub const LOCAL_TX_DROPS: &str = "core.local_tx_drops";
/// RX packets delivered to instances.
pub const LOCAL_RX_PACKETS: &str = "core.local_rx_packets";
/// RX packets with no owning instance.
pub const LOCAL_RX_UNKNOWN: &str = "core.local_rx_unknown";

// ---------------------------------------------------------------------------
// Storage engine frontend (§3.4) — tag = host.
// ---------------------------------------------------------------------------

/// Commands submitted.
pub const STORAGE_FE_SUBMITTED: &str = "core.storage_fe_submitted";
/// Completions delivered.
pub const STORAGE_FE_COMPLETED: &str = "core.storage_fe_completed";
/// Completions with error status.
pub const STORAGE_FE_ERRORS: &str = "core.storage_fe_errors";
/// Submissions refused (no buffer / channel full).
pub const STORAGE_FE_REFUSED: &str = "core.storage_fe_refused";
/// Commands resubmitted after a timeout or transient media error.
pub const STORAGE_FE_RETRIES: &str = "core.storage_fe_retries";
/// Commands failed after exhausting the retry budget.
pub const STORAGE_FE_RETRY_EXHAUSTED: &str = "core.storage_fe_retry_exhausted";
/// Commands in flight at export time (queue-depth gauge).
pub const STORAGE_FE_INFLIGHT: &str = "core.storage_fe_inflight";
/// Histogram: submit-to-completion service time, retries included
/// (nanoseconds; collected behind `obs`).
pub const STORAGE_FE_SERVICE_NS: &str = "core.storage_fe_service_ns";

// ---------------------------------------------------------------------------
// Storage engine backend (§3.4) — tag = SSD id.
// ---------------------------------------------------------------------------

/// Commands forwarded to the SSD.
pub const STORAGE_BE_FORWARDED: &str = "core.storage_be_forwarded";
/// Commands bounced by a full submission queue.
pub const STORAGE_BE_SQ_FULL: &str = "core.storage_be_sq_full";
/// Completions returned to frontends.
pub const STORAGE_BE_COMPLETIONS: &str = "core.storage_be_completions";
/// Replays answered from the completion cache.
pub const STORAGE_BE_REPLAYS_ANSWERED: &str = "core.storage_be_replays_answered";

// ---------------------------------------------------------------------------
// Accelerator engine frontend — tag = host.
// ---------------------------------------------------------------------------

/// Jobs submitted.
pub const ACCEL_FE_SUBMITTED: &str = "core.accel_fe_submitted";
/// Completions delivered.
pub const ACCEL_FE_COMPLETED: &str = "core.accel_fe_completed";
/// Completions with error status.
pub const ACCEL_FE_ERRORS: &str = "core.accel_fe_errors";
/// Submissions refused (no buffer / channel full).
pub const ACCEL_FE_REFUSED: &str = "core.accel_fe_refused";
/// Jobs resubmitted after a timeout or transient compute error.
pub const ACCEL_FE_RETRIES: &str = "core.accel_fe_retries";
/// Jobs failed after exhausting the retry budget.
pub const ACCEL_FE_RETRY_EXHAUSTED: &str = "core.accel_fe_retry_exhausted";
/// Jobs in flight at export time (queue-depth gauge).
pub const ACCEL_FE_INFLIGHT: &str = "core.accel_fe_inflight";
/// Histogram: submit-to-completion service time, retries included
/// (nanoseconds; collected behind `obs`).
pub const ACCEL_FE_SERVICE_NS: &str = "core.accel_fe_service_ns";

// ---------------------------------------------------------------------------
// Accelerator engine backend — tag = accelerator id.
// ---------------------------------------------------------------------------

/// Jobs forwarded to the device.
pub const ACCEL_BE_FORWARDED: &str = "core.accel_be_forwarded";
/// Jobs bounced by a full submission queue.
pub const ACCEL_BE_SQ_FULL: &str = "core.accel_be_sq_full";
/// Completions returned to frontends.
pub const ACCEL_BE_COMPLETIONS: &str = "core.accel_be_completions";
/// Replays answered from the completion cache.
pub const ACCEL_BE_REPLAYS_ANSWERED: &str = "core.accel_be_replays_answered";

// ---------------------------------------------------------------------------
// Pod-wide allocator (§3.5) — tag 0.
// ---------------------------------------------------------------------------

/// Reroute commands sent to frontends during failover.
pub const ALLOC_REROUTES_SENT: &str = "core.alloc_reroutes_sent";
/// Device failovers executed.
pub const ALLOC_FAILOVERS: &str = "core.alloc_failovers";

// ---------------------------------------------------------------------------
// Fleet-level allocator — tag 0 for fleet-wide tallies; spill metrics are
// tagged by *home* pod, placement counts by *device* pod.
// ---------------------------------------------------------------------------

/// Pods registered with the fleet allocator.
pub const FLEET_PODS: &str = "core.fleet_pods";
/// Cross-pod uplinks registered.
pub const FLEET_LINKS: &str = "core.fleet_links";
/// Instances placed (pass 1 or spill).
pub const FLEET_INSTANCES_PLACED: &str = "core.fleet_instances_placed";
/// Placements rejected for lack of capacity anywhere in scope.
pub const FLEET_PLACEMENTS_REJECTED: &str = "core.fleet_placements_rejected";
/// Instances killed.
pub const FLEET_INSTANCES_KILLED: &str = "core.fleet_instances_killed";
/// In-place lease resizes applied.
pub const FLEET_RESIZES: &str = "core.fleet_resizes";
/// Resizes refused for lack of device-pod capacity.
pub const FLEET_RESIZES_REJECTED: &str = "core.fleet_resizes_rejected";
/// Placements whose devices spilled to a neighbor pod — tag = home pod.
pub const FLEET_SPILL_PLACEMENTS: &str = "core.fleet_spill_placements";
/// Closed-out cross-pod spill traffic in bytes — tag = home pod.
pub const FLEET_SPILL_BYTES: &str = "core.fleet_spill_bytes";
/// Placements served, by device pod — tag = device pod.
pub const FLEET_POD_PLACEMENTS: &str = "core.fleet_pod_placements";

// ---------------------------------------------------------------------------
// Live migration (ISSUE 10) — fleet tallies use tag 0; per-migration
// transfer metrics are tagged by the transfer path's wire byte
// (`TransferPath::to_byte`: 0 = CXL, 1 = NIC).
// ---------------------------------------------------------------------------

/// Migration tickets opened (target capacity reserved).
pub const FLEET_MIGRATIONS_STARTED: &str = "core.fleet_migrations_started";
/// Migrations committed (instance landed on the target pod).
pub const FLEET_MIGRATIONS_COMMITTED: &str = "core.fleet_migrations_committed";
/// Migrations rolled back (target reservation released, source kept).
pub const FLEET_MIGRATIONS_ABORTED: &str = "core.fleet_migrations_aborted";
/// Pre-copy rounds run across all migrations — tag = transfer path.
pub const FLEET_MIGRATION_ROUNDS: &str = "core.fleet_migration_rounds";
/// Bytes moved by pre-copy and stop-and-copy — tag = transfer path.
pub const FLEET_MIGRATION_BYTES: &str = "core.fleet_migration_bytes";
/// Accumulated stop-and-copy pause in sim-time nanoseconds — tag =
/// transfer path.
pub const FLEET_MIGRATION_PAUSE_NS: &str = "core.fleet_migration_pause_ns";
