//! Multi-pod fleets: pods as shards under conservative-window parallelism.
//!
//! Octopus-style deployments (PAPERS.md) connect many sparsely-linked pods:
//! each pod's devices are pooled over CXL internally, and pods talk to each
//! other only over Ethernet uplinks through the row fabric. That sparseness
//! is exactly the structure the sharded runner (`oasis_sim::shard`)
//! exploits: each pod is one shard with its own deterministic scheduler,
//! and the minimum uplink latency (exposed by
//! [`oasis_cxl::topology::FleetTopology`]) is the conservative lookahead
//! bounding how far pods can advance between barriers.
//!
//! A frame leaving pod A for pod B egresses A's switch on an uplink port
//! (standard L2: unknown destinations flood to the uplink, remote source
//! MACs are learned from uplink ingress), crosses the link in
//! `latency`, and enters B's switch on the peer uplink port. Because
//! `latency >= lookahead`, the delivery always lands in a later window than
//! the send — the runner's exchange is safe and deterministic.
//!
//! Pods in one fleet share an L2 domain over the uplinks, so each must be
//! built with a distinct [`crate::pod::PodBuilder::site`] to keep NIC MACs
//! and instance IPs fleet-unique; colliding MACs confuse switch learning
//! exactly as they would on real hardware — which is why [`Fleet::add_pod`]
//! rejects a site collision with a typed [`FleetError`] instead of letting
//! the corruption happen silently.
//!
//! The fleet also carries the control plane: every pod added registers its
//! capacity with an embedded [`FleetAllocator`], links registered by
//! [`Fleet::connect`] flow through the same replicated log, and
//! [`Fleet::execute`] accepts the typed [`FleetCommand`] API
//! (create/resize/kill/query) so experiments drive placement through
//! commands instead of hard-coded setup.

use oasis_sim::shard::{self, Envelope, Outgoing, ShardError, ShardWorld, ShardedRunner};
use oasis_sim::time::{SimDuration, SimTime};

use crate::allocator::{
    FleetAllocator, FleetCommand, FleetResponse, MigrationOutcome, PrecopyModel, TransferPath,
    ANY_POD,
};
use crate::error::FleetError;
use crate::instance::AppKind;
use crate::pod::{Pod, UplinkMsg};

/// Where one pod-local uplink leads: the peer pod and the uplink index
/// *within that peer* on which frames arrive.
#[derive(Clone, Copy, Debug)]
struct UplinkRoute {
    dst_pod: usize,
    dst_uplink: usize,
    latency: SimDuration,
}

/// One pod plus its uplink routing table — the fleet's shard unit.
pub struct PodShard {
    /// The wrapped pod.
    pub pod: Pod,
    /// Route of each local uplink index.
    routes: Vec<UplinkRoute>,
}

impl ShardWorld for PodShard {
    type Msg = UplinkMsg;

    fn next_time(&self) -> SimTime {
        self.pod.next_activity()
    }

    fn run_window(
        &mut self,
        until: SimTime,
        inbox: &mut Vec<Envelope<UplinkMsg>>,
        outbox: &mut Vec<Outgoing<UplinkMsg>>,
    ) -> u64 {
        // Inbox is (at, src, seq)-sorted; the event queue is FIFO on ties,
        // so arrival order on the pod's timeline is deterministic.
        for env in inbox.drain(..) {
            let (uplink, frame) = env.msg;
            self.pod.inject_uplink_frame(env.at, uplink, frame);
        }
        let events = self.pod.run_local(until);
        for (at, uplink, frame) in self.pod.uplink_out.drain(..) {
            let r = self.routes[uplink];
            outbox.push(Outgoing {
                dst: r.dst_pod,
                at: at + r.latency,
                msg: (r.dst_uplink, frame),
            });
        }
        events
    }
}

/// A set of pods advanced in lockstep lookahead windows, in parallel when
/// `OASIS_SHARD_THREADS` allows. Simulated output is byte-identical at any
/// thread count.
pub struct Fleet {
    shards: Vec<PodShard>,
    runner: Option<ShardedRunner<UplinkMsg>>,
    threads: usize,
    min_latency: Option<SimDuration>,
    allocator: FleetAllocator,
    /// Pre-copy timing model for live migrations (tunable before the
    /// first migration; `migrate_bench` sweeps it).
    pub precopy: PrecopyModel,
    // Per-transfer-path migration tallies, indexed by the path's wire
    // byte (0 = CXL, 1 = NIC); exported through `metrics_snapshot`.
    migration_rounds: [u64; 2],
    migration_bytes: [u64; 2],
    migration_pause: [u64; 2],
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// An empty fleet; worker threads come from `OASIS_SHARD_THREADS`.
    pub fn new() -> Self {
        Self::with_threads(shard::threads_from_env())
    }

    /// An empty fleet with an explicit worker thread count.
    pub fn with_threads(threads: usize) -> Self {
        Fleet {
            shards: Vec::new(),
            runner: None,
            threads: threads.max(1),
            min_latency: None,
            allocator: FleetAllocator::new(),
            precopy: PrecopyModel::default(),
            migration_rounds: [0; 2],
            migration_bytes: [0; 2],
            migration_pause: [0; 2],
        }
    }

    /// Default per-host vCPU capacity registered with the fleet allocator
    /// (matches the §2.1 dual-socket host the traces assume).
    pub const VCPUS_PER_HOST: u32 = 96;
    /// Default per-host memory capacity in GB.
    pub const MEM_GB_PER_HOST: u32 = 512;

    /// Add a pod to the fleet and register its capacity with the fleet
    /// allocator. Returns its pod index. Pods must be added (and
    /// connected) before the first `run`.
    ///
    /// Rejects a [`crate::pod::PodBuilder::site`] collision: sites feed
    /// the upper bits of every NIC MAC and instance IP, so two pods on the
    /// same site would silently corrupt uplink switch learning.
    pub fn add_pod(&mut self, pod: Pod) -> Result<usize, FleetError> {
        assert!(self.runner.is_none(), "fleet topology is fixed after run");
        let site = pod.site();
        for (i, s) in self.shards.iter().enumerate() {
            if s.pod.site() == site {
                return Err(FleetError::DuplicateSite { site, pod: i });
            }
        }
        let idx = self.shards.len();
        let (nic_mbps, ssd_cap) = pod.allocator.state.capacity_summary();
        self.allocator.execute(
            SimTime::ZERO,
            &FleetCommand::RegisterPod {
                pod: idx as u32,
                hosts: pod.hosts() as u32,
                vcpus_per_host: Self::VCPUS_PER_HOST,
                mem_gb_per_host: Self::MEM_GB_PER_HOST,
                nic_mbps,
                ssd_cap,
            },
        )?;
        self.shards.push(PodShard {
            pod,
            routes: Vec::new(),
        });
        Ok(idx)
    }

    /// Number of pods.
    pub fn pods(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to a pod.
    pub fn pod(&self, i: usize) -> &Pod {
        &self.shards[i].pod
    }

    /// Exclusive access to a pod (instance/endpoint setup).
    pub fn pod_mut(&mut self, i: usize) -> &mut Pod {
        assert!(self.runner.is_none(), "fleet topology is fixed after run");
        &mut self.shards[i].pod
    }

    /// Join pods `a` and `b` with a bidirectional uplink of the given
    /// one-way latency. Allocates an uplink switch port on both pods and
    /// registers the link with the fleet allocator (updating spill
    /// orders). Self-links, unknown pods, and duplicate links (in either
    /// direction) are rejected with a typed error.
    pub fn connect(&mut self, a: usize, b: usize, latency: SimDuration) -> Result<(), FleetError> {
        assert!(self.runner.is_none(), "fleet topology is fixed after run");
        self.allocator.execute(
            SimTime::ZERO,
            &FleetCommand::AddLink {
                a: a as u32,
                b: b as u32,
                latency_ns: latency.as_nanos(),
            },
        )?;
        let ua = self.shards[a].pod.add_uplink();
        let ub = self.shards[b].pod.add_uplink();
        self.shards[a].routes.push(UplinkRoute {
            dst_pod: b,
            dst_uplink: ub,
            latency,
        });
        self.shards[b].routes.push(UplinkRoute {
            dst_pod: a,
            dst_uplink: ua,
            latency,
        });
        self.min_latency = Some(self.min_latency.map_or(latency, |m| m.min(latency)));
        Ok(())
    }

    /// Join two pods per a topology-level link description.
    pub fn connect_link(
        &mut self,
        link: &oasis_cxl::topology::CrossPodLink,
    ) -> Result<(), FleetError> {
        self.connect(link.a, link.b, link.latency)
    }

    /// The embedded fleet allocator (placement state, spill accounting,
    /// log-consistency checks).
    pub fn allocator(&self) -> &FleetAllocator {
        &self.allocator
    }

    /// Execute a typed control-plane command against the fleet.
    ///
    /// `CreateInstance` / `ResizeInstance` / `KillInstance` /
    /// `QueryFleetState` flow through the replicated fleet allocator; a
    /// successful create additionally launches a live instance (with
    /// [`AppKind::None`]) on the chosen pod and host, rolling the
    /// placement back if the pod-local launch fails. Topology commands are
    /// managed by [`Fleet::add_pod`] / [`Fleet::connect`] and rejected
    /// here. Kills release fleet-level capacity; the pod runtime keeps the
    /// instance's datapath wired (tearing that down mid-run is future
    /// work), which matches how the replay measures stranding.
    ///
    /// `MigrateInstance` runs the full driver
    /// ([`Fleet::migrate_instance`]): ticket, modeled pre-copy, target
    /// launch, and the finishing command — commit on success,
    /// compensating abort on a target-side launch failure. A raw
    /// `FinishMigration` passes through to the allocator untouched so
    /// replay and chaos harnesses can drive the two phases separately.
    pub fn execute(
        &mut self,
        now: SimTime,
        cmd: &FleetCommand,
    ) -> Result<FleetResponse, FleetError> {
        match *cmd {
            FleetCommand::RegisterPod { .. } | FleetCommand::AddLink { .. } => {
                Err(FleetError::TopologyManaged)
            }
            FleetCommand::CreateInstance { nic_mbps, .. } => {
                assert!(self.runner.is_none(), "fleet topology is fixed after run");
                let resp = self.allocator.execute(now, cmd)?;
                let FleetResponse::Created { id, pod, host, .. } = resp else {
                    return Ok(resp);
                };
                match self.shards[pod]
                    .pod
                    .try_launch_instance(host, AppKind::None, nic_mbps)
                {
                    Ok(_) => Ok(resp),
                    Err(e) => {
                        // Placement fit the capacity summary but the pod's
                        // devices are too fragmented (e.g. no single NIC
                        // has the lease spare): undo the reservation.
                        self.allocator.execute(
                            now,
                            &FleetCommand::KillInstance {
                                at: now.as_nanos(),
                                id,
                            },
                        )?;
                        Err(FleetError::Pod(e))
                    }
                }
            }
            FleetCommand::MigrateInstance {
                id, dst_pod, path, ..
            } => {
                self.migrate_instance(now, id, dst_pod as usize, path)?;
                Ok(FleetResponse::MigrationFinished {
                    id,
                    committed: true,
                })
            }
            _ => self.allocator.execute(now, cmd),
        }
    }

    /// Live-migrate instance `id` to `dst_pod` over `path`, end to end:
    ///
    /// 1. **Validate → propose → apply** `MigrateInstance` through the
    ///    raft-logged command API, opening a [`MigrationTicket`] that
    ///    reserves the target-side capacity (source capacity stays held —
    ///    the dual hold is what makes both outcomes safe).
    /// 2. **Pre-copy** the instance state over the chosen path with the
    ///    fleet's [`PrecopyModel`], accumulating the per-path
    ///    `core.fleet_migration_*` transfer tallies.
    /// 3. **Land** the instance on the reserved target host
    ///    ([`Pod::try_launch_instance`], [`AppKind::None`] — migrated
    ///    instances re-attach their app out of band, like created ones).
    /// 4. **Finish** at `now + total_ns` of modeled sim-time:
    ///    `FinishMigration { commit: true }` on success, or — if the
    ///    target pod's devices turn out too fragmented for the lease —
    ///    the compensating `FinishMigration { commit: false }`, which
    ///    releases only the target reservation and leaves the source
    ///    serving, exactly like `CreateInstance`'s kill-on-launch-failure
    ///    rollback.
    ///
    /// Returns the modeled [`MigrationOutcome`] (rounds, bytes, pause) on
    /// commit. The source pod keeps the old datapath wired, matching how
    /// kills behave in the runtime.
    ///
    /// [`MigrationTicket`]: crate::allocator::MigrationTicket
    pub fn migrate_instance(
        &mut self,
        now: SimTime,
        id: u64,
        dst_pod: usize,
        path: TransferPath,
    ) -> Result<MigrationOutcome, FleetError> {
        assert!(self.runner.is_none(), "fleet topology is fixed after run");
        let inst = self
            .allocator
            .state
            .instances
            .get(id as usize)
            .copied()
            .flatten()
            .ok_or(FleetError::NoSuchInstance(id))?;
        let resp = self.allocator.execute(
            now,
            &FleetCommand::MigrateInstance {
                at: now.as_nanos(),
                id,
                dst_pod: dst_pod as u32,
                path,
            },
        )?;
        let FleetResponse::MigrationStarted {
            dst_pod, dst_host, ..
        } = resp
        else {
            // The replicated apply is stricter than `execute`'s validation
            // only if state changed between the two — impossible with a
            // single replica, but degrade to the typed error regardless.
            return Err(FleetError::MigrationInfeasible { id, dst_pod });
        };
        let outcome = self
            .precopy
            .run(path, inst.vcpus, inst.mem_gb, inst.nic_mbps);
        let tag = path.to_byte() as usize;
        self.migration_rounds[tag] =
            self.migration_rounds[tag].saturating_add(outcome.rounds as u64);
        self.migration_bytes[tag] = self.migration_bytes[tag].saturating_add(outcome.bytes_moved);
        self.migration_pause[tag] = self.migration_pause[tag].saturating_add(outcome.pause_ns);
        let done = now + SimDuration::from_nanos(outcome.total_ns);
        match self.shards[dst_pod]
            .pod
            .try_launch_instance(dst_host, AppKind::None, inst.nic_mbps)
        {
            Ok(_) => {
                self.allocator.execute(
                    done,
                    &FleetCommand::FinishMigration {
                        at: done.as_nanos(),
                        id,
                        commit: true,
                    },
                )?;
                Ok(outcome)
            }
            Err(e) => {
                // Compensating rollback: release the target reservation;
                // the source never stopped holding its resources.
                self.allocator.execute(
                    done,
                    &FleetCommand::FinishMigration {
                        at: done.as_nanos(),
                        id,
                        commit: false,
                    },
                )?;
                Err(FleetError::Pod(e))
            }
        }
    }

    /// Place and launch a live instance through the control plane,
    /// choosing pod and host via the fleet allocator. Placement rejection
    /// surfaces as [`FleetError::NoCapacity`].
    // The parameter list mirrors the CreateInstance wire fields one-for-one.
    #[allow(clippy::too_many_arguments)]
    pub fn create_instance(
        &mut self,
        now: SimTime,
        app: AppKind,
        vcpus: u32,
        mem_gb: u32,
        ssd: u32,
        nic_mbps: u32,
        home_pod: Option<usize>,
    ) -> Result<(u64, usize, usize), FleetError> {
        assert!(self.runner.is_none(), "fleet topology is fixed after run");
        let cmd = FleetCommand::CreateInstance {
            at: now.as_nanos(),
            vcpus,
            mem_gb,
            ssd,
            nic_mbps,
            home_pod: home_pod.map_or(ANY_POD, |p| p as u32),
        };
        let resp = self.allocator.execute(now, &cmd)?;
        let FleetResponse::Created { id, pod, host, .. } = resp else {
            return Err(FleetError::NoCapacity);
        };
        match self.shards[pod]
            .pod
            .try_launch_instance(host, app, nic_mbps)
        {
            Ok(inst) => Ok((id, pod, inst)),
            Err(e) => {
                self.allocator.execute(
                    now,
                    &FleetCommand::KillInstance {
                        at: now.as_nanos(),
                        id,
                    },
                )?;
                Err(FleetError::Pod(e))
            }
        }
    }

    /// The conservative lookahead: the minimum uplink latency, or zero for
    /// an unlinked multi-pod fleet (which `run` rejects as un-shardable).
    pub fn lookahead(&self) -> SimDuration {
        match self.min_latency {
            Some(l) => l,
            // No links at all: disconnected pods never interact, so any
            // window length is safe; pick a horizon-spanning lookahead.
            None => SimDuration::from_nanos(u64::MAX),
        }
    }

    /// Advance every pod to `until` under the window protocol.
    pub fn run(&mut self, until: SimTime) -> Result<(), ShardError> {
        let mut runner = match self.runner.take() {
            Some(r) => r,
            None => ShardedRunner::new(self.shards.len(), self.lookahead(), self.threads),
        };
        let res = runner.run(&mut self.shards, until);
        self.runner = Some(runner);
        res?;
        for s in &mut self.shards {
            s.pod.finish_horizon(until);
        }
        Ok(())
    }

    /// Shard telemetry from the underlying runner, exported through the
    /// `oasis-sim` metric registry names.
    #[cfg(feature = "obs")]
    pub fn export_shard_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        use oasis_sim::metrics as sm;
        let Some(runner) = &self.runner else {
            return;
        };
        let stats = runner.stats();
        sink.set(sm::SHARD_WINDOWS, 0, stats.windows);
        for (shard, &events) in stats.shard_events.iter().enumerate() {
            if events != 0 {
                sink.set(sm::SHARD_EVENTS, shard as u32, events);
            }
        }
        sink.set(sm::SHARD_BARRIER_STALLS, 0, stats.barrier_stalls);
        sink.set(sm::SHARD_MESSAGES, 0, stats.messages);
        sink.merge_hist(
            sm::SHARD_WINDOW_NS,
            0,
            &oasis_obs::ObsHistogram::from_sim(&stats.window_ns),
        );
    }

    /// Fleet-wide metrics: each pod's canonical snapshot merged with the
    /// fleet allocator's `core.fleet_*` counters, plus — with `obs` on —
    /// the shard-runner telemetry.
    pub fn metrics_snapshot(&self) -> oasis_obs::MetricsSnapshot {
        let mut merged = oasis_obs::MetricsSnapshot::default();
        for s in &self.shards {
            merged.merge(&s.pod.metrics_snapshot());
        }
        {
            let mut sink = oasis_obs::MetricSink::new();
            self.allocator.state.export_metrics(&mut sink);
            for tag in 0..2u32 {
                let i = tag as usize;
                for (name, v) in [
                    (
                        crate::metrics::FLEET_MIGRATION_ROUNDS,
                        self.migration_rounds[i],
                    ),
                    (
                        crate::metrics::FLEET_MIGRATION_BYTES,
                        self.migration_bytes[i],
                    ),
                    (
                        crate::metrics::FLEET_MIGRATION_PAUSE_NS,
                        self.migration_pause[i],
                    ),
                ] {
                    // Skipping zero keeps no-migration runs byte-identical
                    // with exports from before migration existed.
                    if v != 0 {
                        sink.set(name, tag, v);
                    }
                }
            }
            merged.merge(&sink.snapshot());
        }
        #[cfg(feature = "obs")]
        {
            let mut sink = oasis_obs::MetricSink::new();
            self.export_shard_metrics(&mut sink);
            merged.merge(&sink.snapshot());
        }
        merged
    }
}
