//! The network engine's 16 B channel message (§3.3.1).
//!
//! "The frontend driver ... signals the corresponding backend driver by
//! sending a 16 B message that contains an 8 B TX buffer pointer, a 2 B
//! packet size, a 1 B opcode, and a 4 B instance IP." The remaining byte
//! carries the channel's epoch bit (MSB) and is owned by `oasis-channel`.
//!
//! Layout: `[0..8) ptr | [8..10) size | [10] opcode | [11..15) ip |
//! [15] epoch/flags`.

use oasis_net::addr::Ipv4Addr;

/// Operations carried over frontend↔backend channels. Data-path opcodes
/// follow §3.3.1; control opcodes carry registration, telemetry, and
/// failover signaling (§3.3.3, §3.5), which the paper also routes over the
/// message channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOp {
    /// Frontend → backend: transmit the packet at `ptr`.
    Tx,
    /// Backend → frontend: TX buffer at `ptr` completed; reclaim it.
    TxComplete,
    /// Backend → frontend: RX packet for `ip` at `ptr`.
    Rx,
    /// Frontend → backend: RX buffer at `ptr` consumed; recycle it.
    RxComplete,
    /// Frontend → backend: register instance `ip` (flow tag in `size`).
    Register,
    /// Frontend → backend: unregister instance `ip`.
    Unregister,
    /// Backend → allocator: link failure detected on NIC `ptr`.
    LinkFailed,
    /// Backend → allocator: telemetry record (load in `ptr`, see
    /// [`crate::allocator`]).
    Telemetry,
    /// Allocator → frontend: reroute instance `ip` to NIC id `ptr`.
    Reroute,
    /// Frontend → allocator: request a NIC for instance `ip`.
    AllocRequest,
    /// Allocator → frontend: NIC id `ptr` allocated for instance `ip`.
    AllocResponse,
    /// Allocator → frontend: begin graceful migration of `ip` to NIC
    /// `ptr` (§3.3.4 load balancing).
    Migrate,
    /// Frontend → allocator: liveness heartbeat from host `ptr` (ISSUE 2
    /// failure detection; missing heartbeats mark the host failed).
    Heartbeat,
}

impl NetOp {
    fn to_byte(self) -> u8 {
        match self {
            NetOp::Tx => 1,
            NetOp::TxComplete => 2,
            NetOp::Rx => 3,
            NetOp::RxComplete => 4,
            NetOp::Register => 5,
            NetOp::Unregister => 6,
            NetOp::LinkFailed => 7,
            NetOp::Telemetry => 8,
            NetOp::Reroute => 9,
            NetOp::AllocRequest => 10,
            NetOp::AllocResponse => 11,
            NetOp::Migrate => 12,
            NetOp::Heartbeat => 13,
        }
    }

    fn from_byte(b: u8) -> Option<NetOp> {
        Some(match b {
            1 => NetOp::Tx,
            2 => NetOp::TxComplete,
            3 => NetOp::Rx,
            4 => NetOp::RxComplete,
            5 => NetOp::Register,
            6 => NetOp::Unregister,
            7 => NetOp::LinkFailed,
            8 => NetOp::Telemetry,
            9 => NetOp::Reroute,
            10 => NetOp::AllocRequest,
            11 => NetOp::AllocResponse,
            12 => NetOp::Migrate,
            13 => NetOp::Heartbeat,
            _ => return None,
        })
    }
}

/// A decoded 16 B network-engine message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetMsg {
    /// Buffer pointer (pool address) or opcode-specific payload.
    pub ptr: u64,
    /// Packet size in bytes, or opcode-specific small payload.
    pub size: u16,
    /// Operation.
    pub op: NetOp,
    /// Instance IP this message concerns.
    pub ip: Ipv4Addr,
}

impl NetMsg {
    /// Encode into a 16 B channel message (epoch byte left clear).
    pub fn encode(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.ptr.to_le_bytes());
        b[8..10].copy_from_slice(&self.size.to_le_bytes());
        b[10] = self.op.to_byte();
        b[11..15].copy_from_slice(&self.ip.0);
        b
    }

    /// Decode a 16 B channel message. `None` for unknown opcodes.
    pub fn decode(b: &[u8; 16]) -> Option<NetMsg> {
        #[inline]
        fn sub<const N: usize>(b: &[u8; 16], off: usize) -> [u8; N] {
            let mut out = [0u8; N];
            out.copy_from_slice(&b[off..off + N]);
            out
        }
        Some(NetMsg {
            ptr: u64::from_le_bytes(sub(b, 0)),
            size: u16::from_le_bytes(sub(b, 8)),
            op: NetOp::from_byte(b[10])?,
            ip: Ipv4Addr(sub(b, 11)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_opcodes() {
        for op in [
            NetOp::Tx,
            NetOp::TxComplete,
            NetOp::Rx,
            NetOp::RxComplete,
            NetOp::Register,
            NetOp::Unregister,
            NetOp::LinkFailed,
            NetOp::Telemetry,
            NetOp::Reroute,
            NetOp::AllocRequest,
            NetOp::AllocResponse,
            NetOp::Migrate,
            NetOp::Heartbeat,
        ] {
            let m = NetMsg {
                ptr: 0x0102_0304_0506_0708,
                size: 1500,
                op,
                ip: Ipv4Addr::instance(300),
            };
            let enc = m.encode();
            assert_eq!(enc[15] & 0x80, 0, "epoch byte clear");
            assert_eq!(NetMsg::decode(&enc), Some(m));
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 16];
        b[10] = 99;
        assert!(NetMsg::decode(&b).is_none());
    }

    #[test]
    fn field_offsets_match_paper_layout() {
        let m = NetMsg {
            ptr: u64::MAX,
            size: 0xABCD,
            op: NetOp::Tx,
            ip: Ipv4Addr([1, 2, 3, 4]),
        };
        let b = m.encode();
        assert_eq!(&b[0..8], &[0xff; 8]); // 8 B pointer
        assert_eq!(&b[8..10], &0xABCDu16.to_le_bytes()); // 2 B size
        assert_eq!(b[10], 1); // 1 B opcode
        assert_eq!(&b[11..15], &[1, 2, 3, 4]); // 4 B instance IP
        assert_eq!(b[15], 0); // epoch byte
    }
}
