//! The Oasis storage engine (§3.4).
//!
//! Mirrors the network engine's structure: a frontend driver per host gives
//! local instances a block-device interface; a backend driver runs only on
//! hosts with local SSDs and operates their submission/completion queues
//! through the native driver. Frontend and backend exchange **64 B
//! messages that mirror NVMe commands** over Oasis channels; data moves
//! through I/O buffers in shared CXL memory that the SSD DMAs directly
//! (the backend never inspects them, §3.2.1).
//!
//! The paper designs this engine but does not implement it; we implement it
//! fully, including the §3.4 failure semantics: a failed drive completes
//! I/O with an error status that propagates to the guest — there is no
//! transparent failover for stateful devices.
//!
//! [`harness::StoragePod`] co-simulates a frontend host, a backend host,
//! and an SSD for the integration tests and the storage benchmarks.

pub mod backend;
pub mod frontend;
pub mod harness;

pub use backend::StorageBackend;
pub use frontend::{IoResult, StorageFrontend};
pub use harness::StoragePod;

use oasis_channel::MSG64;
use oasis_cxl::{CxlPool, RegionAllocator};

use crate::datapath::{alloc_msg_channel, ChannelPair};

/// Allocate one direction of a storage driver link: a 64 B message channel.
/// Thin wrapper over the generic allocator in `datapath` — the layout math
/// lives there.
pub fn alloc_storage_channel(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
    slots: u64,
) -> ChannelPair {
    alloc_msg_channel(pool, ra, name, slots, MSG64 as u64)
}
