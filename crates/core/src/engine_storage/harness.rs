//! Co-simulated storage pod: one frontend host, one SSD host, one pool.

use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_sim::time::SimTime;
use oasis_storage::ssd::{Ssd, SsdConfig};

use crate::config::OasisConfig;
use crate::datapath::BufferArea;

use super::alloc_storage_channel;
use super::backend::StorageBackend;
use super::frontend::StorageFrontend;

/// A minimal two-host storage pod for tests and benchmarks: instances on
/// host 0 reach an SSD attached to host 1 through the storage engine.
pub struct StoragePod {
    /// Shared pool.
    pub pool: CxlPool,
    /// Frontend driver (host 0).
    pub frontend: StorageFrontend,
    /// Backend driver (host 1).
    pub backend: StorageBackend,
    /// The SSD on host 1.
    pub ssd: Ssd,
}

impl StoragePod {
    /// Build the pod. `data_buf_size` bounds the largest single I/O.
    pub fn new(cfg: OasisConfig, ssd_cfg: SsdConfig, data_buf_size: u64) -> Self {
        let mut pool = CxlPool::new(32 << 20, 2);
        let mut ra = RegionAllocator::new(&pool);
        let data_region = ra.alloc(
            &mut pool,
            "storage.fe0.data",
            data_buf_size * 64,
            TrafficClass::Payload,
        );
        let cmd = alloc_storage_channel(&mut pool, &mut ra, "fe0->be0.cmd", 1024);
        let cpl = alloc_storage_channel(&mut pool, &mut ra, "be0->fe0.cpl", 1024);

        let mut frontend = StorageFrontend::new(
            0,
            HostCtx::new(PortId(0), 0),
            cfg.clone(),
            BufferArea::new(data_region, data_buf_size),
        );
        frontend.add_ssd_link(0, cmd.sender, cpl.receiver);

        let mut backend = StorageBackend::new(0, 1, HostCtx::new(PortId(1), 0), cfg);
        backend.add_frontend_link(0, cpl.sender, cmd.receiver);

        StoragePod {
            pool,
            frontend,
            backend,
            ssd: Ssd::new(ssd_cfg),
        }
    }

    /// Co-simulate until both cores pass `until`.
    pub fn run(&mut self, until: SimTime) {
        loop {
            let fe = self.frontend.core.clock;
            let be = self.backend.core.clock;
            if fe >= until && be >= until {
                break;
            }
            if fe <= be && fe < until {
                self.frontend.step(&mut self.pool);
            } else {
                self.backend.step(&mut self.pool, &mut self.ssd);
            }
        }
    }

    /// Run until `n` completions have arrived (with a simulated-time cap).
    pub fn run_until_completions(&mut self, n: usize, cap: SimTime) -> Vec<super::IoResult> {
        let mut out = Vec::new();
        while out.len() < n {
            assert!(
                self.frontend.core.clock < cap,
                "storage pod stalled waiting for completions ({}/{n})",
                out.len()
            );
            let next = self.frontend.core.clock.max(self.backend.core.clock)
                + oasis_sim::time::SimDuration::from_micros(5);
            self.run(next);
            out.extend(self.frontend.take_completions());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_storage::command::NvmeStatus;
    use oasis_storage::BLOCK_SIZE;

    fn pod() -> StoragePod {
        StoragePod::new(OasisConfig::default(), SsdConfig::default(), 8 * BLOCK_SIZE)
    }

    #[test]
    fn write_then_read_roundtrip_across_hosts() {
        let mut p = pod();
        let data: Vec<u8> = (0..BLOCK_SIZE as usize).map(|i| (i % 251) as u8).collect();
        let wcid = p
            .frontend
            .submit_write(&mut p.pool, 0, 10, &data)
            .expect("write accepted");
        let done = p.run_until_completions(1, SimTime::from_millis(50));
        assert_eq!(done[0].cid, wcid);
        assert!(done[0].status.is_ok());

        let rcid = p
            .frontend
            .submit_read(&mut p.pool, 0, 10, 1)
            .expect("read accepted");
        let done = p.run_until_completions(1, SimTime::from_millis(100));
        assert_eq!(done[0].cid, rcid);
        assert!(done[0].status.is_ok());
        assert_eq!(done[0].data.as_deref(), Some(&data[..]));
    }

    #[test]
    fn read_latency_dominated_by_flash_not_engine() {
        // §3.4 rationale: engine overhead is single-digit us against ~100us
        // SSD latency.
        let mut p = pod();
        p.frontend.submit_read(&mut p.pool, 0, 0, 1).unwrap();
        let t0 = p.frontend.core.clock;
        let _ = p.run_until_completions(1, SimTime::from_millis(50));
        let latency = p.frontend.core.clock - t0;
        let flash = p.ssd.config().read_latency_ns;
        assert!(
            latency.as_nanos() < flash + 30_000,
            "engine added too much: {latency} vs flash {flash}ns"
        );
        assert!(latency.as_nanos() >= flash);
    }

    #[test]
    fn failed_drive_propagates_error_to_guest() {
        let mut p = pod();
        p.ssd.set_failed(true);
        p.frontend.submit_read(&mut p.pool, 0, 0, 1).unwrap();
        let done = p.run_until_completions(1, SimTime::from_millis(50));
        assert_eq!(done[0].status, NvmeStatus::DeviceFailure);
        assert_eq!(p.frontend.stats.errors, 1);
        // After repair, I/O works again.
        p.ssd.set_failed(false);
        p.frontend.submit_read(&mut p.pool, 0, 0, 1).unwrap();
        let done = p.run_until_completions(1, SimTime::from_millis(100));
        assert!(done[0].status.is_ok());
    }

    #[test]
    fn flush_and_out_of_range() {
        let mut p = pod();
        p.frontend.submit_flush(&mut p.pool, 0).unwrap();
        let done = p.run_until_completions(1, SimTime::from_millis(50));
        assert!(done[0].status.is_ok());

        let blocks = p.ssd.config().blocks_per_ns;
        p.frontend.submit_read(&mut p.pool, 0, blocks, 1).unwrap();
        let done = p.run_until_completions(1, SimTime::from_millis(50));
        assert_eq!(done[0].status, NvmeStatus::LbaOutOfRange);
    }

    #[test]
    fn pipelined_ios_share_flash_parallelism() {
        let mut p = pod();
        for i in 0..8 {
            p.frontend.submit_read(&mut p.pool, 0, i, 1).unwrap();
        }
        let t0 = p.frontend.core.clock;
        let done = p.run_until_completions(8, SimTime::from_millis(200));
        assert_eq!(done.len(), 8);
        let elapsed = (p.frontend.core.clock - t0).as_nanos();
        // 8 reads across 8 channels complete in ~1 flash latency, not 8.
        assert!(
            elapsed < 3 * p.ssd.config().read_latency_ns,
            "no parallelism: {elapsed}ns"
        );
    }

    #[test]
    fn buffer_exhaustion_refuses_cleanly() {
        let mut p = StoragePod::new(
            OasisConfig::default(),
            SsdConfig::default(),
            BLOCK_SIZE, // 64 one-block buffers
        );
        let mut accepted = 0;
        for i in 0..200 {
            if p.frontend.submit_read(&mut p.pool, 0, i % 16, 1).is_some() {
                accepted += 1;
            }
        }
        assert!(accepted <= 64);
        assert!(p.frontend.stats.refused > 0);
        // Everything accepted still completes.
        let done = p.run_until_completions(accepted, SimTime::from_millis(500));
        assert_eq!(done.len(), accepted);
    }
}
