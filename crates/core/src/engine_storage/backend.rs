//! Storage-engine backend driver: operates the SSD's queues (§3.4).

use oasis_channel::{Receiver, Sender, SeqWindow};
use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_cxl::{CxlPool, HostCtx};
use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;
use oasis_storage::command::{NvmeCommand, NvmeCompletion, NvmeStatus};
use oasis_storage::ssd::Ssd;

use crate::config::OasisConfig;
use crate::snapshot::Snapshottable;

struct PoolDma<'a> {
    pool: &'a mut CxlPool,
    port: oasis_cxl::pool::PortId,
    dma_cxl_ns: u64,
}

impl DmaMemory for PoolDma<'_> {
    fn dma_read(&mut self, now: oasis_sim::time::SimTime, mem: MemRef, out: &mut [u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_read(now, self.port, a, out),
            MemRef::HostLocal(_) => {
                // Storage buffers live in the pool by construction; a local
                // ref here is a wiring bug, surfaced in debug builds and
                // answered with zeroes in release.
                debug_assert!(false, "storage buffers live in the pool");
                out.fill(0);
            }
        }
    }
    fn dma_write(&mut self, now: oasis_sim::time::SimTime, mem: MemRef, data: &[u8]) {
        match mem {
            MemRef::Pool(a) => self.pool.dma_write(now, self.port, a, data),
            MemRef::HostLocal(_) => {
                // See dma_read: a local ref cannot occur; drop the write
                // rather than crash the pod.
                debug_assert!(false, "storage buffers live in the pool");
            }
        }
    }
    fn dma_latency_ns(&self, _mem: MemRef) -> u64 {
        self.dma_cxl_ns
    }
}

/// How many completed command ids each frontend link remembers for replay
/// deduplication. Far larger than the in-flight window a frontend can
/// have, so a replayed id is always still remembered.
const DEDUP_WINDOW: usize = 1024;

/// One channel link to a frontend driver.
struct FeLink {
    fe_host: usize,
    to: Sender,
    from: Receiver,
    /// Recently completed command ids (exactly-once execution: replays of
    /// these are answered from `done`, not re-executed).
    seen: SeqWindow,
    /// Completion status per remembered id, evicted in lockstep with
    /// `seen`.
    done: DetMap<u16, NvmeStatus>,
}

/// Backend counters.
#[derive(Clone, Debug, Default)]
pub struct StorageBeStats {
    /// Commands forwarded to the SSD.
    pub forwarded: u64,
    /// Commands refused by a full submission queue and bounced with an
    /// error.
    pub sq_full: u64,
    /// Completions returned to frontends.
    pub completions: u64,
    /// Replayed commands answered from the completion cache instead of
    /// being re-executed.
    pub replays_answered: u64,
}

/// The storage backend driver: runs only on hosts with local SSDs (§3.4),
/// one dedicated polling core.
pub struct StorageBackend {
    /// The SSD this backend drives.
    pub ssd_id: usize,
    /// The host the SSD is attached to.
    pub host: usize,
    /// The polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: StorageBeStats,
    cfg: OasisConfig,
    links: Vec<FeLink>,
}

impl StorageBackend {
    /// Create a backend for `ssd_id` on `host`.
    pub fn new(ssd_id: usize, host: usize, core: HostCtx, cfg: OasisConfig) -> Self {
        StorageBackend {
            ssd_id,
            host,
            core,
            stats: StorageBeStats::default(),
            cfg,
            links: Vec::new(),
        }
    }

    /// Duplicate commands rejected by the per-link dedup windows over the
    /// backend's lifetime (telemetry; exported as `channel.dedup_drops`).
    pub fn dedup_drops(&self) -> u64 {
        self.links.iter().map(|l| l.seen.dup_hits).sum()
    }

    /// Wire a channel pair to a frontend on `fe_host`.
    pub fn add_frontend_link(&mut self, fe_host: usize, to: Sender, from: Receiver) {
        self.links.push(FeLink {
            fe_host,
            to,
            from,
            seen: SeqWindow::new(DEDUP_WINDOW),
            done: DetMap::default(),
        });
    }

    fn send_completion(&mut self, pool: &mut CxlPool, comp: NvmeCompletion) {
        if let Some(li) = self
            .links
            .iter()
            .position(|l| l.fe_host == comp.frontend as usize)
        {
            let link = &mut self.links[li];
            if link
                .to
                .try_send(&mut self.core, pool, &comp.encode())
                .unwrap_or(false)
            {
                link.to.flush(&mut self.core, pool);
                self.stats.completions += 1;
            }
        }
    }

    /// One polling round: commands in, completions out. The backend never
    /// touches data buffers — the SSD DMAs them directly (§3.2.1).
    pub fn step(&mut self, pool: &mut CxlPool, ssd: &mut Ssd) {
        self.core.advance(self.cfg.driver_loop_ns);
        let mut buf = [0u8; 64];

        // Frontend commands → SSD submission queue.
        for li in 0..self.links.len() {
            loop {
                let got = self.links[li].from.try_recv(&mut self.core, pool, &mut buf);
                if !got {
                    break;
                }
                let Some(cmd) = NvmeCommand::decode(&buf) else {
                    continue;
                };
                if let Some(&status) = self.links[li].done.get(&cmd.cid) {
                    // Replay of a command that already executed (the
                    // frontend timed out or restarted before seeing the
                    // completion): answer from the cache, never re-execute.
                    self.stats.replays_answered += 1;
                    self.send_completion(
                        pool,
                        NvmeCompletion {
                            cid: cmd.cid,
                            status,
                            frontend: cmd.frontend,
                        },
                    );
                    continue;
                }
                if ssd.submit(cmd) {
                    self.stats.forwarded += 1;
                } else {
                    // Bounce with an error so the frontend can retry.
                    self.stats.sq_full += 1;
                    self.send_completion(
                        pool,
                        NvmeCompletion {
                            cid: cmd.cid,
                            status: NvmeStatus::DeviceFailure,
                            frontend: cmd.frontend,
                        },
                    );
                }
            }
        }

        // Drive the SSD.
        let clock = self.core.clock;
        {
            let mut dma = PoolDma {
                pool,
                port: self.core.port,
                dma_cxl_ns: self.core.costs.dma_cxl_ns,
            };
            ssd.process(clock, &mut dma);
        }

        // SSD completions → frontends (including error statuses from a
        // failed drive, which the engine simply propagates, §3.4).
        // Terminal statuses enter the dedup cache; transient media errors
        // do not, so a retry of the same cid really re-reads the device.
        for comp in ssd.poll_completions(self.core.clock) {
            if comp.status != NvmeStatus::MediaError {
                if let Some(li) = self
                    .links
                    .iter()
                    .position(|l| l.fe_host == comp.frontend as usize)
                {
                    let link = &mut self.links[li];
                    let (_, evicted) = link.seen.insert_evicting(comp.cid);
                    if let Some(old) = evicted {
                        link.done.remove(&old);
                    }
                    link.done.insert(comp.cid, comp.status);
                }
            }
            self.send_completion(pool, comp);
        }

        for link in &mut self.links {
            link.from.publish_consumed(&mut self.core, pool);
        }
    }
}

impl Snapshottable for StorageBackend {
    /// The exactly-once substrate serializes per frontend link: the dedup
    /// window (as its eviction-ordered id list) and the completion cache
    /// answering replays, sorted by command id for byte stability.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        let s = &self.stats;
        for v in [s.forwarded, s.sq_full, s.completions, s.replays_answered] {
            w.put_u64(v);
        }
        w.put_u64(self.links.len() as u64);
        for link in &self.links {
            w.put_u64(link.fe_host as u64);
            let (capacity, order, dup_hits) = link.seen.to_parts();
            w.put_u64(capacity as u64);
            w.put_u64(order.len() as u64);
            for seq in order {
                w.put_u16(seq);
            }
            w.put_u64(dup_hits);
            let mut cids: Vec<u16> = link.done.keys().copied().collect();
            cids.sort_unstable();
            w.put_u64(cids.len() as u64);
            for cid in cids {
                if let Some(status) = link.done.get(&cid) {
                    w.put_u16(cid);
                    w.put_u8(status.to_byte());
                }
            }
        }
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("storage-be clock")?);
        self.stats.forwarded = r.u64("storage-be forwarded")?;
        self.stats.sq_full = r.u64("storage-be sq_full")?;
        self.stats.completions = r.u64("storage-be completions")?;
        self.stats.replays_answered = r.u64("storage-be replays_answered")?;
        let n = r.u64("storage-be link count")?;
        if n != self.links.len() as u64 {
            return Err(SnapshotError::Corrupt("storage-be link count"));
        }
        for link in self.links.iter_mut() {
            let fe_host = r.u64("storage-be link fe")?;
            if fe_host != link.fe_host as u64 {
                return Err(SnapshotError::Corrupt("storage-be link identity"));
            }
            let capacity = r.u64("storage-be dedup capacity")? as usize;
            // The window capacity is construction-time config: it must
            // match the identically built target, which also bounds the
            // allocations below against a corrupted length field.
            if capacity != link.seen.capacity() {
                return Err(SnapshotError::Corrupt("storage-be dedup capacity"));
            }
            let order_len = r.u64("storage-be dedup length")?;
            if capacity == 0 || order_len > capacity as u64 {
                return Err(SnapshotError::Corrupt("storage-be dedup length"));
            }
            let mut order = Vec::with_capacity(order_len as usize);
            for _ in 0..order_len {
                order.push(r.u16("storage-be dedup id")?);
            }
            let dup_hits = r.u64("storage-be dedup hits")?;
            link.seen = SeqWindow::from_parts(capacity, &order, dup_hits);
            let done_len = r.u64("storage-be cache count")?;
            link.done.clear();
            for _ in 0..done_len {
                let cid = r.u16("storage-be cache cid")?;
                let status = NvmeStatus::from_byte(r.u8("storage-be cache status")?);
                link.done.insert(cid, status);
            }
        }
        Ok(())
    }
}
