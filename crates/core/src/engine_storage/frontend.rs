//! Storage-engine frontend driver: the block-device interface instances
//! see.

use oasis_channel::{Receiver, RetryPolicy, RetryState, Sender};
use oasis_cxl::{lines_covering, CxlPool, HostCtx};
use oasis_sim::detmap::DetMap;
use oasis_sim::time::{SimDuration, SimTime};
use oasis_storage::command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
use oasis_storage::BLOCK_SIZE;

use crate::config::OasisConfig;
use crate::datapath::BufferArea;
use crate::snapshot::Snapshottable;

/// A completed block I/O returned to the caller.
#[derive(Clone, Debug)]
pub struct IoResult {
    /// The command id returned at submit time.
    pub cid: u16,
    /// Completion status (drive failures surface here, §3.4).
    pub status: NvmeStatus,
    /// For reads: the data, copied out of shared CXL memory.
    pub data: Option<Vec<u8>>,
}

struct PendingIo {
    op: NvmeOpcode,
    buf: u64,
    bytes: u64,
    /// Target SSD (for resubmission routing).
    ssd: usize,
    /// The full command, kept for retransmission.
    cmd: NvmeCommand,
    /// Retry pacing for this command.
    retry: RetryState,
    /// First submission time (service-time telemetry; retries keep it).
    #[cfg(feature = "obs")]
    issued: oasis_sim::time::SimTime,
}

/// One channel link to a storage backend.
struct SsdLink {
    ssd: usize,
    to: Sender,
    from: Receiver,
}

/// Frontend counters.
#[derive(Clone, Debug, Default)]
pub struct StorageFeStats {
    /// Commands submitted.
    pub submitted: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Completions with error status.
    pub errors: u64,
    /// Submissions refused (no buffer / channel full).
    pub refused: u64,
    /// Commands resubmitted after a completion timeout or transient media
    /// error (§3.4 recovery).
    pub retries: u64,
    /// Commands failed to the caller after exhausting the retry budget.
    pub retry_exhausted: u64,
}

/// The storage frontend driver (one busy-polling core per host, §3.4).
pub struct StorageFrontend {
    /// Host this frontend runs on.
    pub host: usize,
    /// The polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: StorageFeStats,
    cfg: OasisConfig,
    links: Vec<SsdLink>,
    data_area: BufferArea,
    pending: DetMap<u16, PendingIo>,
    done: Vec<IoResult>,
    next_cid: u16,
    /// Testing knob for the sanitizer regression harness: skip the
    /// invalidation in [`Self::release_buf`], reintroducing the stale-read
    /// bug the release flush fixed.
    #[cfg(feature = "sanitize")]
    skip_release_invalidate: bool,
    /// Submit-to-completion latency, retries included (nanoseconds).
    #[cfg(feature = "obs")]
    service_ns: oasis_obs::ObsHistogram,
}

impl StorageFrontend {
    /// Create a frontend with its I/O data buffer area in pool memory.
    pub fn new(host: usize, core: HostCtx, cfg: OasisConfig, data_area: BufferArea) -> Self {
        StorageFrontend {
            host,
            core,
            stats: StorageFeStats::default(),
            cfg,
            links: Vec::new(),
            data_area,
            pending: DetMap::default(),
            done: Vec::new(),
            next_cid: 0,
            #[cfg(feature = "sanitize")]
            skip_release_invalidate: false,
            #[cfg(feature = "obs")]
            service_ns: oasis_obs::ObsHistogram::new(),
        }
    }

    /// Reintroduce the pre-fix buffer-release behaviour (no invalidation)
    /// so the sanitizer regression harness can prove it re-detects the
    /// stale-read bug. Test-only; exists only with the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    pub fn set_skip_release_invalidate(&mut self, skip: bool) {
        self.skip_release_invalidate = skip;
    }

    /// Wire a channel pair to an SSD's backend.
    pub fn add_ssd_link(&mut self, ssd: usize, to: Sender, from: Receiver) {
        self.links.push(SsdLink { ssd, to, from });
    }

    fn link_idx(&self, ssd: usize) -> Option<usize> {
        self.links.iter().position(|l| l.ssd == ssd)
    }

    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout: self.cfg.storage_retry_timeout,
            backoff: self.cfg.storage_retry_backoff,
            max_attempts: self.cfg.storage_retry_max_attempts,
        }
    }

    /// Invalidate a finished command's buffer lines and return the buffer
    /// for reuse. The next user's data arrives by device DMA straight into
    /// pool memory, so any line left cached here — in particular the clean
    /// copies `clwb` keeps after staging a write — would read back stale
    /// (§3.2.1 software coherence).
    fn release_buf(&mut self, pool: &mut CxlPool, p: &PendingIo) {
        if p.op == NvmeOpcode::Flush {
            return;
        }
        #[cfg(feature = "sanitize")]
        if self.skip_release_invalidate {
            self.data_area.free(p.buf);
            return;
        }
        for la in lines_covering(p.buf, p.bytes) {
            self.core.clflushopt(pool, la);
        }
        self.data_area.free(p.buf);
    }

    /// Put `cmd` back on the wire to `ssd`. A full channel is fine: the
    /// armed deadline fires again later.
    fn resend(&mut self, pool: &mut CxlPool, ssd: usize, cmd: &NvmeCommand) {
        if let Some(li) = self.link_idx(ssd) {
            let link = &mut self.links[li];
            if link
                .to
                .try_send(&mut self.core, pool, &cmd.encode())
                .unwrap_or(false)
            {
                link.to.flush(&mut self.core, pool);
            }
        }
    }

    fn submit(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        op: NvmeOpcode,
        lba: u64,
        nlb: u32,
        data: Option<&[u8]>,
    ) -> Option<u16> {
        let li = self.link_idx(ssd)?;
        let bytes = nlb as u64 * BLOCK_SIZE;
        let buf = if op == NvmeOpcode::Flush {
            0
        } else {
            if bytes > self.data_area.buf_size() {
                self.stats.refused += 1;
                return None;
            }
            match self.data_area.alloc() {
                Some(b) => b,
                None => {
                    self.stats.refused += 1;
                    return None;
                }
            }
        };
        // For writes, stage the data in shared CXL memory and write it back
        // so the SSD's DMA sees it (§3.2.1).
        if let Some(data) = data {
            debug_assert_eq!(data.len() as u64, bytes);
            self.core.write(pool, buf, data);
            for la in lines_covering(buf, bytes) {
                self.core.clwb(pool, la);
            }
            self.core.publish(pool, buf, bytes);
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let cmd = NvmeCommand {
            opcode: op,
            cid,
            nsid: 1,
            data_ptr: buf,
            slba: lba,
            nlb,
            frontend: self.host as u32,
        };
        let link = &mut self.links[li];
        if !link
            .to
            .try_send(&mut self.core, pool, &cmd.encode())
            .unwrap_or(false)
        {
            if op != NvmeOpcode::Flush {
                self.data_area.free(buf);
            }
            self.stats.refused += 1;
            return None;
        }
        link.to.flush(&mut self.core, pool);
        self.stats.submitted += 1;
        let retry = RetryState::armed(&self.retry_policy(), self.core.clock);
        self.pending.insert(
            cid,
            PendingIo {
                op,
                buf,
                bytes,
                ssd,
                cmd,
                retry,
                #[cfg(feature = "obs")]
                issued: self.core.clock,
            },
        );
        Some(cid)
    }

    /// Submit a write of whole blocks starting at `lba`.
    pub fn submit_write(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        lba: u64,
        data: &[u8],
    ) -> Option<u16> {
        assert_eq!(data.len() as u64 % BLOCK_SIZE, 0, "whole blocks only");
        let nlb = (data.len() as u64 / BLOCK_SIZE) as u32;
        self.submit(pool, ssd, NvmeOpcode::Write, lba, nlb, Some(data))
    }

    /// Submit a read of `nlb` blocks starting at `lba`.
    pub fn submit_read(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        lba: u64,
        nlb: u32,
    ) -> Option<u16> {
        self.submit(pool, ssd, NvmeOpcode::Read, lba, nlb, None)
    }

    /// Submit a flush.
    pub fn submit_flush(&mut self, pool: &mut CxlPool, ssd: usize) -> Option<u16> {
        self.submit(pool, ssd, NvmeOpcode::Flush, 0, 0, None)
    }

    /// One polling round: drain completion channels, then resubmit any
    /// command whose completion deadline has passed (an SSD in a fault
    /// window swallows commands whole; the backend deduplicates replays,
    /// so resubmission is safe even when the original is merely slow).
    pub fn step(&mut self, pool: &mut CxlPool) {
        self.core.advance(self.cfg.driver_loop_ns);
        let policy = self.retry_policy();
        let mut buf = [0u8; 64];
        for li in 0..self.links.len() {
            loop {
                let got = self.links[li].from.try_recv(&mut self.core, pool, &mut buf);
                if !got {
                    break;
                }
                let Some(comp) = NvmeCompletion::decode(&buf) else {
                    continue;
                };
                let Some(mut p) = self.pending.remove(&comp.cid) else {
                    continue;
                };
                if comp.status == NvmeStatus::MediaError && p.retry.can_retry(&policy) {
                    // Transient read error (injected fault window): burn an
                    // attempt and resubmit instead of surfacing it.
                    p.retry.rearm(&policy, self.core.clock);
                    self.stats.retries += 1;
                    let (ssd, cmd) = (p.ssd, p.cmd);
                    self.pending.insert(comp.cid, p);
                    self.resend(pool, ssd, &cmd);
                    continue;
                }
                let data = if p.op == NvmeOpcode::Read && comp.status.is_ok() {
                    // Copy the data out of shared memory. The SSD DMA'd it
                    // into the pool; any line of the buffer still cached
                    // here is stale by definition.
                    self.core.expect_fresh(pool, p.buf, p.bytes);
                    let mut out = vec![0u8; p.bytes as usize];
                    self.core.read_stream(pool, p.buf, &mut out);
                    Some(out)
                } else {
                    None
                };
                self.release_buf(pool, &p);
                self.stats.completed += 1;
                #[cfg(feature = "obs")]
                self.service_ns
                    .record((self.core.clock - p.issued).as_nanos());
                if !comp.status.is_ok() {
                    self.stats.errors += 1;
                }
                self.done.push(IoResult {
                    cid: comp.cid,
                    status: comp.status,
                    data,
                });
            }
            self.links[li].from.publish_consumed(&mut self.core, pool);
        }

        // Retry timers: resubmit expired commands, fail exhausted ones.
        let now = self.core.clock;
        let mut expired: Vec<u16> = self
            .pending
            .iter()
            .filter(|(_, p)| p.retry.expired(now))
            .map(|(cid, _)| *cid)
            .collect();
        expired.sort_unstable();
        for cid in expired {
            let can = self
                .pending
                .get(&cid)
                .is_some_and(|p| p.retry.can_retry(&policy));
            if can {
                let Some(p) = self.pending.get_mut(&cid) else {
                    continue;
                };
                p.retry.rearm(&policy, now);
                let (ssd, cmd) = (p.ssd, p.cmd);
                self.stats.retries += 1;
                self.resend(pool, ssd, &cmd);
            } else {
                let Some(p) = self.pending.remove(&cid) else {
                    continue;
                };
                self.release_buf(pool, &p);
                self.stats.completed += 1;
                #[cfg(feature = "obs")]
                self.service_ns
                    .record((self.core.clock - p.issued).as_nanos());
                self.stats.errors += 1;
                self.stats.retry_exhausted += 1;
                self.done.push(IoResult {
                    cid,
                    status: NvmeStatus::DeviceFailure,
                    data: None,
                });
            }
        }
    }

    /// After a host restart, rearm and resubmit every in-flight command:
    /// the submission intent survives the crash (it lives in this driver's
    /// state), but completions delivered into the lost cache did not. The
    /// backend's dedup window answers already-executed replays from its
    /// completion cache, so none of them runs twice.
    pub fn replay_pending(&mut self, pool: &mut CxlPool) {
        let policy = self.retry_policy();
        let now = self.core.clock;
        let mut cids: Vec<u16> = self.pending.keys().copied().collect();
        cids.sort_unstable();
        for cid in cids {
            let Some(p) = self.pending.get_mut(&cid) else {
                continue;
            };
            p.retry = RetryState::armed(&policy, now);
            let (ssd, cmd) = (p.ssd, p.cmd);
            self.stats.retries += 1;
            self.resend(pool, ssd, &cmd);
        }
    }

    /// Take completed I/Os.
    pub fn take_completions(&mut self) -> Vec<IoResult> {
        std::mem::take(&mut self.done)
    }

    /// I/Os still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Submit-to-completion service-time histogram (telemetry export).
    #[cfg(feature = "obs")]
    pub fn service_hist(&self) -> &oasis_obs::ObsHistogram {
        &self.service_ns
    }
}

impl Snapshottable for StorageFrontend {
    /// In-flight commands serialize as their full 64 B wire descriptor plus
    /// routing and retry state; `op`/`buf`/`bytes` are derived fields and
    /// rebuilt from the descriptor on restore. The `issued` timestamp slot
    /// is written unconditionally (zero without the `obs` feature) so the
    /// byte format is feature-independent. The service histogram is a pure
    /// observer and is excluded.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        let s = &self.stats;
        for v in [
            s.submitted,
            s.completed,
            s.errors,
            s.refused,
            s.retries,
            s.retry_exhausted,
        ] {
            w.put_u64(v);
        }
        w.put_u16(self.next_cid);
        let mut cids: Vec<u16> = self.pending.keys().copied().collect();
        cids.sort_unstable();
        w.put_u64(cids.len() as u64);
        for cid in cids {
            if let Some(p) = self.pending.get(&cid) {
                w.put_u16(cid);
                w.put_bytes(&p.cmd.encode());
                w.put_u64(p.ssd as u64);
                let (attempts, deadline, wait) = p.retry.to_parts();
                w.put_u32(attempts);
                w.put_u64(deadline.as_nanos());
                w.put_u64(wait.as_nanos());
                #[cfg(feature = "obs")]
                w.put_u64(p.issued.as_nanos());
                #[cfg(not(feature = "obs"))]
                w.put_u64(0);
            }
        }
        w.put_u64(self.done.len() as u64);
        for res in &self.done {
            w.put_u16(res.cid);
            w.put_u8(res.status.to_byte());
            match &res.data {
                Some(data) => {
                    w.put_bool(true);
                    w.put_bytes(data);
                }
                None => w.put_bool(false),
            }
        }
        self.data_area.snapshot_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("storage-fe clock")?);
        self.stats.submitted = r.u64("storage-fe submitted")?;
        self.stats.completed = r.u64("storage-fe completed")?;
        self.stats.errors = r.u64("storage-fe errors")?;
        self.stats.refused = r.u64("storage-fe refused")?;
        self.stats.retries = r.u64("storage-fe retries")?;
        self.stats.retry_exhausted = r.u64("storage-fe retry_exhausted")?;
        self.next_cid = r.u16("storage-fe next cid")?;
        let n = r.u64("storage-fe pending count")?;
        self.pending.clear();
        for _ in 0..n {
            let cid = r.u16("storage-fe pending cid")?;
            let blob = r.bytes("storage-fe pending cmd")?;
            let arr: [u8; 64] = blob
                .try_into()
                .map_err(|_| SnapshotError::Corrupt("storage-fe pending cmd"))?;
            let cmd = NvmeCommand::decode(&arr)
                .ok_or(SnapshotError::Corrupt("storage-fe pending cmd"))?;
            if cmd.cid != cid {
                return Err(SnapshotError::Corrupt("storage-fe pending cid"));
            }
            let ssd = r.u64("storage-fe pending ssd")? as usize;
            let attempts = r.u32("storage-fe pending attempts")?;
            let deadline = SimTime(r.u64("storage-fe pending deadline")?);
            let wait = SimDuration::from_nanos(r.u64("storage-fe pending wait")?);
            let _issued_ns = r.u64("storage-fe pending issued")?;
            self.pending.insert(
                cid,
                PendingIo {
                    op: cmd.opcode,
                    buf: cmd.data_ptr,
                    bytes: cmd.nlb as u64 * BLOCK_SIZE,
                    ssd,
                    cmd,
                    retry: RetryState::from_parts(attempts, deadline, wait),
                    #[cfg(feature = "obs")]
                    issued: SimTime(_issued_ns),
                },
            );
        }
        let n = r.u64("storage-fe done count")?;
        self.done.clear();
        for _ in 0..n {
            let cid = r.u16("storage-fe done cid")?;
            let status = NvmeStatus::from_byte(r.u8("storage-fe done status")?);
            let data = if r.bool("storage-fe done data flag")? {
                Some(r.bytes("storage-fe done data")?.to_vec())
            } else {
                None
            };
            self.done.push(IoResult { cid, status, data });
        }
        self.data_area.restore_state(r)?;
        Ok(())
    }
}
