//! Storage-engine frontend driver: the block-device interface instances
//! see.

use oasis_channel::{Receiver, Sender};
use oasis_cxl::{lines_covering, CxlPool, HostCtx};
use oasis_sim::detmap::DetMap;
use oasis_storage::command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
use oasis_storage::BLOCK_SIZE;

use crate::config::OasisConfig;
use crate::datapath::BufferArea;

/// A completed block I/O returned to the caller.
#[derive(Clone, Debug)]
pub struct IoResult {
    /// The command id returned at submit time.
    pub cid: u16,
    /// Completion status (drive failures surface here, §3.4).
    pub status: NvmeStatus,
    /// For reads: the data, copied out of shared CXL memory.
    pub data: Option<Vec<u8>>,
}

struct PendingIo {
    op: NvmeOpcode,
    buf: u64,
    bytes: u64,
}

/// One channel link to a storage backend.
struct SsdLink {
    ssd: usize,
    to: Sender,
    from: Receiver,
}

/// Frontend counters.
#[derive(Clone, Debug, Default)]
pub struct StorageFeStats {
    /// Commands submitted.
    pub submitted: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Completions with error status.
    pub errors: u64,
    /// Submissions refused (no buffer / channel full).
    pub refused: u64,
}

/// The storage frontend driver (one busy-polling core per host, §3.4).
pub struct StorageFrontend {
    /// Host this frontend runs on.
    pub host: usize,
    /// The polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: StorageFeStats,
    #[allow(dead_code)]
    cfg: OasisConfig,
    links: Vec<SsdLink>,
    data_area: BufferArea,
    pending: DetMap<u16, PendingIo>,
    done: Vec<IoResult>,
    next_cid: u16,
}

impl StorageFrontend {
    /// Create a frontend with its I/O data buffer area in pool memory.
    pub fn new(host: usize, core: HostCtx, cfg: OasisConfig, data_area: BufferArea) -> Self {
        StorageFrontend {
            host,
            core,
            stats: StorageFeStats::default(),
            cfg,
            links: Vec::new(),
            data_area,
            pending: DetMap::default(),
            done: Vec::new(),
            next_cid: 0,
        }
    }

    /// Wire a channel pair to an SSD's backend.
    pub fn add_ssd_link(&mut self, ssd: usize, to: Sender, from: Receiver) {
        self.links.push(SsdLink { ssd, to, from });
    }

    fn link_idx(&self, ssd: usize) -> Option<usize> {
        self.links.iter().position(|l| l.ssd == ssd)
    }

    fn submit(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        op: NvmeOpcode,
        lba: u64,
        nlb: u32,
        data: Option<&[u8]>,
    ) -> Option<u16> {
        let li = self.link_idx(ssd)?;
        let bytes = nlb as u64 * BLOCK_SIZE;
        let buf = if op == NvmeOpcode::Flush {
            0
        } else {
            if bytes > self.data_area.buf_size() {
                self.stats.refused += 1;
                return None;
            }
            match self.data_area.alloc() {
                Some(b) => b,
                None => {
                    self.stats.refused += 1;
                    return None;
                }
            }
        };
        // For writes, stage the data in shared CXL memory and write it back
        // so the SSD's DMA sees it (§3.2.1).
        if let Some(data) = data {
            debug_assert_eq!(data.len() as u64, bytes);
            self.core.write(pool, buf, data);
            for la in lines_covering(buf, bytes) {
                self.core.clwb(pool, la);
            }
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let cmd = NvmeCommand {
            opcode: op,
            cid,
            nsid: 1,
            data_ptr: buf,
            slba: lba,
            nlb,
            frontend: self.host as u32,
        };
        let link = &mut self.links[li];
        if !link.to.try_send(&mut self.core, pool, &cmd.encode()) {
            if op != NvmeOpcode::Flush {
                self.data_area.free(buf);
            }
            self.stats.refused += 1;
            return None;
        }
        link.to.flush(&mut self.core, pool);
        self.stats.submitted += 1;
        self.pending.insert(cid, PendingIo { op, buf, bytes });
        Some(cid)
    }

    /// Submit a write of whole blocks starting at `lba`.
    pub fn submit_write(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        lba: u64,
        data: &[u8],
    ) -> Option<u16> {
        assert_eq!(data.len() as u64 % BLOCK_SIZE, 0, "whole blocks only");
        let nlb = (data.len() as u64 / BLOCK_SIZE) as u32;
        self.submit(pool, ssd, NvmeOpcode::Write, lba, nlb, Some(data))
    }

    /// Submit a read of `nlb` blocks starting at `lba`.
    pub fn submit_read(
        &mut self,
        pool: &mut CxlPool,
        ssd: usize,
        lba: u64,
        nlb: u32,
    ) -> Option<u16> {
        self.submit(pool, ssd, NvmeOpcode::Read, lba, nlb, None)
    }

    /// Submit a flush.
    pub fn submit_flush(&mut self, pool: &mut CxlPool, ssd: usize) -> Option<u16> {
        self.submit(pool, ssd, NvmeOpcode::Flush, 0, 0, None)
    }

    /// One polling round: drain completion channels.
    pub fn step(&mut self, pool: &mut CxlPool) {
        self.core.advance(self.cfg.driver_loop_ns);
        let mut buf = [0u8; 64];
        for li in 0..self.links.len() {
            loop {
                let got = self.links[li].from.try_recv(&mut self.core, pool, &mut buf);
                if !got {
                    break;
                }
                let Some(comp) = NvmeCompletion::decode(&buf) else {
                    continue;
                };
                let Some(p) = self.pending.remove(&comp.cid) else {
                    continue;
                };
                let data = if p.op == NvmeOpcode::Read && comp.status.is_ok() {
                    // Copy the data out of shared memory and invalidate the
                    // buffer lines before reuse.
                    let mut out = vec![0u8; p.bytes as usize];
                    self.core.read_stream(pool, p.buf, &mut out);
                    for la in lines_covering(p.buf, p.bytes) {
                        self.core.clflushopt(pool, la);
                    }
                    Some(out)
                } else {
                    None
                };
                if p.op != NvmeOpcode::Flush {
                    self.data_area.free(p.buf);
                }
                self.stats.completed += 1;
                if !comp.status.is_ok() {
                    self.stats.errors += 1;
                }
                self.done.push(IoResult {
                    cid: comp.cid,
                    status: comp.status,
                    data,
                });
            }
            self.links[li].from.publish_consumed(&mut self.core, pool);
        }
    }

    /// Take completed I/Os.
    pub fn take_completions(&mut self) -> Vec<IoResult> {
        std::mem::take(&mut self.done)
    }

    /// I/Os still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}
