//! Typed errors for pod control-plane operations.
//!
//! Runtime paths in the pod previously panicked (`unwrap`/`expect`) on
//! conditions a caller can actually hit — a full pod, an unknown host, a
//! missing device. Those now surface as [`PodError`] so experiment
//! harnesses can handle placement failure the way a cloud control plane
//! would: by reporting it, not by aborting the simulation.

use oasis_channel::ChannelError;

/// Why a pod control-plane operation could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodError {
    /// No NIC in the pod has spare capacity for another instance.
    NoNicCapacity,
    /// The named host does not exist in this pod.
    NoSuchHost(usize),
    /// The named host exists but is not running the engine the operation
    /// needs (e.g. an accel job on a host with no accel frontend).
    EngineMissing {
        /// Host that was addressed.
        host: usize,
        /// Engine that is absent ("net", "storage", "accel").
        engine: &'static str,
    },
    /// The named device index does not exist.
    NoSuchDevice {
        /// Device class ("nic", "ssd", "accel").
        class: &'static str,
        /// Index that was addressed.
        index: usize,
    },
    /// A message-channel operation failed (corrupted descriptor, bad
    /// size).
    Channel(ChannelError),
}

impl From<ChannelError> for PodError {
    fn from(e: ChannelError) -> Self {
        PodError::Channel(e)
    }
}

impl std::fmt::Display for PodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodError::NoNicCapacity => write!(f, "no NIC with spare capacity in the pod"),
            PodError::NoSuchHost(h) => write!(f, "no host {h} in this pod"),
            PodError::EngineMissing { host, engine } => {
                write!(f, "host {host} has no {engine} engine")
            }
            PodError::NoSuchDevice { class, index } => {
                write!(f, "no {class} {index} in this pod")
            }
            PodError::Channel(e) => write!(f, "channel error: {e:?}"),
        }
    }
}

impl std::error::Error for PodError {}

/// Why a fleet control-plane operation could not complete.
///
/// Fleet-level failures are distinct from [`PodError`]: they concern pod
/// membership, cross-pod links, and fleet-scoped instance ids rather than
/// any single pod's devices. Placement *rejection* (no capacity anywhere)
/// is not an error — it is a counted outcome of a `CreateInstance`
/// command — so it does not appear here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// Two pods were registered with the same `PodBuilder::site` value.
    /// Sites feed the upper bits of every simulated MAC address, so a
    /// collision silently corrupts uplink switch learning; it must be
    /// rejected at `Fleet::add_pod` time.
    DuplicateSite {
        /// The colliding site id.
        site: u32,
        /// The already-registered pod that owns it.
        pod: usize,
    },
    /// A pod cannot be linked to itself.
    SelfLink {
        /// The pod on both ends of the rejected link.
        pod: usize,
    },
    /// The two pods are already connected (in either direction).
    DuplicateLink {
        /// Lower pod index of the existing link.
        a: usize,
        /// Higher pod index of the existing link.
        b: usize,
    },
    /// The named pod does not exist in this fleet.
    NoSuchPod(usize),
    /// The named fleet instance id does not exist or was already killed.
    NoSuchInstance(u64),
    /// No pod in the requested scope can take the instance (the command
    /// is still logged; this surfaces the rejection to a caller who asked
    /// for a live launch).
    NoCapacity,
    /// `RegisterPod` / `AddLink` must arrive via `Fleet::add_pod` /
    /// `Fleet::connect`, which wire the uplink switches alongside the
    /// log; executing them directly would desync the data plane.
    TopologyManaged,
    /// The replicated allocator service refused the command (e.g. the
    /// Raft leader is unavailable).
    NotLeader,
    /// The instance already has an open migration ticket; a second
    /// migration (or a resize) must wait for `FinishMigration`.
    MigrationInProgress(u64),
    /// `FinishMigration` addressed an instance with no open ticket —
    /// the exactly-once guard against double commit/rollback.
    NotMigrating(u64),
    /// The requested target pod cannot reserve the instance's resources
    /// (or is the pod the instance already runs on).
    MigrationInfeasible {
        /// Fleet instance id.
        id: u64,
        /// The rejected target pod.
        dst_pod: usize,
    },
    /// A pod-local launch failed after fleet-level placement succeeded.
    Pod(PodError),
}

impl From<PodError> for FleetError {
    fn from(e: PodError) -> Self {
        FleetError::Pod(e)
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::DuplicateSite { site, pod } => {
                write!(f, "site {site} is already used by pod {pod}")
            }
            FleetError::SelfLink { pod } => write!(f, "pod {pod} cannot be linked to itself"),
            FleetError::DuplicateLink { a, b } => {
                write!(f, "pods {a} and {b} are already connected")
            }
            FleetError::NoSuchPod(p) => write!(f, "no pod {p} in this fleet"),
            FleetError::NoSuchInstance(id) => write!(f, "no fleet instance {id}"),
            FleetError::NoCapacity => write!(f, "no pod in scope can place the instance"),
            FleetError::TopologyManaged => {
                write!(f, "topology commands flow through add_pod/connect")
            }
            FleetError::NotLeader => write!(f, "allocator service is not the leader"),
            FleetError::MigrationInProgress(id) => {
                write!(f, "instance {id} already has an open migration ticket")
            }
            FleetError::NotMigrating(id) => {
                write!(f, "instance {id} has no open migration ticket")
            }
            FleetError::MigrationInfeasible { id, dst_pod } => {
                write!(f, "pod {dst_pod} cannot reserve instance {id}'s resources")
            }
            FleetError::Pod(e) => write!(f, "pod error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_message() {
        // `Pod::launch_instance` panics with this exact text; the typed
        // error must render identically so the panic wrapper stays
        // message-compatible.
        assert_eq!(
            PodError::NoNicCapacity.to_string(),
            "no NIC with spare capacity in the pod"
        );
    }

    #[test]
    fn channel_errors_convert() {
        let e: PodError = ChannelError::EpochBitSet.into();
        assert_eq!(e, PodError::Channel(ChannelError::EpochBitSet));
    }
}
