//! Typed errors for pod control-plane operations.
//!
//! Runtime paths in the pod previously panicked (`unwrap`/`expect`) on
//! conditions a caller can actually hit — a full pod, an unknown host, a
//! missing device. Those now surface as [`PodError`] so experiment
//! harnesses can handle placement failure the way a cloud control plane
//! would: by reporting it, not by aborting the simulation.

use oasis_channel::ChannelError;

/// Why a pod control-plane operation could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodError {
    /// No NIC in the pod has spare capacity for another instance.
    NoNicCapacity,
    /// The named host does not exist in this pod.
    NoSuchHost(usize),
    /// The named host exists but is not running the engine the operation
    /// needs (e.g. an accel job on a host with no accel frontend).
    EngineMissing {
        /// Host that was addressed.
        host: usize,
        /// Engine that is absent ("net", "storage", "accel").
        engine: &'static str,
    },
    /// The named device index does not exist.
    NoSuchDevice {
        /// Device class ("nic", "ssd", "accel").
        class: &'static str,
        /// Index that was addressed.
        index: usize,
    },
    /// A message-channel operation failed (corrupted descriptor, bad
    /// size).
    Channel(ChannelError),
}

impl From<ChannelError> for PodError {
    fn from(e: ChannelError) -> Self {
        PodError::Channel(e)
    }
}

impl std::fmt::Display for PodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodError::NoNicCapacity => write!(f, "no NIC with spare capacity in the pod"),
            PodError::NoSuchHost(h) => write!(f, "no host {h} in this pod"),
            PodError::EngineMissing { host, engine } => {
                write!(f, "host {host} has no {engine} engine")
            }
            PodError::NoSuchDevice { class, index } => {
                write!(f, "no {class} {index} in this pod")
            }
            PodError::Channel(e) => write!(f, "channel error: {e:?}"),
        }
    }
}

impl std::error::Error for PodError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_message() {
        // `Pod::launch_instance` panics with this exact text; the typed
        // error must render identically so the panic wrapper stays
        // message-compatible.
        assert_eq!(
            PodError::NoNicCapacity.to_string(),
            "no NIC with spare capacity in the pod"
        );
    }

    #[test]
    fn channel_errors_convert() {
        let e: PodError = ChannelError::EpochBitSet.into();
        assert_eq!(e, PodError::Channel(ChannelError::EpochBitSet));
    }
}
