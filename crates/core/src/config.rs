//! System configuration and the Table 1 requirement constants.

use oasis_sim::time::SimDuration;

/// Performance requirements for pooled devices (Table 1 of the paper).
#[derive(Clone, Copy, Debug)]
pub struct DeviceRequirements {
    /// Device class name.
    pub class: &'static str,
    /// Bandwidth requirement, bytes/second.
    pub bandwidth: f64,
    /// Operation-rate requirement, operations/second.
    pub iops: f64,
    /// Typical end-to-end latency range, nanoseconds.
    pub latency_ns: (u64, u64),
    /// Devices per host.
    pub count: (u32, u32),
}

/// Table 1: NIC requirements (26 GB/s, 4 MOp/s/core, 50–110 µs, 1–2 per
/// host).
pub const NIC_REQUIREMENTS: DeviceRequirements = DeviceRequirements {
    class: "NIC",
    bandwidth: 26e9,
    iops: 4e6,
    latency_ns: (50_000, 110_000),
    count: (1, 2),
};

/// Table 1: SSD requirements (5 GB/s, 0.5 MOp/s, 100 µs, 6 per host).
pub const SSD_REQUIREMENTS: DeviceRequirements = DeviceRequirements {
    class: "SSD",
    bandwidth: 5e9,
    iops: 0.5e6,
    latency_ns: (100_000, 100_000),
    count: (6, 6),
};

/// Aggregate datapath demand the paper derives in §2.1/§3.2: one NIC plus
/// six SSDs ≈ 56 GB/s and ≥ 7 MOp/s.
pub fn total_datapath_demand() -> (f64, f64) {
    let bw = NIC_REQUIREMENTS.bandwidth + 6.0 * SSD_REQUIREMENTS.bandwidth;
    let iops = NIC_REQUIREMENTS.iops + 6.0 * SSD_REQUIREMENTS.iops;
    (bw, iops)
}

/// Where a driver allocates its I/O buffers (Fig. 11's breakdown axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferPlacement {
    /// Host-local DRAM (the Junction baseline).
    LocalDdr,
    /// Shared CXL pool memory (Oasis, and the modified baseline of §5.1).
    CxlPool,
}

/// Tunable parameters of an Oasis deployment. Defaults reproduce the
/// paper's prototype configuration, scaled where the paper's sizes
/// (4 GB buffer areas) would waste simulation memory without changing
/// behaviour.
#[derive(Clone, Debug)]
pub struct OasisConfig {
    /// Message-channel slots (§3.2.2: 8192).
    pub channel_slots: u64,
    /// Per-instance TX buffer area (paper: 64 MB; scaled).
    pub tx_area_per_instance: u64,
    /// Per-NIC RX buffer area (paper: 4 GB; scaled).
    pub rx_area_per_nic: u64,
    /// Size of one packet buffer (covers an MTU frame).
    pub buf_size: u64,
    /// RX descriptors the backend keeps posted per NIC.
    pub rx_ring_target: usize,
    /// Per-message CPU cost of instance<->frontend IPC over local DDR
    /// rings (Junction's virtual-NIC layer).
    pub ipc_cost_ns: u64,
    /// Fixed driver-loop work per poll iteration (descriptor bookkeeping).
    pub driver_loop_ns: u64,
    /// How long after a switch-port failure the NIC's PHY reports loss of
    /// carrier (link-down detection time; dominates failover).
    pub link_detect: SimDuration,
    /// Backend link-status check period (§3.3.3 monitoring).
    pub link_check_period: SimDuration,
    /// Telemetry reporting period (§3.5: 100 ms).
    pub telemetry_period: SimDuration,
    /// Allocator polling period (control plane, off the data path).
    pub allocator_poll: SimDuration,
    /// Grace period before unregistering from the old NIC during graceful
    /// migration (§3.3.4: 5 s).
    pub migration_grace: SimDuration,
    /// Largest single block I/O the storage engine stages (bytes).
    pub storage_buf_size: u64,
    /// Per-host storage data buffer area in pool memory (bytes).
    pub storage_area_per_host: u64,
    /// Frontend → allocator liveness heartbeat period (ISSUE 2). The
    /// allocator declares a host failed after three silent periods.
    pub heartbeat_period: SimDuration,
    /// Storage-engine command retry timeout: how long the frontend waits
    /// for a completion before resubmitting (covers the ~100 µs device
    /// latency with wide margin).
    pub storage_retry_timeout: SimDuration,
    /// Exponential backoff multiplier between storage retries.
    pub storage_retry_backoff: u32,
    /// Total storage submission attempts before the I/O is failed to the
    /// guest with a device error.
    pub storage_retry_max_attempts: u32,
    /// Largest single accelerator job the engine stages (bytes).
    pub accel_buf_size: u64,
    /// Per-host accelerator job buffer area in pool memory (bytes).
    pub accel_area_per_host: u64,
    /// Accel-engine job retry timeout: how long the frontend waits for a
    /// completion before resubmitting (covers setup + DMA latency with
    /// wide margin).
    pub accel_retry_timeout: SimDuration,
    /// Exponential backoff multiplier between accel retries.
    pub accel_retry_backoff: u32,
    /// Total accel submission attempts before the job is failed to the
    /// guest with a device error.
    pub accel_retry_max_attempts: u32,
}

impl Default for OasisConfig {
    fn default() -> Self {
        OasisConfig {
            channel_slots: 8192,
            tx_area_per_instance: 256 * 1024,
            rx_area_per_nic: 1024 * 1024,
            buf_size: 2048,
            rx_ring_target: 256,
            ipc_cost_ns: 150,
            driver_loop_ns: 60,
            link_detect: SimDuration::from_millis(37),
            link_check_period: SimDuration::from_micros(100),
            telemetry_period: SimDuration::from_millis(100),
            allocator_poll: SimDuration::from_micros(100),
            migration_grace: SimDuration::from_secs(5),
            storage_buf_size: 32 * 4096,
            storage_area_per_host: 64 * 32 * 4096,
            heartbeat_period: SimDuration::from_millis(100),
            storage_retry_timeout: SimDuration::from_millis(2),
            storage_retry_backoff: 2,
            storage_retry_max_attempts: 6,
            accel_buf_size: 64 * 1024,
            accel_area_per_host: 32 * 64 * 1024,
            accel_retry_timeout: SimDuration::from_millis(1),
            accel_retry_backoff: 2,
            accel_retry_max_attempts: 6,
        }
    }
}

impl OasisConfig {
    /// Packet buffers available in one instance's TX area.
    pub fn tx_bufs_per_instance(&self) -> u64 {
        self.tx_area_per_instance / self.buf_size
    }

    /// Packet buffers available in one NIC's RX area.
    pub fn rx_bufs_per_nic(&self) -> u64 {
        self.rx_area_per_nic / self.buf_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let (bw, iops) = total_datapath_demand();
        assert!((bw - 56e9).abs() < 1e9, "bw {bw}");
        assert!((iops - 7e6).abs() < 1e5, "iops {iops}");
    }

    #[test]
    fn default_areas_hold_many_buffers() {
        let c = OasisConfig::default();
        assert!(c.tx_bufs_per_instance() >= 64);
        assert!(c.rx_bufs_per_nic() >= c.rx_ring_target as u64);
        assert!(c.buf_size >= 1514 + 14, "buffer must hold an MTU frame");
    }
}
