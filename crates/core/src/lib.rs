//! # Oasis: pooling PCIe devices in software over CXL memory pools
//!
//! This crate is the system described in *"Oasis: Pooling PCIe Devices Over
//! CXL to Boost Utilization"* (SOSP '25): a common datapath over
//! non-coherent shared CXL memory, per-device-class engines, and a pod-wide
//! control plane, letting any host in a CXL pod use any PCIe device attached
//! to any other host.
//!
//! ## Architecture (paper §3)
//!
//! * [`datapath`] — I/O buffer areas in shared CXL memory plus message
//!   channels (from `oasis-channel`) between frontend and backend drivers.
//!   Coherence operations are minimized by keeping device DMA out of CPU
//!   caches (§3.2.1).
//! * [`engine_net`] — the network engine (§3.3): a frontend driver per host
//!   exposing packet I/O to instances, and a backend driver per NIC-attached
//!   host driving the NIC's queue pairs. Includes NIC failover via a pod
//!   backup NIC with MAC borrowing (§3.3.3) and graceful migration with
//!   GARP (§3.3.4).
//! * [`engine_storage`] — the storage engine (§3.4): block I/O forwarded as
//!   64 B NVMe-mirroring messages; drive failures propagate as I/O errors.
//! * [`engine_accel`] — the compute-offload engine: DMA job submission to
//!   pooled accelerators over the same 64 B descriptor discipline, proving
//!   the [`engine`] abstraction generalizes past NICs and SSDs.
//! * [`engine`] — the generic device-engine contract all three engines (and
//!   the baseline) implement; the pod runtime schedules every engine core
//!   through it as an actor on `oasis_sim::Scheduler`.
//! * [`allocator`] — the pod-wide allocator (§3.5): leases, 100 ms
//!   telemetry, local-first placement, failure management; replicable with
//!   Raft from `oasis-raft`.
//! * [`snapshot`] — schema-versioned, byte-stable serialization of engine
//!   and allocator state (DESIGN.md §15): the substrate for
//!   checkpoint/resume and live migration over the pool.
//! * [`pod`] — the pod runtime: wires hosts, cores, NICs, SSDs, switch,
//!   instances, and client endpoints into one deterministic co-simulation.
//! * [`fleet`] — multi-pod fleets joined by Ethernet uplinks; each pod runs
//!   as one shard under `oasis_sim::shard`'s conservative-window runner,
//!   in parallel when `OASIS_SHARD_THREADS` allows, with byte-identical
//!   output at any thread count.
//! * [`baseline`] — the Junction-style baseline (instance served by its
//!   local NIC) used by the paper's overhead comparisons, with a
//!   buffers-in-CXL variant for the Fig. 11 breakdown.
//! * [`instance`] / [`tcp`] — container instances with a small UDP/TCP-lite
//!   network stack, shared by Oasis instances and external client
//!   endpoints.

pub mod allocator;
pub mod baseline;
pub mod config;
pub mod datapath;
pub mod engine;
pub mod engine_accel;
pub mod engine_net;
pub mod engine_storage;
pub mod error;
pub mod fleet;
pub mod instance;
pub mod metrics;
pub mod msg;
pub mod pod;
pub mod snapshot;
pub mod tcp;

pub use config::OasisConfig;
pub use fleet::Fleet;
pub use pod::{Pod, PodBuilder};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, Snapshottable};
