//! The Oasis compute-offload engine.
//!
//! The third engine, built to prove the [`crate::engine`] abstraction
//! generalizes: a frontend driver per host gives local instances a
//! job-submission interface to pooled accelerators; a backend driver runs
//! only on hosts with local accelerators and operates their queues through
//! the native driver. Frontend and backend exchange **64 B job
//! descriptors** over Oasis channels; job inputs and outputs live in I/O
//! buffers in shared CXL memory that the device DMAs directly (the backend
//! never inspects them, §3.2.1).
//!
//! Failure semantics mirror the storage engine (§3.4): swallowed jobs are
//! retried after a timeout, transient compute errors burn a retry attempt,
//! the backend deduplicates replays through a completion cache so no job
//! executes twice, and a dead device propagates an error to the guest —
//! no transparent failover for stateful devices.

pub mod backend;
pub mod frontend;

pub use backend::AccelBackend;
pub use frontend::{AccelFrontend, JobResult};

use oasis_accel::AccelCommand;
use oasis_cxl::{CxlPool, RegionAllocator};

use crate::datapath::{alloc_descriptor_channel, ChannelPair};

/// Allocate one direction of an accel driver link: a 64 B descriptor
/// channel sized by the command's wire size.
pub fn alloc_accel_channel(
    pool: &mut CxlPool,
    ra: &mut RegionAllocator,
    name: &str,
    slots: u64,
) -> ChannelPair {
    alloc_descriptor_channel::<AccelCommand>(pool, ra, name, slots)
}
